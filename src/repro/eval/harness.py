"""The top-level experiment harness.

``ExperimentHarness`` runs any subset of the paper's experiments plus the
ablations, collects their :class:`ExperimentResult` tables, and renders a
plain-text or JSON report.  The ``examples/`` scripts and the benchmark suite
are thin wrappers around this class.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.eval import experiments, sweeps
from repro.eval.results import ExperimentResult
from repro.exceptions import ConfigurationError


@dataclass
class HarnessConfig:
    """Configuration of a harness run.

    Attributes
    ----------
    scale:
        ``"fast"`` or ``"paper"`` (see :mod:`repro.eval.experiments`).
    seed:
        Seed shared by all experiments.
    datasets:
        Datasets used by the multi-dataset experiments (Figs. 3-4).
    experiments:
        Which experiments to run; any of ``fig3``, ``fig4``, ``table1``,
        ``fig5``, ``streaming_drift``, ``ablation_regeneration``,
        ``ablation_dimensionality``, ``ablation_encoder``.
    """

    scale: str = "fast"
    seed: int = 0
    datasets: Sequence[str] = experiments.EVALUATION_DATASETS
    experiments: Sequence[str] = ("fig3", "fig4", "table1", "fig5")


class ExperimentHarness:
    """Runs the paper's experiments and collects their results."""

    def __init__(self, config: Optional[HarnessConfig] = None):
        self.config = config or HarnessConfig()
        self.results: Dict[str, ExperimentResult] = {}
        self._runners: Dict[str, Callable[[], ExperimentResult]] = {
            "fig3": self._run_fig3,
            "fig4": self._run_fig4,
            "table1": self._run_table1,
            "fig5": self._run_fig5,
            "streaming_drift": self._run_streaming_drift,
            "ablation_regeneration": self._run_ablation_regeneration,
            "ablation_dimensionality": self._run_ablation_dimensionality,
            "ablation_encoder": self._run_ablation_encoder,
        }

    # ------------------------------------------------------------------- API
    def available_experiments(self) -> List[str]:
        """Names accepted by :meth:`run`."""
        return sorted(self._runners)

    def run(self, name: str) -> ExperimentResult:
        """Run a single experiment by name and store its result."""
        if name not in self._runners:
            raise ConfigurationError(
                f"unknown experiment {name!r}; available: {self.available_experiments()}"
            )
        result = self._runners[name]()
        self.results[name] = result
        return result

    def run_all(self) -> Dict[str, ExperimentResult]:
        """Run every experiment listed in the config."""
        for name in self.config.experiments:
            self.run(name)
        return dict(self.results)

    def report(self) -> str:
        """Plain-text report of all collected results."""
        if not self.results:
            return "(no experiments have been run)"
        sections = [self.results[name].to_text() for name in self.results]
        return "\n\n".join(sections)

    def save_json(self, path: str) -> Path:
        """Write all collected results to a JSON file; returns the path."""
        payload = {name: result.to_dict() for name, result in self.results.items()}
        out = Path(path)
        out.write_text(json.dumps(payload, indent=2, default=str))
        return out

    # ---------------------------------------------------------------- runners
    def _run_fig3(self) -> ExperimentResult:
        return experiments.accuracy_experiment(
            datasets=self.config.datasets, scale=self.config.scale, seed=self.config.seed
        )

    def _run_fig4(self) -> ExperimentResult:
        return experiments.efficiency_experiment(
            datasets=self.config.datasets, scale=self.config.scale, seed=self.config.seed
        )

    def _run_table1(self) -> ExperimentResult:
        return experiments.bitwidth_experiment(scale=self.config.scale, seed=self.config.seed)

    def _run_fig5(self) -> ExperimentResult:
        return experiments.robustness_experiment(
            scale=self.config.scale, seed=self.config.seed
        )

    def _run_streaming_drift(self) -> ExperimentResult:
        return experiments.streaming_drift_experiment(
            scale=self.config.scale, seed=self.config.seed
        )

    def _run_ablation_regeneration(self) -> ExperimentResult:
        return sweeps.regeneration_rate_sweep(seed=self.config.seed)

    def _run_ablation_dimensionality(self) -> ExperimentResult:
        return sweeps.dimensionality_sweep(seed=self.config.seed)

    def _run_ablation_encoder(self) -> ExperimentResult:
        return sweeps.encoder_sweep(seed=self.config.seed)
