"""Experiment definitions: one function per paper table/figure.

Every function returns an :class:`repro.eval.results.ExperimentResult` whose
rows mirror the series the paper plots.  The functions take a ``scale``
parameter controlling dataset size and epoch counts:

* ``scale="fast"`` -- small datasets / few epochs, suitable for CI and the
  pytest-benchmark harness (seconds per experiment);
* ``scale="paper"`` -- larger datasets and the paper's dimensionalities
  (``D = 0.5k``, ``D* = 4k``), minutes per experiment.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.mlp import MLPClassifier
from repro.baselines.svm import KernelSVM
from repro.core.cyberhd import CyberHD
from repro.datasets.base import NIDSDataset
from repro.datasets.loaders import load_dataset
from repro.eval.results import ExperimentResult
from repro.exceptions import ConfigurationError
from repro.hardware.cpu_model import CPUModel
from repro.hardware.energy import bitwidth_efficiency_table
from repro.hardware.fpga_model import FPGAModel
from repro.hardware.robustness import deployment_class_matrix, robustness_sweep
from repro.hdc.quantization import dequantize, quantize
from repro.hdc.similarity import cosine_similarity_matrix
from repro.models.base import BaseClassifier
from repro.models.hdc_classifier import BaselineHDC
from repro.utils.rng import ensure_rng

#: The four datasets of the paper's evaluation, in figure order.
EVALUATION_DATASETS: Tuple[str, ...] = (
    "cic_ids_2018",
    "cic_ids_2017",
    "unsw_nb15",
    "nsl_kdd",
)


# --------------------------------------------------------------------- scale
_SCALES: Dict[str, Dict[str, int]] = {
    "fast": {
        "n_train": 1200,
        "n_test": 400,
        "hdc_dim": 128,
        "hdc_dim_large": 1024,
        "hdc_epochs": 15,
        "mlp_epochs": 12,
        "svm_epochs": 8,
        "robustness_dim": 512,
    },
    "paper": {
        "n_train": 8000,
        "n_test": 2000,
        "hdc_dim": 500,
        "hdc_dim_large": 4000,
        "hdc_epochs": 20,
        "mlp_epochs": 30,
        "svm_epochs": 15,
        "robustness_dim": 500,
    },
}


def scale_parameters(scale: str) -> Dict[str, int]:
    """Dataset / model sizing for the requested scale (``"fast"`` or ``"paper"``)."""
    try:
        return dict(_SCALES[scale])
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown scale {scale!r}; available: {sorted(_SCALES)}"
        ) from exc


# ------------------------------------------------------------ model builders
def build_models(scale: str, seed: int = 0) -> Dict[str, Callable[[], BaseClassifier]]:
    """Factories for every model compared in Figs. 3-4.

    Keys: ``dnn``, ``svm``, ``baseline_hd_low`` (same physical D as CyberHD),
    ``baseline_hd_high`` (CyberHD's effective D) and ``cyberhd``.
    """
    p = scale_parameters(scale)
    return {
        "dnn": lambda: MLPClassifier(
            hidden_layers=(256, 128), epochs=p["mlp_epochs"], seed=seed
        ),
        "svm": lambda: KernelSVM(epochs=p["svm_epochs"], seed=seed),
        "baseline_hd_low": lambda: BaselineHDC(
            dim=p["hdc_dim"], epochs=p["hdc_epochs"], seed=seed
        ),
        "baseline_hd_high": lambda: BaselineHDC(
            dim=p["hdc_dim_large"], epochs=p["hdc_epochs"], seed=seed
        ),
        "cyberhd": lambda: CyberHD(
            dim=p["hdc_dim"],
            epochs=p["hdc_epochs"],
            regeneration_rate=0.1,
            seed=seed,
        ),
    }


def _load(dataset: str, scale: str, seed: Optional[int]) -> NIDSDataset:
    p = scale_parameters(scale)
    return load_dataset(dataset, n_train=p["n_train"], n_test=p["n_test"], seed=seed)


# ------------------------------------------------------------------- Fig. 3
def accuracy_experiment(
    datasets: Sequence[str] = EVALUATION_DATASETS,
    models: Optional[Sequence[str]] = None,
    scale: str = "fast",
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 3: accuracy of CyberHD vs DNN, SVM and baseline HDC on each dataset."""
    factories = build_models(scale, seed=seed)
    model_names = list(models) if models is not None else list(factories)
    unknown = set(model_names) - set(factories)
    if unknown:
        raise ConfigurationError(f"unknown models requested: {sorted(unknown)}")

    result = ExperimentResult(
        name="fig3_accuracy",
        description="Accuracy (%) of each model on each NIDS dataset (paper Fig. 3)",
        columns=["dataset", "model", "accuracy_percent", "train_seconds", "effective_dim"],
        metadata={"scale": scale, "seed": seed, **scale_parameters(scale)},
    )
    for dataset_name in datasets:
        dataset = _load(dataset_name, scale, seed)
        for model_name in model_names:
            model = factories[model_name]()
            model.fit(dataset.X_train, dataset.y_train)
            accuracy = model.score(dataset.X_test, dataset.y_test)
            effective_dim = (
                model.effective_dim_ if isinstance(model, CyberHD) else
                (model.dim if isinstance(model, BaselineHDC) else 0)
            )
            result.add_row(
                dataset=dataset_name,
                model=model_name,
                accuracy_percent=100.0 * accuracy,
                train_seconds=model.fit_result_.train_seconds,
                effective_dim=effective_dim,
            )
    return result


# ------------------------------------------------------------------- Fig. 4
def efficiency_experiment(
    datasets: Sequence[str] = EVALUATION_DATASETS,
    scale: str = "fast",
    seed: int = 0,
) -> ExperimentResult:
    """Fig. 4: training time and inference latency of each comparable model.

    Following the paper, the HDC baseline is evaluated at CyberHD's
    *effective* dimensionality (so both reach comparable accuracy) while
    CyberHD runs at its small physical dimensionality.
    """
    factories = build_models(scale, seed=seed)
    model_names = ["dnn", "svm", "baseline_hd_high", "cyberhd"]

    result = ExperimentResult(
        name="fig4_efficiency",
        description="Training time and inference latency in seconds (paper Fig. 4)",
        columns=["dataset", "model", "train_seconds", "inference_seconds", "accuracy_percent"],
        metadata={"scale": scale, "seed": seed, **scale_parameters(scale)},
    )
    for dataset_name in datasets:
        dataset = _load(dataset_name, scale, seed)
        for model_name in model_names:
            model = factories[model_name]()
            start = time.perf_counter()
            model.fit(dataset.X_train, dataset.y_train)
            train_seconds = time.perf_counter() - start
            start = time.perf_counter()
            predictions = model.predict(dataset.X_test)
            inference_seconds = time.perf_counter() - start
            accuracy = float(np.mean(predictions == dataset.y_test))
            result.add_row(
                dataset=dataset_name,
                model=model_name,
                train_seconds=train_seconds,
                inference_seconds=inference_seconds,
                accuracy_percent=100.0 * accuracy,
            )
    return result


def efficiency_speedups(result: ExperimentResult) -> Dict[str, float]:
    """Mean CyberHD speedups implied by a Fig. 4 result.

    Returns keys ``train_vs_dnn``, ``train_vs_baseline_hd``,
    ``inference_vs_baseline_hd`` -- the three ratios the paper reports
    (2.47x / 1.85x / 15.29x respectively on the authors' testbed).
    """
    speedups: Dict[str, List[float]] = {
        "train_vs_dnn": [],
        "train_vs_baseline_hd": [],
        "inference_vs_baseline_hd": [],
    }
    datasets = sorted({row["dataset"] for row in result.rows})
    for dataset in datasets:
        rows = {row["model"]: row for row in result.filter(dataset=dataset)}
        if "cyberhd" not in rows:
            continue
        cyber = rows["cyberhd"]
        if "dnn" in rows and cyber["train_seconds"] > 0:
            speedups["train_vs_dnn"].append(rows["dnn"]["train_seconds"] / cyber["train_seconds"])
        if "baseline_hd_high" in rows and cyber["train_seconds"] > 0:
            speedups["train_vs_baseline_hd"].append(
                rows["baseline_hd_high"]["train_seconds"] / cyber["train_seconds"]
            )
        if "baseline_hd_high" in rows and cyber["inference_seconds"] > 0:
            speedups["inference_vs_baseline_hd"].append(
                rows["baseline_hd_high"]["inference_seconds"] / cyber["inference_seconds"]
            )
    return {key: float(np.mean(values)) if values else float("nan") for key, values in speedups.items()}


# ------------------------------------------------------------------ Table I
def quantized_model_accuracy(model: BaselineHDC, dataset: NIDSDataset, bits: int) -> float:
    """Test accuracy of an HDC model deployed at ``bits``-bit precision.

    Uses the same deployment transform (row normalization + mean centering +
    clipped symmetric quantization) as the robustness harness, so Table I and
    Fig. 5 share one definition of "the deployed model".
    """
    quantized_classes = dequantize(
        quantize(deployment_class_matrix(model.class_hypervectors_), bits)
    )
    H = model.encode(dataset.X_test)
    sims = cosine_similarity_matrix(H, quantized_classes)
    predictions = model.classes_[np.argmax(sims, axis=1)]
    return float(np.mean(predictions == dataset.y_test))


def required_effective_dimension(
    bits: int,
    dataset: NIDSDataset,
    target_accuracy: float,
    candidate_dims: Sequence[int] = (128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096),
    epochs: int = 8,
    seed: int = 0,
    saturation_tolerance: float = 0.005,
) -> int:
    """Dimensionality a ``bits``-bit deployment needs to reach ``target_accuracy``.

    This is how the "Effective D" row of Table I is produced: lower-precision
    hypervectors hold less information per dimension, so more dimensions are
    needed to reach the same accuracy target.  The candidates are scanned in
    increasing order and the first one whose quantized accuracy reaches the
    target is returned.  If the precision saturates below the target even at
    the largest candidate (which happens for aggressive 1-2 bit post-training
    quantization), the largest candidate is returned: that precision genuinely
    needs at least that much dimensionality, which is the quantity the CPU and
    FPGA cost models consume.
    """
    if not candidate_dims:
        raise ConfigurationError("candidate_dims must not be empty")
    del saturation_tolerance  # retained for API compatibility
    for dim in sorted(candidate_dims):
        model = BaselineHDC(dim=int(dim), epochs=epochs, seed=seed)
        model.fit(dataset.X_train, dataset.y_train)
        accuracy = quantized_model_accuracy(model, dataset, bits)
        if accuracy >= target_accuracy:
            return int(dim)
    return int(max(candidate_dims))


def bitwidth_experiment(
    dataset_name: str = "nsl_kdd",
    bitwidths: Sequence[int] = (32, 16, 8, 4, 2, 1),
    scale: str = "fast",
    seed: int = 0,
    accuracy_margin: float = 0.02,
    effective_dims: Optional[Dict[int, int]] = None,
) -> ExperimentResult:
    """Table I: effective dimensionality and CPU/FPGA energy efficiency per bitwidth.

    The effective dimensionality per bitwidth is *measured* (unless supplied
    via ``effective_dims``) by finding the smallest model that stays within
    ``accuracy_margin`` of a full-precision reference; the energy columns come
    from the analytical CPU/FPGA models, normalized to the 1-bit CPU
    configuration exactly as in the paper.
    """
    dataset = _load(dataset_name, scale, seed)
    p = scale_parameters(scale)

    if effective_dims is None:
        # The accuracy target is the full-precision deployment of a large
        # reference model, evaluated through the same deployment transform as
        # the per-bitwidth candidates (so the margin is apples to apples).
        reference = BaselineHDC(dim=p["hdc_dim_large"], epochs=8, seed=seed)
        reference.fit(dataset.X_train, dataset.y_train)
        target = quantized_model_accuracy(reference, dataset, 32) - accuracy_margin
        effective_dims = {
            bits: required_effective_dimension(bits, dataset, target, epochs=6, seed=seed)
            for bits in bitwidths
        }

    rows = bitwidth_efficiency_table(
        effective_dims,
        in_features=dataset.n_features,
        n_classes=dataset.n_classes,
        cpu=CPUModel(),
        fpga=FPGAModel(),
    )
    result = ExperimentResult(
        name="table1_bitwidth",
        description="Effective D and CPU/FPGA energy efficiency vs bitwidth (paper Table I)",
        columns=["bits", "effective_dim", "cpu_efficiency", "fpga_efficiency"],
        metadata={"dataset": dataset_name, "scale": scale, "seed": seed},
    )
    for row in rows:
        result.add_row(
            bits=row.bits,
            effective_dim=row.effective_dim,
            cpu_efficiency=row.cpu_efficiency,
            fpga_efficiency=row.fpga_efficiency,
        )
    return result


# ------------------------------------------------------------------- Fig. 5
def robustness_experiment(
    dataset_name: str = "nsl_kdd",
    error_rates: Sequence[float] = (0.01, 0.02, 0.05, 0.10, 0.15),
    bitwidths: Sequence[int] = (1, 2, 4, 8),
    scale: str = "fast",
    trials: int = 5,
    seed: int = 0,
    deployment_dims: Optional[Dict[int, int]] = None,
) -> ExperimentResult:
    """Fig. 5: accuracy loss of the DNN vs quantized CyberHD under bit flips.

    Following the paper's methodology, each deployment precision uses the
    dimensionality that precision requires (Table I's effective-D relation):
    a 1-bit deployment stores many more (cheaper) dimensions than an 8-bit
    one.  ``deployment_dims`` overrides the default mapping, which scales the
    base robustness dimensionality by ``sqrt(8 / bits)``.
    """
    dataset = _load(dataset_name, scale, seed)
    p = scale_parameters(scale)
    rng = ensure_rng(seed)

    if deployment_dims is None:
        # Table I's effective-dimensionality relation: storing the model at a
        # lower precision requires proportionally more (cheaper) dimensions.
        base_dim = p["robustness_dim"]
        deployment_dims = {bits: int(round(base_dim * 8.0 / bits)) for bits in bitwidths}

    hdc_models: Dict[int, CyberHD] = {}
    for bits in bitwidths:
        model = CyberHD(
            dim=deployment_dims[bits],
            epochs=p["hdc_epochs"],
            regeneration_rate=0.1,
            seed=seed,
        )
        model.fit(dataset.X_train, dataset.y_train)
        hdc_models[bits] = model

    mlp = MLPClassifier(hidden_layers=(256, 128), epochs=p["mlp_epochs"], seed=seed)
    mlp.fit(dataset.X_train, dataset.y_train)

    sweep = robustness_sweep(
        hdc_models,
        mlp,
        dataset.X_test,
        dataset.y_test,
        error_rates=list(error_rates),
        trials=trials,
        rng=rng,
    )
    result = ExperimentResult(
        name="fig5_robustness",
        description="Accuracy loss (%) under random bit flips (paper Fig. 5)",
        columns=["model", "error_rate_percent", "accuracy_loss_percent", "clean_accuracy_percent"],
        metadata={"dataset": dataset_name, "scale": scale, "trials": trials, "seed": seed},
    )
    for entry in sweep:
        result.add_row(
            model=entry.model_name,
            error_rate_percent=100.0 * entry.error_rate,
            accuracy_loss_percent=100.0 * entry.accuracy_loss,
            clean_accuracy_percent=100.0 * entry.clean_accuracy,
        )
    return result


# ------------------------------------------------------- streaming / drift
#: Profile overrides describing the drifted traffic: attack behaviours shift
#: their packet-level statistics to evade the trained volume signatures.
_DRIFT_OVERRIDES: Dict[str, Dict[str, object]] = {
    # The scan drops its SYN-only signature (full-connect scan) and slows to
    # blend with browsing traffic.
    "port_scan": {
        "packet_length": (420.0, 120.0),
        "inter_arrival": (0.06, 0.03),
        "syn_only": False,
        "reply_ratio": 0.6,
    },
    # The exfiltration channel throttles hard and shrinks its packets to
    # evade the trained volume signature.
    "exfiltration": {
        "packet_length": (240.0, 80.0),
        "inter_arrival": (0.12, 0.04),
        "packets_per_flow": (60.0, 15.0),
    },
    # The brute forcer speeds up and pads its probes.
    "ssh_bruteforce": {
        "packet_length": (420.0, 80.0),
        "inter_arrival": (0.02, 0.01),
    },
}


def drifted_profiles(profiles: Optional[Sequence] = None) -> Tuple:
    """The built-in traffic profiles with the drift overrides applied."""
    import dataclasses

    from repro.nids.packets import DEFAULT_PROFILES

    profiles = tuple(profiles) if profiles is not None else DEFAULT_PROFILES
    out = []
    for profile in profiles:
        overrides = _DRIFT_OVERRIDES.get(profile.name)
        out.append(
            dataclasses.replace(profile, **overrides) if overrides else profile
        )
    return tuple(out)


def streaming_drift_experiment(
    scale: str = "fast",
    seed: int = 0,
    window: int = 400,
) -> ExperimentResult:
    """Streaming accuracy under concept drift: online learning vs refit.

    A pipeline is trained on packet traffic from the built-in profiles,
    then serves a stream whose attack behaviours drift
    (:data:`_DRIFT_OVERRIDES`).  Three serving strategies are compared on
    the drifted tail of the stream:

    * ``frozen`` -- the seed behaviour: the trained model serves unchanged;
    * ``online`` -- the serving subsystem's path: per-window ``partial_fit``
      label feedback plus drift-triggered dimension regeneration;
    * ``offline_refit`` -- the upper-bound reference: retrain from scratch
      on everything seen before the evaluation tail.

    Accuracy is prequential on the tail for the streaming strategies
    (predictions made before any update from the window), matching how a
    deployed detector is actually judged.
    """
    from repro.nids.packets import DEFAULT_PROFILES, TrafficGenerator
    from repro.nids.flow import FlowTable
    from repro.nids.pipeline import DetectionPipeline
    from repro.nids.streaming import StreamingDetector
    from repro.serving.online import DriftMonitor, OnlineLearner

    if scale == "paper":
        n_train_flows, n_pre_flows, n_post_flows = 800, 400, 900
        dim, epochs = 500, 12
    else:
        n_train_flows, n_pre_flows, n_post_flows = 300, 150, 450
        dim, epochs = 128, 6
    adaptation_fraction = 0.4  # head of the drifted phase the model may adapt on

    base_gen = TrafficGenerator(seed=seed)
    train_packets = base_gen.generate(n_train_flows)
    pre_gen = TrafficGenerator(seed=seed + 1)
    pre_packets = pre_gen.generate(n_pre_flows)
    t_drift = pre_packets[-1].timestamp + 30.0
    post_gen = TrafficGenerator(profiles=drifted_profiles(), seed=seed + 2)
    post_packets = post_gen.generate(n_post_flows, start_time=t_drift)
    n_adapt_packets = int(adaptation_fraction * len(post_packets))

    def make_pipeline() -> DetectionPipeline:
        pipeline = DetectionPipeline(
            classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
        )
        return pipeline.fit_packets(train_packets)

    def run_stream(online: bool):
        pipeline = make_pipeline()
        learner = None
        if online:
            learner = OnlineLearner(
                pipeline.classifier,
                passes=2,
                replay_rows=512,
                monitor=DriftMonitor(
                    window=300,
                    min_samples=120,
                    confidence_drop=0.05,
                    accuracy_drop=0.05,
                    cooldown=300,
                ),
            )
        # history=None: the tail accounting below indexes the full run.
        detector = StreamingDetector(
            pipeline, window_size=window, online=learner, history=None
        )
        detector.push_many(pre_packets)
        detector.push_many(post_packets[:n_adapt_packets])
        tail_start = len(detector.results)
        detector.push_many(post_packets[n_adapt_packets:])
        detector.flush()
        labels: List[str] = []
        predictions: List[str] = []
        tail_flows = []
        for detection in detector.detections[tail_start:]:
            labels.extend(detection.labels)
            predictions.extend(detection.predictions)
            tail_flows.extend(detection.flows)
        accuracy = float(
            np.mean([p == t for p, t in zip(predictions, labels)])
        ) if labels else 0.0
        return accuracy, detector, learner, tail_flows

    frozen_accuracy, _, _, _ = run_stream(online=False)
    online_accuracy, detector, learner, tail_flows = run_stream(online=True)

    # Offline refit reference: retrain on everything seen before the tail.
    table = FlowTable()
    seen_flows = table.add_packets(
        list(pre_packets) + list(post_packets[:n_adapt_packets])
    ) + table.flush()
    refit = DetectionPipeline(
        classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
    )
    train_table = FlowTable()
    train_flows = train_table.add_packets(train_packets) + train_table.flush()
    refit.fit_flows(list(train_flows) + list(seen_flows))
    refit_detection = refit.detect_flows(tail_flows)
    refit_accuracy = float(
        np.mean(
            [p == f.label for p, f in zip(refit_detection.predictions, tail_flows)]
        )
    ) if tail_flows else 0.0

    result = ExperimentResult(
        name="streaming_drift",
        description="Streaming accuracy on drifted traffic: frozen vs online vs refit",
        columns=["path", "tail_accuracy", "partial_fit_updates", "regenerations"],
        metadata={
            "scale": scale,
            "seed": seed,
            "window": window,
            "tail_flows": len(tail_flows),
            "drifted_profiles": sorted(_DRIFT_OVERRIDES),
            "accuracy_gap_online_vs_refit": refit_accuracy - online_accuracy,
            "drift_events": len(learner.monitor.events) if learner and learner.monitor else 0,
        },
    )
    result.add_row(path="frozen", tail_accuracy=frozen_accuracy, partial_fit_updates=0, regenerations=0)
    result.add_row(
        path="online",
        tail_accuracy=online_accuracy,
        partial_fit_updates=learner.updates if learner else 0,
        regenerations=learner.regenerations if learner else 0,
    )
    result.add_row(
        path="offline_refit",
        tail_accuracy=refit_accuracy,
        partial_fit_updates=0,
        regenerations=0,
    )
    return result
