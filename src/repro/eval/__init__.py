"""Evaluation harness: regenerates every table and figure of the paper.

Experiment map (see DESIGN.md section 4):

* :func:`repro.eval.experiments.accuracy_experiment` -- Fig. 3
* :func:`repro.eval.experiments.efficiency_experiment` -- Fig. 4
* :func:`repro.eval.experiments.bitwidth_experiment` -- Table I
* :func:`repro.eval.experiments.robustness_experiment` -- Fig. 5
* :mod:`repro.eval.sweeps` -- the ablation studies (regeneration rate,
  dimensionality, encoder choice)

The :class:`repro.eval.harness.ExperimentHarness` runs any subset of these and
renders plain-text tables via :mod:`repro.eval.reporting`.
"""

from repro.eval.experiments import (
    EVALUATION_DATASETS,
    accuracy_experiment,
    bitwidth_experiment,
    efficiency_experiment,
    required_effective_dimension,
    robustness_experiment,
)
from repro.eval.harness import ExperimentHarness, HarnessConfig
from repro.eval.reporting import format_table, to_markdown
from repro.eval.results import ExperimentResult
from repro.eval.sweeps import dimensionality_sweep, encoder_sweep, regeneration_rate_sweep

__all__ = [
    "EVALUATION_DATASETS",
    "accuracy_experiment",
    "efficiency_experiment",
    "bitwidth_experiment",
    "robustness_experiment",
    "required_effective_dimension",
    "ExperimentHarness",
    "HarnessConfig",
    "ExperimentResult",
    "format_table",
    "to_markdown",
    "dimensionality_sweep",
    "regeneration_rate_sweep",
    "encoder_sweep",
]
