"""Result containers for the evaluation harness."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.eval.reporting import format_table


@dataclass
class ExperimentResult:
    """A table of experiment measurements (one paper artefact).

    Attributes
    ----------
    name:
        Experiment identifier (e.g. ``"fig3_accuracy"``).
    description:
        One-line description of what the experiment reproduces.
    columns:
        Ordered column names of the result rows.
    rows:
        One dict per measurement; keys are column names.
    metadata:
        Free-form context (dataset sizes, seeds, model settings).
    """

    name: str
    description: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------- API
    def add_row(self, **values: Any) -> None:
        """Append a measurement row (missing columns are left blank)."""
        self.rows.append(dict(values))

    def column(self, name: str) -> List[Any]:
        """All values of column ``name`` across rows (missing -> None)."""
        return [row.get(name) for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows matching all ``column=value`` criteria."""
        return [
            row for row in self.rows if all(row.get(k) == v for k, v in criteria.items())
        ]

    def to_text(self) -> str:
        """Render the result as an aligned plain-text table."""
        table_rows = [[row.get(col, "") for col in self.columns] for row in self.rows]
        header = f"== {self.name}: {self.description} =="
        return header + "\n" + format_table(list(self.columns), table_rows)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": list(self.columns),
            "rows": self.rows,
            "metadata": self.metadata,
        }

    def to_json(self, indent: int = 2) -> str:
        """JSON string of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def __len__(self) -> int:
        return len(self.rows)
