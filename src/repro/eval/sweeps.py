"""Ablation sweeps over the design choices CyberHD makes.

These back the A1-A3 experiments in DESIGN.md: the regeneration rate, the
physical dimensionality, and the encoder family.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.cyberhd import CyberHD
from repro.datasets.base import NIDSDataset
from repro.datasets.loaders import load_dataset
from repro.eval.results import ExperimentResult
from repro.models.hdc_classifier import BaselineHDC


def _default_dataset(dataset: Optional[NIDSDataset], n_train: int, n_test: int, seed: int) -> NIDSDataset:
    if dataset is not None:
        return dataset
    return load_dataset("nsl_kdd", n_train=n_train, n_test=n_test, seed=seed)


def regeneration_rate_sweep(
    rates: Sequence[float] = (0.0, 0.05, 0.10, 0.20, 0.40),
    dataset: Optional[NIDSDataset] = None,
    dim: int = 128,
    epochs: int = 10,
    n_train: int = 1200,
    n_test: int = 400,
    seed: int = 0,
) -> ExperimentResult:
    """A1: accuracy and effective dimensionality as the regeneration rate varies.

    ``rate = 0`` reduces CyberHD to the static baseline, so this sweep shows
    directly how much the paper's dynamic regeneration contributes.
    """
    ds = _default_dataset(dataset, n_train, n_test, seed)
    result = ExperimentResult(
        name="ablation_regeneration_rate",
        description="CyberHD accuracy vs regeneration rate R",
        columns=["regeneration_rate", "accuracy_percent", "effective_dim", "train_seconds"],
        metadata={"dataset": ds.name, "dim": dim, "epochs": epochs, "seed": seed},
    )
    for rate in rates:
        model = CyberHD(dim=dim, epochs=epochs, regeneration_rate=float(rate), seed=seed)
        model.fit(ds.X_train, ds.y_train)
        result.add_row(
            regeneration_rate=float(rate),
            accuracy_percent=100.0 * model.score(ds.X_test, ds.y_test),
            effective_dim=model.effective_dim_,
            train_seconds=model.fit_result_.train_seconds,
        )
    return result


def dimensionality_sweep(
    dims: Sequence[int] = (64, 128, 256, 512, 1024, 2048),
    dataset: Optional[NIDSDataset] = None,
    epochs: int = 10,
    regeneration_rate: float = 0.10,
    n_train: int = 1200,
    n_test: int = 400,
    seed: int = 0,
) -> ExperimentResult:
    """A2: CyberHD vs static baseline HDC across physical dimensionalities.

    Reproduces the paper's core claim in sweep form: CyberHD at a small
    physical D should track the baseline at a much larger D.
    """
    ds = _default_dataset(dataset, n_train, n_test, seed)
    result = ExperimentResult(
        name="ablation_dimensionality",
        description="Accuracy of CyberHD and baseline HDC vs physical dimensionality",
        columns=["dim", "model", "accuracy_percent", "effective_dim"],
        metadata={"dataset": ds.name, "epochs": epochs, "seed": seed},
    )
    for dim in dims:
        cyber = CyberHD(
            dim=int(dim), epochs=epochs, regeneration_rate=regeneration_rate, seed=seed
        )
        cyber.fit(ds.X_train, ds.y_train)
        result.add_row(
            dim=int(dim),
            model="cyberhd",
            accuracy_percent=100.0 * cyber.score(ds.X_test, ds.y_test),
            effective_dim=cyber.effective_dim_,
        )
        baseline = BaselineHDC(dim=int(dim), epochs=epochs, seed=seed)
        baseline.fit(ds.X_train, ds.y_train)
        result.add_row(
            dim=int(dim),
            model="baseline_hd",
            accuracy_percent=100.0 * baseline.score(ds.X_test, ds.y_test),
            effective_dim=int(dim),
        )
    return result


def encoder_sweep(
    encoders: Sequence[str] = ("rbf", "linear", "level_id"),
    dataset: Optional[NIDSDataset] = None,
    dim: int = 256,
    epochs: int = 10,
    regeneration_rate: float = 0.10,
    n_train: int = 1200,
    n_test: int = 400,
    seed: int = 0,
) -> ExperimentResult:
    """A3: CyberHD accuracy with each encoder family.

    The paper motivates the RBF encoder by the non-linear relationships
    between cybersecurity features; this sweep quantifies that choice.
    """
    ds = _default_dataset(dataset, n_train, n_test, seed)
    result = ExperimentResult(
        name="ablation_encoder",
        description="CyberHD accuracy with RBF, linear and level-ID encoders",
        columns=["encoder", "accuracy_percent", "train_seconds"],
        metadata={"dataset": ds.name, "dim": dim, "epochs": epochs, "seed": seed},
    )
    for encoder in encoders:
        model = CyberHD(
            dim=dim,
            encoder=encoder,
            epochs=epochs,
            regeneration_rate=regeneration_rate,
            seed=seed,
        )
        model.fit(ds.X_train, ds.y_train)
        result.add_row(
            encoder=encoder,
            accuracy_percent=100.0 * model.score(ds.X_test, ds.y_test),
            train_seconds=model.fit_result_.train_seconds,
        )
    return result
