"""Plain-text and markdown table rendering for experiment results."""

from __future__ import annotations

from typing import Any, Sequence


def _format_cell(value: Any) -> str:
    """Human-friendly cell formatting (floats get 4 significant digits)."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned plain-text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of rows; each row must have ``len(headers)`` entries.
    """
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [render_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def to_markdown(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a GitHub-flavored markdown table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    lines.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(lines)


def format_ratio(value: float) -> str:
    """Format a speedup/efficiency ratio like the paper (``2.47x``)."""
    return f"{value:.2f}x"


def format_percent(value: float) -> str:
    """Format a fraction as a percentage with one decimal (``93.4%``)."""
    return f"{100.0 * value:.1f}%"
