"""Vectorized compute backend for the HDC hot paths.

This module centralizes the numeric policy and the low-level aggregation
primitives that the encoders, the trainer and the models share, so the whole
training/inference pipeline runs as the "highly parallel matrix operations"
the paper's efficiency argument is built on:

``resolve_dtype`` / ``DEFAULT_DTYPE``
    The dtype policy: float32 by default (half the memory traffic and
    roughly 2x the BLAS throughput on commodity CPUs), float64 opt-in for
    bit-for-bit compatibility with the original float64 implementation.

``segment_sum``
    Scatter-add of sample rows into per-class accumulators.  Replaces
    ``np.add.at`` (a slow element-wise ufunc loop) with either a one-hot
    matrix product (BLAS GEMM, the default) or a flattened ``np.bincount``
    aggregation.

``row_norms`` / ``update_row_norms``
    Norm bookkeeping for the cached-norm cosine-similarity fast path: class
    hypervector norms are computed once per *update* instead of once per
    mini-batch (see :func:`repro.hdc.similarity.cosine_similarity_matrix`).

``merge_class_deltas``
    The cluster aggregation rule: additive merge of per-replica class-matrix
    deltas with row-granular cached-norm invalidation (the property that
    makes HDC online learning shard across worker processes exactly; see
    :mod:`repro.cluster`).

``QuantizedClassMatrix``
    An int8-quantized (any supported bitwidth, really) inference path that
    reuses :mod:`repro.hdc.quantization` and pre-computes the row norms of
    the quantized class matrix so scoring needs one integer-weight GEMM and
    one elementwise rescale.  At ``bits == 1`` queries are sign-binarized
    too -- fully binary inference, the regime the bit-packed XOR/popcount
    fabric (:mod:`repro.hdc.bitpack`) reproduces bit for bit.

Performance characteristics, the incremental re-encode contract and the
before/after benchmark table live in ``PERFORMANCE.md`` at the repository
root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hdc.quantization import QuantizedArray, quantize

DTypeSpec = Union[str, type, np.dtype]

#: dtype used by the compute backend unless the caller opts out.
DEFAULT_DTYPE: str = "float32"

_DTYPE_ALIASES = {
    "float32": np.float32,
    "f32": np.float32,
    "single": np.float32,
    "float64": np.float64,
    "f64": np.float64,
    "double": np.float64,
}

_SCATTER_METHODS = ("auto", "matmul", "bincount", "add_at")


def resolve_dtype(spec: Optional[DTypeSpec]) -> np.dtype:
    """Resolve a dtype policy spec to a concrete NumPy floating dtype.

    Accepts ``"float32"``/``"float64"`` (and common aliases), NumPy dtypes,
    or ``None`` (which resolves to :data:`DEFAULT_DTYPE`).  Anything that is
    not a 32- or 64-bit float is rejected: the HDC pipeline is built on real
    arithmetic, and silently running it at float16 precision (or on integer
    arrays) produces models that are wrong in ways that are hard to trace.
    """
    if spec is None:
        spec = DEFAULT_DTYPE
    if isinstance(spec, str):
        try:
            return np.dtype(_DTYPE_ALIASES[spec.lower()])
        except KeyError as exc:
            raise ConfigurationError(
                f"unsupported dtype {spec!r}; supported: float32, float64"
            ) from exc
    dtype = np.dtype(spec)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ConfigurationError(
            f"unsupported dtype {dtype}; supported: float32, float64"
        )
    return dtype


# --------------------------------------------------------------- aggregation
def segment_sum(
    rows: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
    method: str = "auto",
) -> np.ndarray:
    """Sum ``rows`` into ``num_segments`` buckets selected by ``segment_ids``.

    Parameters
    ----------
    rows:
        ``(n, D)`` contribution rows (a 1-D array is treated as one column).
    segment_ids:
        ``(n,)`` integer bucket index per row, in ``0..num_segments-1``.
    num_segments:
        Number of output buckets ``k`` (the class count, for the trainer).
    method:
        ``"matmul"`` builds a ``(k, n)`` one-hot matrix and uses one GEMM --
        the fastest option whenever ``k`` is small, which for NIDS class
        counts it always is.  ``"bincount"`` flattens to a single
        ``np.bincount`` call (no ``(k, n)`` temporary, but bincount works in
        float64).  ``"add_at"`` is the original ``np.add.at`` scatter, kept
        for benchmarking and as a reference implementation.  ``"auto"``
        picks ``"matmul"``.

    Returns
    -------
    ndarray
        ``(k, D)`` bucket sums with the dtype of ``rows``.
    """
    rows = np.asarray(rows)
    if rows.ndim == 1:
        rows = rows[:, None]
    ids = np.asarray(segment_ids, dtype=np.int64).ravel()
    if ids.shape[0] != rows.shape[0]:
        raise ConfigurationError(
            f"segment_ids has {ids.shape[0]} entries but rows has {rows.shape[0]}"
        )
    k = int(num_segments)
    if k <= 0:
        raise ConfigurationError("num_segments must be positive")
    if ids.size and (ids.min() < 0 or ids.max() >= k):
        raise ConfigurationError(
            f"segment_ids must be in [0, {k}), got [{ids.min()}, {ids.max()}]"
        )
    if method not in _SCATTER_METHODS:
        raise ConfigurationError(
            f"unknown scatter method {method!r}; supported: {_SCATTER_METHODS}"
        )
    if method == "auto":
        method = "matmul"

    if method == "matmul":
        onehot = np.zeros((k, ids.size), dtype=rows.dtype)
        onehot[ids, np.arange(ids.size)] = 1
        return onehot @ rows
    if method == "bincount":
        d = rows.shape[1]
        flat_ids = (ids[:, None] * d + np.arange(d)[None, :]).ravel()
        out = np.bincount(flat_ids, weights=rows.ravel(), minlength=k * d)
        return out.reshape(k, d).astype(rows.dtype, copy=False)
    out = np.zeros((k, rows.shape[1]), dtype=rows.dtype)
    np.add.at(out, ids, rows)
    return out


def segment_min_max(
    values: np.ndarray,
    segment_ids: np.ndarray,
    num_segments: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-segment minimum and maximum of ``values``.

    The counterpart of :func:`segment_sum` for order statistics: the columnar
    flow engine uses it to fill per-flow packet-length and inter-arrival
    extrema in one pass instead of per-packet Python comparisons.

    Returns
    -------
    (mins, maxs):
        ``(num_segments,)`` float64 arrays.  Empty segments report ``+inf`` /
        ``-inf`` so callers can guard on their own element counts.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    ids = np.asarray(segment_ids, dtype=np.int64).ravel()
    if ids.shape[0] != values.shape[0]:
        raise ConfigurationError(
            f"segment_ids has {ids.shape[0]} entries but values has {values.shape[0]}"
        )
    k = int(num_segments)
    if k <= 0:
        raise ConfigurationError("num_segments must be positive")
    if ids.size and (ids.min() < 0 or ids.max() >= k):
        raise ConfigurationError(
            f"segment_ids must be in [0, {k}), got [{ids.min()}, {ids.max()}]"
        )
    mins = np.full(k, np.inf)
    maxs = np.full(k, -np.inf)
    np.minimum.at(mins, ids, values)
    np.maximum.at(maxs, ids, values)
    return mins, maxs


# -------------------------------------------------------------------- norms
def row_norms(matrix: np.ndarray) -> np.ndarray:
    """Euclidean norm of every row, in the matrix's own dtype."""
    matrix = np.atleast_2d(np.asarray(matrix))
    return np.linalg.norm(matrix, axis=1)


def update_row_norms(
    norms: np.ndarray, matrix: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Refresh the cached norms of the given ``rows`` of ``matrix`` in place.

    This is the invalidation half of the cached-norm similarity fast path:
    after a trainer mini-batch updates a handful of class hypervectors, only
    the norms of the touched rows are recomputed.
    """
    rows = np.asarray(rows, dtype=np.int64).ravel()
    if rows.size:
        norms[rows] = np.linalg.norm(matrix[rows], axis=1)
    return norms


def merge_class_deltas(
    class_hypervectors: np.ndarray,
    deltas: Sequence[np.ndarray],
    class_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fold per-replica class-matrix deltas into a base matrix in place.

    This is the cluster aggregation rule: HDC class hypervectors are sums of
    (weighted) sample hypervectors, so the updates accumulated by independent
    replicas -- each ``delta = replica_matrix - base_matrix`` -- merge
    *exactly* by addition, something few model families allow.  The merged
    matrix equals applying every replica's ``partial_fit`` stream to the
    base, where each replica's updates were computed against the base state
    (round-synchronous semantics; see ``docs/cluster.md``).

    Parameters
    ----------
    class_hypervectors:
        ``(k, D)`` base class matrix, updated in place.
    deltas:
        Iterable of ``(k, D)`` delta matrices (one per replica).  Deltas of
        mismatched shape are rejected.
    class_norms:
        Optional cached ``(k,)`` norm vector; only the rows any delta
        actually touched are recomputed (the same invalidation contract as
        :func:`update_row_norms`).

    Returns
    -------
    ndarray
        The merged ``class_hypervectors`` (same array object).
    """
    touched = np.zeros(class_hypervectors.shape[0], dtype=bool)
    for delta in deltas:
        delta = np.asarray(delta)
        if delta.shape != class_hypervectors.shape:
            raise ConfigurationError(
                f"delta shape {delta.shape} does not match class matrix shape "
                f"{class_hypervectors.shape}"
            )
        rows = np.any(delta != 0, axis=1)
        if not np.any(rows):
            continue
        class_hypervectors[rows] += delta[rows].astype(
            class_hypervectors.dtype, copy=False
        )
        touched |= rows
    if class_norms is not None:
        update_row_norms(class_norms, class_hypervectors, np.flatnonzero(touched))
    return class_hypervectors


# -------------------------------------------------------- quantized inference
def normalize_similarity_grams(
    grams: np.ndarray,
    scale: float,
    query_norms: np.ndarray,
    class_norms: np.ndarray,
) -> np.ndarray:
    """Rescale an integer-code Gram matrix into cosine similarities, in place.

    Shared by the quantized GEMM path (:class:`QuantizedClassMatrix`) and the
    bit-packed popcount path (:class:`repro.hdc.bitpack.PackedClassMatrix`):
    both produce the same raw Grams, and running the *identical* sequence of
    float operations here is what makes their scores bit-for-bit equal.
    """
    grams *= scale
    eps = np.finfo(np.float64).tiny
    grams /= np.where(query_norms < 1e-12, 1.0, query_norms)[:, None]
    grams /= np.maximum(np.where(class_norms < 1e-12, 1.0, class_norms), eps)[None, :]
    return grams


@dataclass
class QuantizedClassMatrix:
    """Low-bitwidth class matrix with pre-computed norms for fast scoring.

    Wraps :func:`repro.hdc.quantization.quantize` output: the integer codes
    are kept in the smallest integer dtype that fits (int8 for the default
    8-bit policy), and the row norms of the *dequantized* matrix are cached
    so cosine scoring is one GEMM plus an elementwise rescale -- no float
    reconstruction of the ``(k, D)`` matrix per call.
    """

    quantized: QuantizedArray
    codes: np.ndarray
    norms: np.ndarray
    _float_codes_t: Dict[str, np.ndarray] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @classmethod
    def from_matrix(cls, class_hypervectors: np.ndarray, bits: int = 8) -> "QuantizedClassMatrix":
        """Quantize a ``(k, D)`` class matrix for inference.

        Rows are normalized before quantization: cosine scoring is invariant
        to per-row scale, and a shared per-tensor scale would otherwise let
        the large-magnitude majority-class rows starve the rare attack
        classes of quantization resolution.
        """
        m = np.asarray(class_hypervectors, dtype=np.float64)
        norms = np.linalg.norm(m, axis=1, keepdims=True)
        m = m / np.where(norms < 1e-12, 1.0, norms)
        q = quantize(m, bits)
        if bits == 1:
            # 1-bit codes are stored {0, 1}; decode to bipolar for the GEMM.
            codes = np.where(q.codes > 0, 1, -1).astype(np.int8)
        elif bits <= 8:
            codes = q.codes.astype(np.int8)
        elif bits <= 16:
            codes = q.codes.astype(np.int16)
        else:
            codes = q.codes.astype(np.int32)
        norms = np.linalg.norm(codes.astype(np.float64) * q.scale, axis=1)
        return cls(quantized=q, codes=codes, norms=norms)

    @property
    def bits(self) -> int:
        """Element bitwidth of the stored codes."""
        return self.quantized.bits

    def scores(self, queries: np.ndarray, query_norms: Optional[np.ndarray] = None) -> np.ndarray:
        """Cosine similarity of ``(n, D)`` queries against the quantized classes.

        At ``bits == 1`` the queries are sign-binarized first (elements
        ``>= 0`` map to ``+1``), making the score a *fully binary* inner
        product -- the regime a 1-bit accelerator runs, and the contract
        the XOR/popcount path (:class:`repro.hdc.bitpack.PackedClassMatrix`)
        reproduces bit for bit.  ``query_norms`` is ignored for 1-bit
        scoring: binarized queries all have norm ``sqrt(D)``.
        """
        q = np.atleast_2d(np.asarray(queries))
        if q.shape[1] != self.codes.shape[1]:
            raise ConfigurationError(
                f"query dimensionality {q.shape[1]} != class dimensionality "
                f"{self.codes.shape[1]}"
            )
        dtype = np.dtype(q.dtype if q.dtype in (np.float32, np.float64) else np.float64)
        if self.bits == 1:
            one = dtype.type(1.0)
            q = np.where(q >= 0, one, -one).astype(dtype, copy=False)
            query_norms = None
        key = np.dtype(dtype).name
        if key not in self._float_codes_t:
            # One-time float view per query dtype; the codes are immutable
            # after construction, so predict calls reuse it.
            self._float_codes_t[key] = self.codes.T.astype(dtype)
        grams = q @ self._float_codes_t[key]
        qn = row_norms(q) if query_norms is None else np.asarray(query_norms)
        return normalize_similarity_grams(grams, self.quantized.scale, qn, self.norms)


__all__ = [
    "DEFAULT_DTYPE",
    "resolve_dtype",
    "segment_sum",
    "segment_min_max",
    "row_norms",
    "update_row_norms",
    "merge_class_deltas",
    "normalize_similarity_grams",
    "QuantizedClassMatrix",
]
