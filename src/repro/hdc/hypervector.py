"""Hypervector container and random-hypervector constructors."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.exceptions import EncodingError
from repro.hdc import operations as ops
from repro.hdc.similarity import cosine_similarity, hamming_similarity
from repro.utils.rng import SeedLike, ensure_rng


class Hypervector:
    """A single hypervector with MAP-algebra convenience methods.

    The learning code operates directly on NumPy arrays for speed; this class
    exists for the public API, the item memory and the examples, where an
    object with named operations reads better than raw array math.
    """

    __slots__ = ("_data",)

    def __init__(self, data: Iterable[float]):
        arr = np.asarray(data, dtype=np.float64).ravel()
        if arr.size == 0:
            raise EncodingError("a hypervector must have at least one dimension")
        self._data = arr

    # ------------------------------------------------------------------ data
    @property
    def data(self) -> np.ndarray:
        """The underlying 1-D float64 array (a direct reference, not a copy)."""
        return self._data

    @property
    def dim(self) -> int:
        """Dimensionality of the hypervector."""
        return int(self._data.shape[0])

    def copy(self) -> "Hypervector":
        """Return an independent copy."""
        return Hypervector(self._data.copy())

    # ------------------------------------------------------------ operations
    def bundle(self, other: "Hypervector") -> "Hypervector":
        """Element-wise addition (superposition)."""
        return Hypervector(self._data + self._coerce(other))

    def bind(self, other: "Hypervector") -> "Hypervector":
        """Element-wise multiplication (association)."""
        return Hypervector(ops.bind(self._data, self._coerce(other)))

    def permute(self, shifts: int = 1) -> "Hypervector":
        """Cyclic shift by ``shifts`` positions."""
        return Hypervector(ops.permute(self._data, shifts))

    def normalize(self) -> "Hypervector":
        """L2-normalized copy."""
        return Hypervector(ops.normalize(self._data))

    def hard_quantize(self) -> "Hypervector":
        """Bipolar ``{-1, +1}`` copy."""
        return Hypervector(ops.hard_quantize(self._data))

    def cosine(self, other: "Hypervector") -> float:
        """Cosine similarity with ``other``."""
        return cosine_similarity(self._data, self._coerce(other))

    def hamming(self, other: "Hypervector") -> float:
        """Normalized Hamming (sign-agreement) similarity with ``other``."""
        return hamming_similarity(self._data, self._coerce(other))

    # ------------------------------------------------------------- operators
    def __add__(self, other: "Hypervector") -> "Hypervector":
        return self.bundle(other)

    def __mul__(self, other: "Hypervector") -> "Hypervector":
        return self.bind(other)

    def __len__(self) -> int:
        return self.dim

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypervector):
            return NotImplemented
        return self.dim == other.dim and bool(np.allclose(self._data, other._data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        head = np.array2string(self._data[:4], precision=3)
        return f"Hypervector(dim={self.dim}, head={head})"

    @staticmethod
    def _coerce(other: "Hypervector") -> np.ndarray:
        if isinstance(other, Hypervector):
            return other._data
        return np.asarray(other, dtype=np.float64).ravel()


def random_hypervector(
    dim: int,
    kind: str = "bipolar",
    rng: SeedLike = None,
) -> Hypervector:
    """Draw a random hypervector.

    Parameters
    ----------
    dim:
        Dimensionality (must be positive).
    kind:
        ``"bipolar"`` for i.i.d. ``{-1, +1}`` entries, ``"gaussian"`` for
        i.i.d. standard-normal entries, ``"binary"`` for ``{0, 1}`` entries.
    rng:
        Seed or generator for reproducibility.
    """
    if dim <= 0:
        raise EncodingError("dim must be positive")
    gen = ensure_rng(rng)
    if kind == "bipolar":
        data = gen.choice(np.array([-1.0, 1.0]), size=dim)
    elif kind == "gaussian":
        data = gen.standard_normal(dim)
    elif kind == "binary":
        data = gen.integers(0, 2, size=dim).astype(np.float64)
    else:
        raise EncodingError(f"unknown hypervector kind: {kind!r}")
    return Hypervector(data)


def identity_hypervector(dim: int) -> Hypervector:
    """The multiplicative identity for binding (all ones)."""
    if dim <= 0:
        raise EncodingError("dim must be positive")
    return Hypervector(np.ones(dim))


def level_hypervectors(
    levels: int,
    dim: int,
    rng: SeedLike = None,
) -> List[Hypervector]:
    """Generate ``levels`` correlated level hypervectors (thermometer code).

    The first level is a random bipolar hypervector.  Each subsequent level
    flips a fresh slice of ``dim / (levels - 1)`` positions, so that adjacent
    levels are highly similar and the first/last levels are nearly orthogonal.
    This is the standard construction used by level-ID record encoders.
    """
    if levels < 2:
        raise EncodingError("level_hypervectors requires at least 2 levels")
    if dim <= 0:
        raise EncodingError("dim must be positive")
    gen = ensure_rng(rng)
    base = gen.choice(np.array([-1.0, 1.0]), size=dim)
    flip_order = gen.permutation(dim)
    vectors = [Hypervector(base.copy())]
    flips_per_level = dim / (levels - 1)
    current = base.copy()
    flipped = 0
    for level in range(1, levels):
        target = int(round(level * flips_per_level))
        idx = flip_order[flipped:target]
        current[idx] *= -1.0
        flipped = target
        vectors.append(Hypervector(current.copy()))
    return vectors
