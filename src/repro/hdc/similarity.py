"""Similarity kernels used for HDC training and inference."""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError

_EPS = 1e-12


def dot_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Plain dot product between two hypervectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(a @ b)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors (0 when either is zero)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(a @ b / (na * nb))


def cosine_similarity_matrix(queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Cosine similarity between every query row and every class row.

    Parameters
    ----------
    queries:
        ``(n, D)`` encoded query hypervectors.
    classes:
        ``(k, D)`` class hypervectors.

    Returns
    -------
    ndarray
        ``(n, k)`` matrix of cosine similarities; rows/columns whose source
        vector is all-zero produce zero similarity.
    """
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    c = np.atleast_2d(np.asarray(classes, dtype=np.float64))
    if q.shape[1] != c.shape[1]:
        raise EncodingError(
            f"query dimensionality {q.shape[1]} != class dimensionality {c.shape[1]}"
        )
    qn = np.linalg.norm(q, axis=1, keepdims=True)
    cn = np.linalg.norm(c, axis=1, keepdims=True)
    qn = np.where(qn < _EPS, 1.0, qn)
    cn = np.where(cn < _EPS, 1.0, cn)
    return (q / qn) @ (c / cn).T


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Hamming similarity between two bipolar/binary hypervectors.

    Returns the fraction of positions where the two vectors agree in sign,
    in ``[0, 1]``.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean(np.sign(a) == np.sign(b)))
