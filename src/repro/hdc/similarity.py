"""Similarity kernels used for HDC training and inference."""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError

_EPS = 1e-12


def dot_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Plain dot product between two hypervectors."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(a @ b)


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors (0 when either is zero)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na < _EPS or nb < _EPS:
        return 0.0
    return float(a @ b / (na * nb))


def cosine_similarity_matrix(
    queries: np.ndarray,
    classes: np.ndarray,
    query_norms: np.ndarray | None = None,
    class_norms: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Cosine similarity between every query row and every class row.

    The kernel computes the raw ``(n, k)`` Gram matrix first and rescales it
    by the row norms afterwards, so -- unlike the naive formulation -- it
    never allocates normalized ``(n, D)`` / ``(k, D)`` copies of the
    operands.  Callers that score many batches against a slowly changing
    class matrix (the adaptive trainer, the models' predict path) can pass
    pre-computed ``query_norms`` / ``class_norms`` to skip the norm
    computation entirely; see :func:`repro.hdc.backend.update_row_norms` for
    the matching cache-invalidation helper.

    Parameters
    ----------
    queries:
        ``(n, D)`` encoded query hypervectors.
    classes:
        ``(k, D)`` class hypervectors.
    query_norms, class_norms:
        Optional pre-computed Euclidean row norms (``(n,)`` / ``(k,)``).
        Must correspond to the current contents of the operands; zero norms
        are handled the same way as when computed internally.
    out:
        Optional pre-allocated ``(n, k)`` output buffer for the Gram matrix
        (must match the matmul result dtype).

    Returns
    -------
    ndarray
        ``(n, k)`` matrix of cosine similarities; rows/columns whose source
        vector is all-zero produce zero similarity.  Floating inputs keep
        their dtype (float32 in, float32 out); other dtypes compute in
        float64.
    """
    q = np.atleast_2d(np.asarray(queries))
    c = np.atleast_2d(np.asarray(classes))
    if q.dtype not in (np.float32, np.float64):
        q = q.astype(np.float64)
    if c.dtype not in (np.float32, np.float64):
        c = c.astype(np.float64)
    if q.shape[1] != c.shape[1]:
        raise EncodingError(
            f"query dimensionality {q.shape[1]} != class dimensionality {c.shape[1]}"
        )
    grams = np.matmul(q, c.T, out=out)
    qn = np.linalg.norm(q, axis=1) if query_norms is None else np.asarray(query_norms)
    cn = np.linalg.norm(c, axis=1) if class_norms is None else np.asarray(class_norms)
    grams /= np.where(qn < _EPS, 1.0, qn)[:, None]
    grams /= np.where(cn < _EPS, 1.0, cn)[None, :]
    return grams


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Normalized Hamming similarity between two bipolar/binary hypervectors.

    Returns the fraction of positions where the two vectors agree in sign,
    in ``[0, 1]``.
    """
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise EncodingError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.mean(np.sign(a) == np.sign(b)))
