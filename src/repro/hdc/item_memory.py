"""Associative item memory with nearest-neighbour cleanup."""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.hypervector import Hypervector, random_hypervector
from repro.hdc.similarity import cosine_similarity_matrix
from repro.utils.rng import SeedLike, ensure_rng


class ItemMemory:
    """Maps symbols to (quasi-)orthogonal hypervectors and cleans up noisy queries.

    The item memory is the HDC analogue of an embedding table: every discrete
    symbol (protocol name, service, TCP flag, ...) is assigned a random
    hypervector on first use, and ``cleanup`` maps a noisy hypervector back to
    the closest stored symbol.
    """

    def __init__(self, dim: int, kind: str = "bipolar", rng: SeedLike = None):
        if dim <= 0:
            raise EncodingError("ItemMemory dimensionality must be positive")
        self._dim = int(dim)
        self._kind = kind
        self._rng = ensure_rng(rng)
        self._items: Dict[Hashable, Hypervector] = {}

    # -------------------------------------------------------------- protocol
    @property
    def dim(self) -> int:
        """Dimensionality of stored hypervectors."""
        return self._dim

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, symbol: Hashable) -> bool:
        return symbol in self._items

    def symbols(self) -> List[Hashable]:
        """All stored symbols, in insertion order."""
        return list(self._items.keys())

    # ------------------------------------------------------------------- API
    def add(self, symbol: Hashable, vector: Optional[Hypervector] = None) -> Hypervector:
        """Register ``symbol`` (idempotent) and return its hypervector."""
        if symbol in self._items:
            return self._items[symbol]
        if vector is None:
            vector = random_hypervector(self._dim, kind=self._kind, rng=self._rng)
        elif vector.dim != self._dim:
            raise EncodingError(
                f"vector dimensionality {vector.dim} does not match item memory ({self._dim})"
            )
        self._items[symbol] = vector
        return vector

    def get(self, symbol: Hashable) -> Hypervector:
        """Return the hypervector for ``symbol``, creating it on first use."""
        return self.add(symbol)

    def cleanup(self, query: Hypervector) -> Tuple[Hashable, float]:
        """Return the stored ``(symbol, similarity)`` closest to ``query``.

        Raises
        ------
        EncodingError
            If the memory is empty.
        """
        if not self._items:
            raise EncodingError("cannot clean up against an empty item memory")
        symbols = list(self._items.keys())
        matrix = np.stack([self._items[s].data for s in symbols])
        sims = cosine_similarity_matrix(query.data, matrix)[0]
        best = int(np.argmax(sims))
        return symbols[best], float(sims[best])

    def as_matrix(self) -> np.ndarray:
        """Return all stored hypervectors as a ``(n_items, dim)`` array."""
        if not self._items:
            return np.zeros((0, self._dim))
        return np.stack([hv.data for hv in self._items.values()])
