"""Symmetric bitwidth quantization of hypervector models.

The paper's Table I and Fig. 5 study CyberHD with element bitwidths from 32
down to 1 bit.  This module provides the quantization scheme used by those
experiments:

* ``bits == 1``   -> bipolar sign quantization, codes in ``{-1, +1}`` stored as
  ``{0, 1}`` bit patterns.
* ``bits >= 2``   -> symmetric uniform quantization to signed integers in
  ``[-(2^(bits-1) - 1), 2^(bits-1) - 1]`` with a single per-tensor scale.

The integer *codes* are what the hardware fault-injection model flips bits in,
exactly as random memory faults would corrupt a deployed model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError

SUPPORTED_BITWIDTHS = (1, 2, 4, 8, 16, 32)


@dataclass
class QuantizedArray:
    """A quantized tensor: integer codes plus the scale to reconstruct reals.

    Attributes
    ----------
    codes:
        Integer codes.  For ``bits == 1`` the codes are in ``{0, 1}`` and map
        to ``{-1, +1}``; otherwise they are signed integers.
    scale:
        Multiplying the (sign-decoded) codes by ``scale`` reconstructs the
        real-valued tensor (up to quantization error).
    bits:
        Element bitwidth.
    """

    codes: np.ndarray
    scale: float
    bits: int

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the underlying tensor."""
        return self.codes.shape

    def copy(self) -> "QuantizedArray":
        """Deep copy (codes are copied)."""
        return QuantizedArray(self.codes.copy(), self.scale, self.bits)


def _check_bits(bits: int) -> int:
    bits = int(bits)
    if bits not in SUPPORTED_BITWIDTHS:
        raise ConfigurationError(
            f"unsupported bitwidth {bits}; supported: {SUPPORTED_BITWIDTHS}"
        )
    return bits


def quantize(array: np.ndarray, bits: int, clip_percentile: float = 90.0) -> QuantizedArray:
    """Quantize ``array`` to ``bits``-bit integer codes with a per-tensor scale.

    The scale is derived from the ``clip_percentile`` of the absolute values
    rather than the absolute maximum: hypervector models have long-tailed
    element distributions, and an outlier-driven scale would collapse most
    elements to the zero code at low bitwidths.  Values beyond the clip point
    saturate to the extreme codes, as they would on fixed-point hardware.
    The default of 90 was calibrated on trained class-hypervector
    distributions, where it maximizes post-quantization accuracy at 2-8 bits
    (the accuracy-optimal clip for long-tailed values is well below the
    maximum -- the standard "clipping calibration" result from fixed-point
    inference practice).
    """
    bits = _check_bits(bits)
    arr = np.asarray(array, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot quantize an empty array")
    if not 0.0 < clip_percentile <= 100.0:
        raise ConfigurationError("clip_percentile must be in (0, 100]")
    max_abs = float(np.max(np.abs(arr)))
    if bits == 1:
        codes = (arr >= 0.0).astype(np.int64)
        scale = max_abs if max_abs > 0.0 else 1.0
        return QuantizedArray(codes, scale, 1)
    qmax = 2 ** (bits - 1) - 1
    clip_value = float(np.percentile(np.abs(arr), clip_percentile))
    if clip_value <= 0.0:
        clip_value = max_abs
    scale = clip_value / qmax if clip_value > 0.0 else 1.0
    # Denormal scales (possible for arrays of denormal floats) would overflow
    # the division; the values saturate to the extreme codes either way.
    with np.errstate(over="ignore"):
        codes = np.clip(np.round(arr / scale), -qmax, qmax).astype(np.int64)
    return QuantizedArray(codes, scale, bits)


def dequantize(quantized: QuantizedArray) -> np.ndarray:
    """Reconstruct the real-valued tensor from a :class:`QuantizedArray`."""
    bits = _check_bits(quantized.bits)
    codes = np.asarray(quantized.codes, dtype=np.float64)
    if bits == 1:
        signs = np.where(codes > 0, 1.0, -1.0)
        return signs * quantized.scale
    return codes * quantized.scale


def quantization_error(array: np.ndarray, bits: int) -> float:
    """Root-mean-square reconstruction error of quantizing ``array`` to ``bits`` bits."""
    arr = np.asarray(array, dtype=np.float64)
    recon = dequantize(quantize(arr, bits))
    return float(np.sqrt(np.mean((arr - recon) ** 2)))


def storage_bits(quantized: QuantizedArray) -> int:
    """Total number of storage bits consumed by the quantized tensor."""
    return int(quantized.codes.size) * int(quantized.bits)
