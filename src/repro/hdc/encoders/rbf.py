"""RBF (random Fourier feature) encoder.

This is the encoder the paper uses for cybersecurity data (Sec. III,
*Dimension Regeneration*): each output dimension ``d`` has a base vector
``b_d ~ N(0, gamma^2 I)`` and a phase ``c_d ~ U(0, 2*pi)``, and the encoding is

    H_d(x) = cos(x . b_d + c_d)

which approximates a Gaussian (RBF) kernel feature map (Rahimi & Recht 2007)
and therefore captures non-linear relationships between flow features.
Regenerating dimension ``d`` simply redraws ``b_d`` and ``c_d``.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.backend import DTypeSpec
from repro.hdc.encoders.base import BaseEncoder
from repro.utils.rng import SeedLike


class RBFEncoder(BaseEncoder):
    """Random-Fourier-feature encoder with per-dimension regeneration.

    Parameters
    ----------
    in_features:
        Number of input features ``F``.
    dim:
        Output dimensionality ``D``.
    gamma:
        Bandwidth of the Gaussian base-vector distribution
        (``b_d ~ N(0, gamma^2 I)``).  Larger gamma means a narrower kernel.
        The default ``"auto"`` uses ``1 / sqrt(in_features)``, which keeps the
        projection phase ``x . b_d`` at unit scale regardless of how many flow
        features the dataset has (the same heuristic as sklearn's
        ``gamma='scale'`` for min-max-scaled inputs).
    use_sine:
        If ``True``, half of the dimensions use ``sin`` instead of ``cos``,
        which reduces the variance of the kernel approximation.
    rng:
        Seed or generator.
    dtype:
        Floating dtype of the base vectors, phases and encodings (the
        random stream is dtype-independent: draws happen in float64 and are
        cast).
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        gamma: float | str = "auto",
        use_sine: bool = False,
        rng: SeedLike = None,
        dtype: DTypeSpec = np.float64,
    ):
        super().__init__(in_features=in_features, dim=dim, rng=rng, dtype=dtype)
        if gamma == "auto":
            gamma = 1.0 / np.sqrt(in_features)
        if not isinstance(gamma, (int, float)) or gamma <= 0:
            raise EncodingError("gamma must be positive or 'auto'")
        self._gamma = float(gamma)
        self._use_sine = bool(use_sine)
        self._bases = self._rng.normal(
            0.0, self._gamma, size=(self._dim, self._in_features)
        ).astype(self._dtype, copy=False)
        self._phases = self._rng.uniform(0.0, 2.0 * np.pi, size=self._dim).astype(
            self._dtype, copy=False
        )
        if self._use_sine:
            self._sine_mask = np.arange(self._dim) % 2 == 1
        else:
            self._sine_mask = np.zeros(self._dim, dtype=bool)

    # ------------------------------------------------------------ properties
    @property
    def gamma(self) -> float:
        """Bandwidth of the Gaussian base-vector distribution."""
        return self._gamma

    @property
    def bases(self) -> np.ndarray:
        """The ``(D, F)`` base-vector matrix (read-only view for inspection)."""
        view = self._bases.view()
        view.setflags(write=False)
        return view

    @property
    def phases(self) -> np.ndarray:
        """The ``(D,)`` phase vector (read-only view for inspection)."""
        view = self._phases.view()
        view.setflags(write=False)
        return view

    # --------------------------------------------------------------- encoding
    def _encode(self, X: np.ndarray) -> np.ndarray:
        projected = X @ self._bases.T + self._phases
        H = np.cos(projected)
        if self._use_sine:
            H[:, self._sine_mask] = np.sin(projected[:, self._sine_mask])
        return H

    def _encode_partial(self, X: np.ndarray, dimensions: np.ndarray) -> np.ndarray:
        projected = X @ self._bases[dimensions].T + self._phases[dimensions]
        H = np.cos(projected)
        if self._use_sine:
            mask = self._sine_mask[dimensions]
            H[:, mask] = np.sin(projected[:, mask])
        return H

    def _regenerate(self, dimensions: np.ndarray) -> None:
        self._bases[dimensions] = self._rng.normal(
            0.0, self._gamma, size=(dimensions.size, self._in_features)
        )
        self._phases[dimensions] = self._rng.uniform(0.0, 2.0 * np.pi, size=dimensions.size)
