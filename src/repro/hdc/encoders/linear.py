"""Linear random-projection encoder.

A simpler (and for linearly separable data, faster-converging) alternative to
the RBF encoder: project the input with a Gaussian random matrix and apply an
optional pointwise nonlinearity.  Used as an ablation against the paper's RBF
choice.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.backend import DTypeSpec
from repro.hdc.encoders.base import BaseEncoder
from repro.utils.rng import SeedLike

_ACTIVATIONS = ("none", "tanh", "sign")


class LinearEncoder(BaseEncoder):
    """Gaussian random-projection encoder with optional nonlinearity.

    Parameters
    ----------
    in_features:
        Number of input features ``F``.
    dim:
        Output dimensionality ``D``.
    activation:
        ``"none"`` (identity), ``"tanh"`` or ``"sign"`` applied to the
        projected values.
    scale:
        Standard deviation of the Gaussian projection entries.
    rng:
        Seed or generator.
    dtype:
        Floating dtype of the projection matrix and the encodings (the
        random stream is dtype-independent: draws happen in float64 and are
        cast).
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        activation: str = "tanh",
        scale: float = 1.0,
        rng: SeedLike = None,
        dtype: DTypeSpec = np.float64,
    ):
        super().__init__(in_features=in_features, dim=dim, rng=rng, dtype=dtype)
        if activation not in _ACTIVATIONS:
            raise EncodingError(
                f"activation must be one of {_ACTIVATIONS}, got {activation!r}"
            )
        if scale <= 0:
            raise EncodingError("scale must be positive")
        self._activation = activation
        self._scale = float(scale)
        self._bases = self._rng.normal(
            0.0, self._scale, size=(self._dim, self._in_features)
        ).astype(self._dtype, copy=False)

    @property
    def activation(self) -> str:
        """Name of the pointwise nonlinearity."""
        return self._activation

    @property
    def bases(self) -> np.ndarray:
        """The ``(D, F)`` projection matrix (read-only view)."""
        view = self._bases.view()
        view.setflags(write=False)
        return view

    def _encode(self, X: np.ndarray) -> np.ndarray:
        return self._activate(X @ self._bases.T)

    def _encode_partial(self, X: np.ndarray, dimensions: np.ndarray) -> np.ndarray:
        return self._activate(X @ self._bases[dimensions].T)

    def _activate(self, projected: np.ndarray) -> np.ndarray:
        if self._activation == "tanh":
            return np.tanh(projected)
        if self._activation == "sign":
            one = self._dtype.type(1.0)
            return np.where(projected >= 0.0, one, -one)
        return projected

    def _regenerate(self, dimensions: np.ndarray) -> None:
        self._bases[dimensions] = self._rng.normal(
            0.0, self._scale, size=(dimensions.size, self._in_features)
        )
