"""Hyperspace encoders.

An encoder maps a low-dimensional feature vector ``x in R^F`` to a
hypervector ``H in R^D`` (step ``A`` of the CyberHD workflow).  All encoders
share the :class:`BaseEncoder` interface and -- crucially for CyberHD --
support *per-dimension regeneration*: replacing the base vector of a selected
output dimension with a fresh random draw (step ``H``).

Available encoders
------------------
:class:`RBFEncoder`
    Random Fourier features (Rahimi & Recht 2007): ``H_d = cos(x . b_d + c_d)``
    with Gaussian base vectors.  This is the encoder the paper selects for
    cybersecurity data because it captures non-linear feature interactions.
:class:`LinearEncoder`
    Plain random projection with an optional ``tanh``/``sign`` nonlinearity.
:class:`LevelIDEncoder`
    Classic record-based encoding: quantize each feature into levels, bind the
    level hypervector with the feature's identity hypervector, bundle across
    features.
"""

from repro.hdc.encoders.base import BaseEncoder
from repro.hdc.encoders.level_id import LevelIDEncoder
from repro.hdc.encoders.linear import LinearEncoder
from repro.hdc.encoders.rbf import RBFEncoder

ENCODER_REGISTRY = {
    "rbf": RBFEncoder,
    "linear": LinearEncoder,
    "level_id": LevelIDEncoder,
}


def make_encoder(name: str, in_features: int, dim: int, **kwargs) -> BaseEncoder:
    """Instantiate an encoder by registry name (``rbf``, ``linear``, ``level_id``)."""
    try:
        cls = ENCODER_REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown encoder {name!r}; available: {sorted(ENCODER_REGISTRY)}"
        ) from exc
    return cls(in_features=in_features, dim=dim, **kwargs)


__all__ = [
    "BaseEncoder",
    "RBFEncoder",
    "LinearEncoder",
    "LevelIDEncoder",
    "ENCODER_REGISTRY",
    "make_encoder",
]
