"""Abstract encoder interface."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.backend import DTypeSpec, resolve_dtype
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_matrix


class BaseEncoder(abc.ABC):
    """Maps ``(n, F)`` feature matrices to ``(n, D)`` hypervector matrices.

    Subclasses must implement :meth:`_encode` and :meth:`_regenerate`, and
    should override :meth:`_encode_partial` with a column-sliced computation.
    The public :meth:`encode` / :meth:`encode_partial` / :meth:`regenerate`
    wrappers perform validation and book-keeping (regeneration counting for
    effective-dimensionality accounting) so that subclasses stay focused on
    the math.

    Every encoder carries a ``dtype`` (float64 by default for backward
    compatibility; the CyberHD training pipeline passes the backend policy's
    float32).  Random parameter draws always happen in float64 and are cast
    afterwards, so the random stream -- and therefore the *structure* of the
    encoder -- is identical across dtypes for a given seed.
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        rng: SeedLike = None,
        dtype: DTypeSpec = np.float64,
    ):
        if in_features <= 0:
            raise EncodingError("in_features must be positive")
        if dim <= 0:
            raise EncodingError("dim must be positive")
        self._in_features = int(in_features)
        self._dim = int(dim)
        self._rng = ensure_rng(rng)
        self._dtype = resolve_dtype(dtype)
        self._regenerated_total = 0

    # ------------------------------------------------------------ properties
    @property
    def in_features(self) -> int:
        """Number of input features ``F``."""
        return self._in_features

    @property
    def dim(self) -> int:
        """Output (physical) dimensionality ``D``."""
        return self._dim

    @property
    def dtype(self) -> np.dtype:
        """Floating dtype of the encoded hypervectors."""
        return self._dtype

    @property
    def regenerated_total(self) -> int:
        """Cumulative number of dimensions regenerated over the encoder's life.

        The paper's *effective dimensionality* is
        ``D* = dim + regenerated_total``.
        """
        return self._regenerated_total

    @property
    def effective_dim(self) -> int:
        """Effective dimensionality ``D* = D + total regenerated dimensions``."""
        return self._dim + self._regenerated_total

    # ------------------------------------------------------------------- API
    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode a feature matrix into hyperspace.

        Parameters
        ----------
        X:
            ``(n, F)`` feature matrix (a single sample may be passed as a 1-D
            array and is promoted to one row).

        Returns
        -------
        ndarray
            ``(n, D)`` encoded hypervectors in the encoder's dtype.
        """
        X = self._check_input(X)
        H = self._encode(X)
        if H.shape != (X.shape[0], self._dim):
            raise EncodingError(
                f"encoder produced shape {H.shape}, expected {(X.shape[0], self._dim)}"
            )
        return H

    def encode_packed(self, X: np.ndarray, chunk_size: int = 2048) -> np.ndarray:
        """Encode, sign-binarize and bit-pack in one fused pass.

        The packed serving path scores sign bits only, so materializing the
        full ``(n, D)`` float hypervector matrix is wasted memory traffic.
        This fusion encodes ``chunk_size`` rows at a time and immediately
        packs each chunk's signs into ``uint64`` words: peak float footprint
        is ``chunk_size * D`` elements instead of ``n * D``, and the output
        is 32x smaller than a float32 encoding.

        Contract: ``encode_packed(X)`` equals
        ``pack_sign_bits(encode(X))`` bit for bit -- encoders are row-wise
        independent, so chunking cannot change any sign.

        Returns
        -------
        ndarray
            ``(n, ceil(D / 64))`` ``uint64`` packed sign bits.
        """
        from repro.hdc.bitpack import pack_sign_bits, packed_words

        X = self._check_input(X)
        n = X.shape[0]
        step = max(1, int(chunk_size))
        out = np.empty((n, packed_words(self._dim)), dtype=np.uint64)
        for start in range(0, n, step):
            H = self._encode(X[start : start + step])
            if H.shape != (min(step, n - start), self._dim):
                raise EncodingError(
                    f"encoder produced shape {H.shape}, expected "
                    f"{(min(step, n - start), self._dim)}"
                )
            out[start : start + step] = pack_sign_bits(H)
        return out

    def encode_partial(self, X: np.ndarray, dimensions: Sequence[int]) -> np.ndarray:
        """Encode only the selected output dimensions.

        This is the incremental re-encoding entry point for dimension
        regeneration: after ``regenerate(dims)`` only the columns in ``dims``
        of an encoded matrix change, so a caller holding ``H = encode(X)``
        can refresh it with ``H[:, dims] = encode_partial(X, dims)`` instead
        of re-encoding all ``D`` columns.

        Contract: ``encode_partial(X, dims)`` is **bitwise identical** to
        ``encode(X)[:, dims]`` for the encoder's current parameters (the
        equivalence suite in ``tests/test_backend.py`` enforces this for
        every bundled encoder).

        Parameters
        ----------
        X:
            ``(n, F)`` feature matrix.
        dimensions:
            Output dimension indices to compute, each in ``[0, D)``.

        Returns
        -------
        ndarray
            ``(n, len(dimensions))`` columns of the encoding, in the order
            the dimensions were given.
        """
        X = self._check_input(X)
        idx = np.asarray(dimensions, dtype=np.int64).ravel()
        if idx.size == 0:
            return np.zeros((X.shape[0], 0), dtype=self._dtype)
        if idx.min() < 0 or idx.max() >= self._dim:
            raise EncodingError(
                f"partial-encode indices must be in [0, {self._dim}), got "
                f"[{idx.min()}, {idx.max()}]"
            )
        H = self._encode_partial(X, idx)
        if H.shape != (X.shape[0], idx.size):
            raise EncodingError(
                f"encoder produced shape {H.shape}, expected {(X.shape[0], idx.size)}"
            )
        return H

    def regenerate(self, dimensions: Sequence[int]) -> np.ndarray:
        """Resample the base vectors of the selected output dimensions.

        Parameters
        ----------
        dimensions:
            Indices of output dimensions whose base vectors are replaced with
            fresh random draws (step ``H`` of the CyberHD workflow).

        Returns
        -------
        ndarray
            The (sorted, de-duplicated) dimension indices actually regenerated.
        """
        idx = np.unique(np.asarray(dimensions, dtype=np.int64))
        if idx.size == 0:
            return idx
        if idx.min() < 0 or idx.max() >= self._dim:
            raise EncodingError(
                f"regeneration indices must be in [0, {self._dim}), got "
                f"[{idx.min()}, {idx.max()}]"
            )
        self._regenerate(idx)
        self._regenerated_total += int(idx.size)
        return idx

    # --------------------------------------------------------- subclass API
    @abc.abstractmethod
    def _encode(self, X: np.ndarray) -> np.ndarray:
        """Encode a validated ``(n, F)`` matrix; return ``(n, D)``."""

    def _encode_partial(self, X: np.ndarray, dimensions: np.ndarray) -> np.ndarray:
        """Encode a validated ``(n, F)`` matrix restricted to ``dimensions``.

        The fallback computes the full encoding and slices it; subclasses
        override with a computation proportional to ``len(dimensions)``.
        """
        return self._encode(X)[:, dimensions]

    @abc.abstractmethod
    def _regenerate(self, dimensions: np.ndarray) -> None:
        """Resample base vectors for the validated dimension indices."""

    # ----------------------------------------------------------------- misc
    def _check_input(self, X: np.ndarray) -> np.ndarray:
        X = check_matrix(X, "X")
        if X.shape[1] != self._in_features:
            raise EncodingError(
                f"encoder expects {self._in_features} features, got {X.shape[1]}"
            )
        return X.astype(self._dtype, copy=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(in_features={self._in_features}, dim={self._dim}, "
            f"dtype={self._dtype.name}, regenerated_total={self._regenerated_total})"
        )
