"""Level-ID record encoder.

The classic record-based HDC encoding (Rahimi et al. 2016): every feature has
an identity hypervector, every quantization level has a correlated level
hypervector, and a sample is encoded as

    H(x) = sum_f  ID_f * LEVEL(level_of(x_f))

where ``*`` is binding (element-wise multiplication) and the sum is bundling.
Included here both as a baseline encoder ablation and because the static
"baseline HDC" systems the paper compares against traditionally use it.

The encoder precomputes the bound pairs ``B[f, l] = ID_f * LEVEL_l`` as an
``(F, levels, D)`` lookup table, so encoding a batch is a single fancy-index
gather plus a sum over the feature axis -- no per-feature Python loop.  The
gather is chunked over samples to keep the ``(chunk, F, D)`` temporary at a
fixed memory budget.

Regeneration of an output dimension ``d`` resamples column ``d`` of every
identity hypervector (the level hypervectors keep their thermometer
structure); only the affected columns of the lookup table are rebuilt.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.backend import DTypeSpec
from repro.hdc.encoders.base import BaseEncoder
from repro.utils.rng import SeedLike

# Elements per (chunk, F, D) gather temporary: 2**21 elements is 8 MB at
# float32 / 16 MB at float64.  Larger chunks spill the gather temporary out
# of cache and measurably slow the encode down; smaller ones pay Python loop
# overhead per chunk.
_CHUNK_ELEMENTS = 2**21


class LevelIDEncoder(BaseEncoder):
    """Record-based (level-ID) encoder with per-dimension regeneration.

    Parameters
    ----------
    in_features:
        Number of input features ``F``.
    dim:
        Output dimensionality ``D``.
    levels:
        Number of quantization levels per feature.
    low, high:
        Expected numeric range of the (already normalized) input features;
        values outside the range are clipped.  The default ``(0, 1)`` matches
        the min-max scaling used by the dataset preprocessing.
    rng:
        Seed or generator.
    dtype:
        Floating dtype of the hypervectors and encodings (the random stream
        is dtype-independent: draws happen in float64 and are cast).
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        levels: int = 16,
        low: float = 0.0,
        high: float = 1.0,
        rng: SeedLike = None,
        dtype: DTypeSpec = np.float64,
    ):
        super().__init__(in_features=in_features, dim=dim, rng=rng, dtype=dtype)
        if levels < 2:
            raise EncodingError("levels must be at least 2")
        if high <= low:
            raise EncodingError("high must be greater than low")
        self._levels = int(levels)
        self._low = float(low)
        self._high = float(high)
        # Identity hypervectors: one bipolar row per feature.
        self._id_vectors = self._rng.choice(
            np.array([-1.0, 1.0]), size=(self._in_features, self._dim)
        ).astype(self._dtype, copy=False)
        # Level hypervectors built with the thermometer construction.
        self._level_vectors = self._build_levels()
        # Bound-pair lookup table B[f, l] = ID_f * LEVEL_l, flattened over
        # (f, l) so a batch encodes as one gather over row indices.
        self._bound_table = (
            self._id_vectors[:, None, :] * self._level_vectors[None, :, :]
        )
        self._level_offsets = (
            np.arange(self._in_features, dtype=np.int64) * self._levels
        )

    # ------------------------------------------------------------ properties
    @property
    def levels(self) -> int:
        """Number of quantization levels."""
        return self._levels

    @property
    def id_vectors(self) -> np.ndarray:
        """The ``(F, D)`` identity hypervectors (read-only view)."""
        view = self._id_vectors.view()
        view.setflags(write=False)
        return view

    @property
    def level_vectors(self) -> np.ndarray:
        """The ``(levels, D)`` level hypervectors (read-only view)."""
        view = self._level_vectors.view()
        view.setflags(write=False)
        return view

    # ----------------------------------------------------------------- build
    def _build_levels(self) -> np.ndarray:
        base = self._rng.choice(np.array([-1.0, 1.0]), size=self._dim)
        flip_order = self._rng.permutation(self._dim)
        levels = np.empty((self._levels, self._dim))
        levels[0] = base
        flips_per_level = self._dim / (self._levels - 1)
        current = base.copy()
        flipped = 0
        for level in range(1, self._levels):
            target = int(round(level * flips_per_level))
            current[flip_order[flipped:target]] *= -1.0
            flipped = target
            levels[level] = current
        return levels.astype(self._dtype, copy=False)

    def _quantize_levels(self, X: np.ndarray) -> np.ndarray:
        clipped = np.clip(X, self._low, self._high)
        scaled = (clipped - self._low) / (self._high - self._low)
        return np.minimum((scaled * self._levels).astype(np.int64), self._levels - 1)

    # --------------------------------------------------------------- encoding
    def _encode(self, X: np.ndarray) -> np.ndarray:
        return self._gather_encode(X, self._bound_table, self._dim)

    def _encode_partial(self, X: np.ndarray, dimensions: np.ndarray) -> np.ndarray:
        # Slicing the table keeps the gather + pairwise-sum order identical
        # to the full encode, so the partial columns are bitwise equal.
        return self._gather_encode(
            X, np.ascontiguousarray(self._bound_table[:, :, dimensions]), dimensions.size
        )

    def _gather_encode(self, X: np.ndarray, table: np.ndarray, width: int) -> np.ndarray:
        flat_rows = self._quantize_levels(X) + self._level_offsets  # (n, F)
        flat_table = table.reshape(self._in_features * self._levels, width)
        n = X.shape[0]
        H = np.empty((n, width), dtype=self._dtype)
        chunk = max(1, _CHUNK_ELEMENTS // max(1, self._in_features * width))
        for start in range(0, n, chunk):
            rows = flat_rows[start : start + chunk]
            H[start : start + chunk] = flat_table[rows].sum(axis=1)
        return H

    def _regenerate(self, dimensions: np.ndarray) -> None:
        self._id_vectors[:, dimensions] = self._rng.choice(
            np.array([-1.0, 1.0]), size=(self._in_features, dimensions.size)
        )
        self._bound_table[:, :, dimensions] = (
            self._id_vectors[:, None, dimensions] * self._level_vectors[None, :, dimensions]
        )
