"""Level-ID record encoder.

The classic record-based HDC encoding (Rahimi et al. 2016): every feature has
an identity hypervector, every quantization level has a correlated level
hypervector, and a sample is encoded as

    H(x) = sum_f  ID_f * LEVEL(level_of(x_f))

where ``*`` is binding (element-wise multiplication) and the sum is bundling.
Included here both as a baseline encoder ablation and because the static
"baseline HDC" systems the paper compares against traditionally use it.

Regeneration of an output dimension ``d`` resamples column ``d`` of every
identity hypervector (the level hypervectors keep their thermometer structure).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import EncodingError
from repro.hdc.encoders.base import BaseEncoder
from repro.utils.rng import SeedLike


class LevelIDEncoder(BaseEncoder):
    """Record-based (level-ID) encoder with per-dimension regeneration.

    Parameters
    ----------
    in_features:
        Number of input features ``F``.
    dim:
        Output dimensionality ``D``.
    levels:
        Number of quantization levels per feature.
    low, high:
        Expected numeric range of the (already normalized) input features;
        values outside the range are clipped.  The default ``(0, 1)`` matches
        the min-max scaling used by the dataset preprocessing.
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        in_features: int,
        dim: int,
        levels: int = 16,
        low: float = 0.0,
        high: float = 1.0,
        rng: SeedLike = None,
    ):
        super().__init__(in_features=in_features, dim=dim, rng=rng)
        if levels < 2:
            raise EncodingError("levels must be at least 2")
        if high <= low:
            raise EncodingError("high must be greater than low")
        self._levels = int(levels)
        self._low = float(low)
        self._high = float(high)
        # Identity hypervectors: one bipolar row per feature.
        self._id_vectors = self._rng.choice(
            np.array([-1.0, 1.0]), size=(self._in_features, self._dim)
        )
        # Level hypervectors built with the thermometer construction.
        self._level_vectors = self._build_levels()

    # ------------------------------------------------------------ properties
    @property
    def levels(self) -> int:
        """Number of quantization levels."""
        return self._levels

    @property
    def id_vectors(self) -> np.ndarray:
        """The ``(F, D)`` identity hypervectors (read-only view)."""
        view = self._id_vectors.view()
        view.setflags(write=False)
        return view

    @property
    def level_vectors(self) -> np.ndarray:
        """The ``(levels, D)`` level hypervectors (read-only view)."""
        view = self._level_vectors.view()
        view.setflags(write=False)
        return view

    # ----------------------------------------------------------------- build
    def _build_levels(self) -> np.ndarray:
        base = self._rng.choice(np.array([-1.0, 1.0]), size=self._dim)
        flip_order = self._rng.permutation(self._dim)
        levels = np.empty((self._levels, self._dim))
        levels[0] = base
        flips_per_level = self._dim / (self._levels - 1)
        current = base.copy()
        flipped = 0
        for level in range(1, self._levels):
            target = int(round(level * flips_per_level))
            current[flip_order[flipped:target]] *= -1.0
            flipped = target
            levels[level] = current
        return levels

    def _quantize_levels(self, X: np.ndarray) -> np.ndarray:
        clipped = np.clip(X, self._low, self._high)
        scaled = (clipped - self._low) / (self._high - self._low)
        return np.minimum((scaled * self._levels).astype(np.int64), self._levels - 1)

    # --------------------------------------------------------------- encoding
    def _encode(self, X: np.ndarray) -> np.ndarray:
        level_idx = self._quantize_levels(X)  # (n, F)
        n = X.shape[0]
        H = np.zeros((n, self._dim))
        # Bundle bound (ID * LEVEL) pairs feature by feature; looping over the
        # (small) feature axis keeps memory at O(n * D).
        for f in range(self._in_features):
            H += self._id_vectors[f] * self._level_vectors[level_idx[:, f]]
        return H

    def _regenerate(self, dimensions: np.ndarray) -> None:
        self._id_vectors[:, dimensions] = self._rng.choice(
            np.array([-1.0, 1.0]), size=(self._in_features, dimensions.size)
        )
