"""Hyperdimensional-computing substrate.

The modules in this package implement the low-level machinery the paper's
learning framework builds on:

``hypervector``
    A light :class:`Hypervector` container plus constructors for random,
    level (thermometer-correlated) and identity hypervectors.

``operations``
    The MAP (multiply-add-permute) algebra on raw NumPy arrays: bundling,
    binding, permutation, normalization and sign quantization.

``similarity``
    Cosine, dot and Hamming similarity kernels for single vectors and for
    (queries x classes) matrices.

``item_memory``
    Associative item memory with nearest-neighbour cleanup.

``encoders``
    Input encoders that map flow-feature vectors into hyperspace: RBF random
    features (the paper's choice for cybersecurity data), linear projection
    and level-ID record encoding.

``quantization``
    Symmetric bitwidth quantization of hypervector models, used by the
    hardware experiments (Table I and Fig. 5).

``backend``
    The vectorized compute backend: dtype policy (float32 default), one-hot
    GEMM / bincount segment sums replacing ``np.add.at`` scatters, cached
    row-norm bookkeeping, and the low-bitwidth inference path.

``bitpack``
    The bit-packed binary inference fabric: 1-bit models stored 64
    dimensions per ``uint64`` word and scored by XOR + popcount Hamming,
    bit-for-bit equal to the ``bits=1`` quantized path at a fraction of the
    memory traffic (the production form of Table I's 1-bit regime).
"""

from repro.hdc.backend import (
    DEFAULT_DTYPE,
    QuantizedClassMatrix,
    resolve_dtype,
    row_norms,
    segment_sum,
    update_row_norms,
)
from repro.hdc.bitpack import (
    PackedClassMatrix,
    binary_dot,
    flip_packed_bits,
    hamming_distances,
    pack_sign_bits,
    packed_words,
    popcount,
    unpack_sign_bits,
)

from repro.hdc.hypervector import (
    Hypervector,
    identity_hypervector,
    level_hypervectors,
    random_hypervector,
)
from repro.hdc.item_memory import ItemMemory
from repro.hdc.operations import (
    bind,
    bundle,
    hard_quantize,
    normalize,
    normalize_rows,
    permute,
)
from repro.hdc.quantization import QuantizedArray, dequantize, quantize
from repro.hdc.similarity import (
    cosine_similarity,
    cosine_similarity_matrix,
    dot_similarity,
    hamming_similarity,
)
from repro.hdc.encoders import BaseEncoder, LevelIDEncoder, LinearEncoder, RBFEncoder

__all__ = [
    "DEFAULT_DTYPE",
    "resolve_dtype",
    "segment_sum",
    "row_norms",
    "update_row_norms",
    "QuantizedClassMatrix",
    "PackedClassMatrix",
    "pack_sign_bits",
    "unpack_sign_bits",
    "packed_words",
    "popcount",
    "binary_dot",
    "hamming_distances",
    "flip_packed_bits",
    "Hypervector",
    "random_hypervector",
    "level_hypervectors",
    "identity_hypervector",
    "ItemMemory",
    "bundle",
    "bind",
    "permute",
    "normalize",
    "normalize_rows",
    "hard_quantize",
    "cosine_similarity",
    "cosine_similarity_matrix",
    "dot_similarity",
    "hamming_similarity",
    "quantize",
    "dequantize",
    "QuantizedArray",
    "BaseEncoder",
    "RBFEncoder",
    "LinearEncoder",
    "LevelIDEncoder",
]
