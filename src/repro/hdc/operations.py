"""Core MAP-algebra operations on raw hypervector arrays.

All functions operate on plain :class:`numpy.ndarray` objects (1-D vectors or
2-D ``(n, D)`` batches) so that the learning code can stay fully vectorized.
The :class:`repro.hdc.hypervector.Hypervector` wrapper delegates to these
functions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import EncodingError

_EPS = 1e-12


def bundle(vectors: Sequence[np.ndarray] | np.ndarray, weights: Sequence[float] | None = None) -> np.ndarray:
    """Bundle (element-wise add) a collection of hypervectors.

    Bundling produces a hypervector similar to each of its inputs; it is the
    HDC analogue of set union and is how class hypervectors accumulate
    training samples.

    Parameters
    ----------
    vectors:
        Sequence of 1-D arrays of equal dimensionality, or a 2-D ``(n, D)``
        array whose rows are bundled.
    weights:
        Optional per-vector scaling factors (e.g. the ``1 - delta`` adaptive
        weights used by the paper's training rule).
    """
    arr = np.asarray(vectors, dtype=np.float64)
    if arr.ndim == 1:
        return arr.copy()
    if arr.ndim != 2:
        raise EncodingError(f"bundle expects 1-D or 2-D input, got ndim={arr.ndim}")
    if weights is None:
        return arr.sum(axis=0)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (arr.shape[0],):
        raise EncodingError(
            f"weights must have shape ({arr.shape[0]},), got {w.shape}"
        )
    return w @ arr


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Bind two hypervectors (element-wise multiplication).

    Binding produces a vector dissimilar to both operands and is used to
    associate key/value pairs (e.g. feature identity with feature level).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape[-1] != b.shape[-1]:
        raise EncodingError(
            f"cannot bind hypervectors of dimensionality {a.shape[-1]} and {b.shape[-1]}"
        )
    return a * b


def permute(a: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclically permute a hypervector (or batch) by ``shifts`` positions.

    Permutation encodes order/position information; it is its own family of
    unitary operations and preserves norms.
    """
    a = np.asarray(a)
    return np.roll(a, shifts, axis=-1)


def normalize(a: np.ndarray) -> np.ndarray:
    """L2-normalize a single hypervector (returns zeros for a zero vector)."""
    a = np.asarray(a, dtype=np.float64)
    norm = np.linalg.norm(a)
    if norm < _EPS:
        return np.zeros_like(a)
    return a / norm


def normalize_rows(a: np.ndarray) -> np.ndarray:
    """L2-normalize each row of a 2-D array (zero rows stay zero).

    This is step ``D`` of the CyberHD workflow: class hypervectors are
    normalized before per-dimension variances are computed so that classes
    with many training samples do not dominate the variance estimate.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim == 1:
        return normalize(a)
    norms = np.linalg.norm(a, axis=1, keepdims=True)
    norms = np.where(norms < _EPS, 1.0, norms)
    return a / norms


def hard_quantize(a: np.ndarray) -> np.ndarray:
    """Map a real hypervector to the bipolar alphabet ``{-1, +1}``.

    Zero entries map to ``+1`` so the output is always full-rank bipolar.
    """
    a = np.asarray(a, dtype=np.float64)
    return np.where(a >= 0.0, 1.0, -1.0)


def dimension_variance(class_hypervectors: np.ndarray) -> np.ndarray:
    """Per-dimension variance across class hypervectors.

    This is step ``F`` of the CyberHD workflow: dimensions whose values are
    similar across *all* classes carry common (non-discriminative)
    information and are candidates for regeneration.

    Parameters
    ----------
    class_hypervectors:
        ``(k, D)`` array of (typically row-normalized) class hypervectors.

    Returns
    -------
    ndarray
        ``(D,)`` array of variances.
    """
    m = np.asarray(class_hypervectors, dtype=np.float64)
    if m.ndim != 2:
        raise EncodingError("dimension_variance expects a (k, D) class matrix")
    return m.var(axis=0)


def lowest_variance_dimensions(class_hypervectors: np.ndarray, count: int) -> np.ndarray:
    """Indices of the ``count`` dimensions with the lowest cross-class variance.

    Step ``G`` of the CyberHD workflow (dimension dropping).  Ties are broken
    deterministically by index so repeated runs with the same model state
    select the same dimensions.
    """
    variances = dimension_variance(class_hypervectors)
    count = int(count)
    if count <= 0:
        return np.empty(0, dtype=np.int64)
    count = min(count, variances.shape[0])
    order = np.argsort(variances, kind="stable")
    return np.sort(order[:count])
