"""Bit-packed binary inference: ``uint64`` words + XOR/popcount Hamming.

The paper's Table I and Fig. 5 show CyberHD holding accuracy down to 1-bit
element precision.  This module is the *production* form of that regime: the
sign-binarized model (and the sign-binarized queries) are packed 64 dimensions
per ``uint64`` word, and class scoring becomes XOR + popcount -- the kernel a
binary HDC accelerator runs in hardware, executed here with NumPy's word-wide
bit operations (no Python-level loops over dimensions).

Why this is exact, not approximate: for bipolar vectors ``a, b`` in
``{-1, +1}^D`` the inner product is ``a . b = D - 2 * hamming(a, b)`` where
``hamming`` counts disagreeing sign bits.  Both quantities are small integers
(``|a . b| <= D``), which float32/float64 represent exactly for every
practical ``D`` (up to ``2**24``), so the packed path reproduces the float
GEMM of :class:`repro.hdc.backend.QuantizedClassMatrix` at ``bits == 1``
**bit for bit** -- same scores, same argmax, same tie-breaking.  The
equivalence suite in ``tests/test_bitpack.py`` enforces this, including under
deliberately constructed score ties.

Layout contract
---------------
``pack_sign_bits`` stores dimension ``d`` of row ``i`` at bit ``d % 64``
(little-endian bit order) of word ``words[i, d // 64]``.  Dimensions beyond
``D`` in the last word are zero in every packed row, so they XOR to zero and
never contribute to a Hamming distance.  ``flip_packed_bits`` preserves that
invariant by drawing its fault mask over the ``D`` valid columns only and
packing it through the same zero-padding path.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

#: Dimensions stored per packed word.
WORD_BITS = 64

#: Row-chunk size of the blocked Hamming kernel (bounds the broadcast
#: temporary at ``chunk * k * words * 8`` bytes).
DEFAULT_CHUNK_ROWS = 512

# np.bitwise_count arrived in NumPy 2.0; the LUT path below keeps the module
# importable (and the kernels correct) on NumPy 1.x.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

_POPCOUNT_LUT: Optional[np.ndarray] = None


def _popcount_lut() -> np.ndarray:
    global _POPCOUNT_LUT
    if _POPCOUNT_LUT is None:
        # 16-bit table: 64 KiB, four lookups per uint64 word.
        table = np.arange(1 << 16, dtype=np.uint64)
        counts = np.zeros(table.shape, dtype=np.uint8)
        for shift in range(16):
            counts += ((table >> np.uint64(shift)) & np.uint64(1)).astype(np.uint8)
        _POPCOUNT_LUT = counts
    return _POPCOUNT_LUT


def packed_words(dim: int) -> int:
    """Number of ``uint64`` words needed to store ``dim`` sign bits."""
    dim = int(dim)
    if dim <= 0:
        raise ConfigurationError("dim must be positive")
    return (dim + WORD_BITS - 1) // WORD_BITS


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit count of an unsigned integer array.

    Uses :func:`numpy.bitwise_count` when available (NumPy >= 2.0, compiles
    to the hardware popcount); otherwise a 16-bit lookup table over a byte
    view -- both fully vectorized.
    """
    words = np.asarray(words)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(words)
    return popcount_lut16(words)


def popcount_lut16(words: np.ndarray) -> np.ndarray:
    """Reference LUT popcount (16-bit chunks); kept for differential testing."""
    words = np.ascontiguousarray(words, dtype=np.uint64)
    lut = _popcount_lut()
    halves = words.reshape(-1).view(np.uint16).reshape(*words.shape, 4)
    return lut[halves].sum(axis=-1, dtype=np.uint64).astype(np.uint8, copy=False)


def _view_words(packed_bytes: np.ndarray, n_words: int) -> np.ndarray:
    """Reinterpret ``(n, n_words * 8)`` bytes as ``(n, n_words)`` uint64."""
    words = packed_bytes.reshape(-1).view(np.uint64).reshape(-1, n_words)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI/deploys
        words = words.byteswap()
    return words


def pack_sign_bits(matrix: np.ndarray) -> np.ndarray:
    """Sign-binarize a real ``(n, D)`` matrix and pack it to ``uint64`` words.

    Elements ``>= 0`` map to bit 1 (code ``+1``), negatives to bit 0 (code
    ``-1``) -- the same convention as :func:`repro.hdc.quantization.quantize`
    at ``bits == 1``, so a packed model and a :class:`QuantizedArray` of the
    same tensor agree bit for bit.

    Returns a ``(n, ceil(D / 64))`` C-contiguous ``uint64`` array whose tail
    bits (beyond ``D``) are zero.
    """
    m = np.atleast_2d(np.asarray(matrix))
    if m.ndim != 2:
        raise ConfigurationError(f"expected a 2-D matrix, got shape {m.shape}")
    if m.shape[1] == 0:
        raise ConfigurationError("cannot pack a zero-dimensional matrix")
    return pack_code_bits(m >= 0)


def pack_code_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, D)`` array of ``{0, 1}`` codes into ``uint64`` words."""
    bits = np.atleast_2d(np.asarray(bits))
    if bits.dtype not in (np.bool_, np.uint8):
        # packbits consumes bool/uint8 natively; wider codes need one cast.
        bits = bits.astype(np.uint8)
    n, dim = bits.shape
    n_words = packed_words(dim)
    packed8 = np.packbits(bits, axis=1, bitorder="little")
    if packed8.shape[1] < n_words * 8:
        pad = np.zeros((n, n_words * 8 - packed8.shape[1]), dtype=np.uint8)
        packed8 = np.concatenate([packed8, pad], axis=1)
    return np.ascontiguousarray(_view_words(np.ascontiguousarray(packed8), n_words))


def unpack_sign_bits(words: np.ndarray, dim: int) -> np.ndarray:
    """Unpack ``uint64`` words back to an ``(n, dim)`` array of ``{0, 1}`` codes."""
    words = np.atleast_2d(np.asarray(words, dtype=np.uint64))
    n, n_words = words.shape
    if packed_words(dim) != n_words:
        raise ConfigurationError(
            f"{n_words} words cannot hold a dim of {dim} "
            f"(expected {packed_words(dim)})"
        )
    flat = np.ascontiguousarray(words).reshape(-1).view(np.uint8)
    if sys.byteorder == "big":  # pragma: no cover - little-endian CI/deploys
        flat = np.ascontiguousarray(words.byteswap()).reshape(-1).view(np.uint8)
    bits = np.unpackbits(flat.reshape(n, n_words * 8), axis=1, bitorder="little")
    return bits[:, : int(dim)]


def hamming_distances(
    packed_queries: np.ndarray,
    packed_classes: np.ndarray,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Pairwise Hamming distances between packed rows, as ``(n, k)`` int64.

    The kernel XORs a ``(chunk, 1, W)`` query block against the ``(1, k, W)``
    class words and popcounts the result -- one fused broadcast per block, no
    Python loop over dimensions or classes.  ``chunk_rows`` bounds the
    ``chunk * k * W * 8``-byte temporary.
    """
    q = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
    c = np.atleast_2d(np.asarray(packed_classes, dtype=np.uint64))
    if q.shape[1] != c.shape[1]:
        raise ConfigurationError(
            f"packed word count mismatch: queries {q.shape[1]} vs classes {c.shape[1]}"
        )
    n, k = q.shape[0], c.shape[0]
    out = np.empty((n, k), dtype=np.int64)
    step = max(1, int(chunk_rows))
    for start in range(0, n, step):
        block = q[start : start + step]
        xor = block[:, None, :] ^ c[None, :, :]
        out[start : start + step] = popcount(xor).sum(axis=-1, dtype=np.int64)
    return out


def binary_dot(
    packed_queries: np.ndarray,
    packed_classes: np.ndarray,
    dim: int,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
) -> np.ndarray:
    """Bipolar inner products from packed sign bits: ``D - 2 * hamming``.

    Exactly the integer ``(n, k)`` Gram matrix a float GEMM of the ``{-1,+1}``
    decodings would produce.
    """
    distances = hamming_distances(packed_queries, packed_classes, chunk_rows)
    return int(dim) - 2 * distances


def flip_packed_bits(
    words: np.ndarray,
    dim: int,
    error_rate: float,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, int]:
    """Flip each stored bit independently with ``error_rate`` (Fig. 5's model).

    Only the ``dim`` *valid* bits of each row are eligible: tail padding
    stays zero so the ``D - 2 * hamming`` identity survives corruption.
    Returns ``(corrupted_words, n_flipped)``; the input array is not
    modified.
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ConfigurationError("error_rate must be in [0, 1]")
    words = np.atleast_2d(np.asarray(words, dtype=np.uint64))
    n, n_words = words.shape
    if packed_words(dim) != n_words:
        raise ConfigurationError(
            f"{n_words} words cannot hold a dim of {dim} "
            f"(expected {packed_words(dim)})"
        )
    if error_rate == 0.0:
        return words.copy(), 0
    gen = ensure_rng(rng)
    flips = (gen.random((n, int(dim))) < error_rate).astype(np.uint8)
    mask = pack_code_bits(flips)
    return words ^ mask, int(popcount(mask).sum())


@dataclass
class PackedClassMatrix:
    """A 1-bit class matrix stored as packed words, scored by XOR/popcount.

    The packed twin of :class:`repro.hdc.backend.QuantizedClassMatrix` at
    ``bits == 1``: same row normalization, same quantization scale, same
    cached norms -- so :meth:`scores` is bit-for-bit equal to the float-GEMM
    binary path while storing 32x fewer bytes than the float32 matrix.

    Attributes
    ----------
    words:
        ``(k, ceil(D / 64))`` ``uint64`` packed sign bits.  May be a
        read-only view over a shared-memory publication (``shared=True``);
        fault injection and republish then operate through the owner.
    dim:
        True dimensionality ``D`` (the packed tail beyond it is zero).
    scale:
        Quantization scale of the underlying 1-bit codes.
    norms:
        ``(k,)`` float64 cached norms of the dequantized rows (every row of a
        bipolar matrix has norm ``scale * sqrt(D)``; kept per-row to mirror
        the quantized path exactly).
    """

    words: np.ndarray
    dim: int
    scale: float
    norms: np.ndarray
    shared: bool = False

    @classmethod
    def from_class_matrix(cls, class_hypervectors: np.ndarray) -> "PackedClassMatrix":
        """Pack a real ``(k, D)`` class matrix for binary inference."""
        # Deferred import: backend imports nothing from this module's
        # dataclasses at import time, but keep the one-way edge explicit.
        from repro.hdc.backend import QuantizedClassMatrix

        return cls.from_quantized(
            QuantizedClassMatrix.from_matrix(class_hypervectors, bits=1)
        )

    @classmethod
    def from_quantized(cls, quantized: "object") -> "PackedClassMatrix":
        """Pack an existing ``QuantizedClassMatrix(bits=1)``."""
        qa = quantized.quantized
        if qa.bits != 1:
            raise ConfigurationError(
                f"packed inference requires 1-bit codes, got bits={qa.bits}"
            )
        codes = np.asarray(qa.codes)
        return cls(
            words=pack_code_bits((codes > 0).astype(np.uint8)),
            dim=int(codes.shape[1]),
            scale=float(qa.scale),
            norms=np.asarray(quantized.norms, dtype=np.float64).copy(),
        )

    # ------------------------------------------------------------ properties
    @property
    def n_classes(self) -> int:
        """Number of class rows ``k``."""
        return int(self.words.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of packed model storage (words only)."""
        return int(self.words.nbytes)

    # ------------------------------------------------------------------- API
    def pack_queries(self, queries: np.ndarray) -> np.ndarray:
        """Sign-binarize and pack an ``(n, D)`` float query block."""
        q = np.atleast_2d(np.asarray(queries))
        if q.shape[1] != self.dim:
            raise ConfigurationError(
                f"query dimensionality {q.shape[1]} != packed dimensionality {self.dim}"
            )
        return pack_sign_bits(q)

    def scores(self, queries: np.ndarray) -> np.ndarray:
        """Binary cosine scores of real-valued queries (packs, then scores)."""
        q = np.atleast_2d(np.asarray(queries))
        dtype = q.dtype if q.dtype in (np.float32, np.float64) else np.float64
        return self.scores_packed(self.pack_queries(q), dtype=dtype)

    def scores_packed(
        self, packed_queries: np.ndarray, dtype: "np.dtype | type" = np.float32
    ) -> np.ndarray:
        """Binary cosine scores of already-packed queries.

        The integer Gram matrix comes from XOR + popcount; the normalization
        (scale, query norms, class norms) replays the exact float operations
        of ``QuantizedClassMatrix.scores`` at ``bits == 1``, so the two paths
        return identical arrays.  Binarized queries all have Euclidean norm
        ``sqrt(D)`` -- no float view of the queries is ever needed.
        """
        from repro.hdc.backend import normalize_similarity_grams

        packed_queries = np.atleast_2d(np.asarray(packed_queries, dtype=np.uint64))
        if packed_queries.shape[1] != self.words.shape[1]:
            raise ConfigurationError(
                f"packed query width {packed_queries.shape[1]} != class width "
                f"{self.words.shape[1]}"
            )
        dtype = np.dtype(dtype)
        grams = binary_dot(packed_queries, self.words, self.dim).astype(dtype)
        # Each binarized query has exactly D unit-magnitude elements; summing
        # D ones is exact in float32 for every D < 2**24, so this equals
        # np.linalg.norm over the +-1 rows bit for bit.
        query_norms = np.full(
            packed_queries.shape[0], np.sqrt(np.asarray(self.dim, dtype=dtype))
        ).astype(dtype, copy=False)
        return normalize_similarity_grams(grams, self.scale, query_norms, self.norms)

    def copy(self) -> "PackedClassMatrix":
        """Deep, private copy (used to privatize shared-memory views)."""
        return PackedClassMatrix(
            words=np.array(self.words, copy=True),
            dim=self.dim,
            scale=self.scale,
            norms=self.norms.copy(),
            shared=False,
        )


__all__ = [
    "WORD_BITS",
    "PackedClassMatrix",
    "binary_dot",
    "flip_packed_bits",
    "hamming_distances",
    "pack_code_bits",
    "pack_sign_bits",
    "packed_words",
    "popcount",
    "popcount_lut16",
    "unpack_sign_bits",
]
