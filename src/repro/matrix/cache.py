"""Content-addressed caching of matrix cell results.

A cell's cache key hashes everything that could change its measurements:

* the **cell parameters** (suite, forwarded runner kwargs, repeat count);
* the **dataset digest** — a content hash of a small canonical sample of
  the named dataset, so generator changes invalidate cells even when the
  dataset *name* stays the same;
* the **code fingerprint** — a content hash of the source files of the
  modules the suite actually exercises, so editing the cascade cannot
  resurrect a stale cascade cell while leaving untouched suites cached;
* the **dtype policy** — the backend-wide default dtype is an implicit
  parameter of every measurement.

Keys are stable across processes and machines; the cache directory is a
flat set of ``<key>.json`` files written atomically (temp file + rename),
so concurrent writers and interrupted sweeps leave either a complete entry
or none — which is exactly what makes a re-run resume mid-sweep.
"""

from __future__ import annotations

import importlib.util
import json
import os
from hashlib import blake2b
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.matrix.spec import MatrixCell, canonical_json

CELL_SCHEMA = "repro-matrix-cell/1"

#: Canonical sample drawn to digest a dataset (small on purpose: the digest
#: must witness the generator's content, not re-run the workload).
_DIGEST_SAMPLE = {"n_train": 96, "n_test": 48, "seed": 0}

_dataset_digests: Dict[str, str] = {}


def _module_files(module_name: str) -> List[Path]:
    """Source files of a module (every ``.py`` under it, for packages)."""
    spec = importlib.util.find_spec(module_name)
    if spec is None or spec.origin is None:
        return []
    origin = Path(spec.origin)
    if origin.name == "__init__.py":
        return sorted(origin.parent.rglob("*.py"))
    return [origin]


def code_fingerprint(modules: Sequence[str]) -> str:
    """Content hash of the source of ``modules`` (packages recurse)."""
    h = blake2b(digest_size=16)
    for module_name in sorted(set(modules)):
        for path in _module_files(module_name):
            h.update(module_name.encode())
            h.update(path.name.encode())
            try:
                h.update(path.read_bytes())
            except OSError:
                h.update(b"<unreadable>")
    return h.hexdigest()


def dataset_digest(name: str) -> str:
    """Content hash of a canonical sample of dataset ``name``.

    Synthetic datasets are deterministic functions of (name, size, seed), so
    hashing a small fixed sample pins the generator's behaviour: any change
    to the generation code or schema shifts the digest and invalidates every
    cell that consumed the dataset.  Memoized per process.
    """
    cached = _dataset_digests.get(name)
    if cached is not None:
        return cached
    from repro.datasets.loaders import load_dataset

    ds = load_dataset(name, **_DIGEST_SAMPLE)
    h = blake2b(digest_size=16)
    h.update(ds.X_train.tobytes())
    h.update(ds.y_train.tobytes())
    h.update(ds.X_test.tobytes())
    h.update(ds.y_test.tobytes())
    h.update("|".join(ds.class_names).encode())
    digest = h.hexdigest()
    _dataset_digests[name] = digest
    return digest


def cell_key(
    cell: MatrixCell,
    code_fp: str,
    *,
    dtype_policy: Optional[str] = None,
    dataset_fp: Optional[str] = None,
) -> Tuple[str, Dict[str, Any]]:
    """The cell's content-addressed key and its hashed components.

    ``dataset_fp`` defaults to the digest of the cell's ``dataset`` param
    (``None`` when the suite runs on synthetic traffic only — those
    generators live in the fingerprinted modules, so the code fingerprint
    already covers them).
    """
    if dtype_policy is None:
        from repro.hdc.backend import DEFAULT_DTYPE

        dtype_policy = DEFAULT_DTYPE
    if dataset_fp is None:
        dataset_name = cell.params_dict.get("dataset")
        dataset_fp = dataset_digest(str(dataset_name)) if dataset_name else None
    components = {
        "schema": CELL_SCHEMA,
        "suite": cell.suite,
        "params": cell.params_dict,
        "repeats": cell.repeats,
        "dataset": dataset_fp,
        "code": code_fp,
        "dtype": dtype_policy,
    }
    key = blake2b(canonical_json(components).encode(), digest_size=16).hexdigest()
    return key, components


class ResultCache:
    """A flat directory of atomically-written cell result files."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------- API
    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached cell payload, or ``None`` on miss/corruption.

        A truncated or unparsable entry (a writer killed mid-``rename`` can
        not produce one, but a full disk can) reads as a miss — the cell
        simply re-runs.
        """
        path = self.path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != CELL_SCHEMA:
            return None
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Atomically persist a cell payload (concurrency-safe)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path(key)
        tmp = path.with_name(f".{key}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)
        return path

    def keys(self) -> Iterable[str]:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))
