"""Declarative experiment-matrix specs.

A spec is a small YAML (or JSON) document that names a grid of benchmark
cells — suites crossed with parameter axes — plus the gates the resulting
report must clear.  The grammar:

.. code-block:: yaml

    schema: repro-matrix-spec/1
    name: ci-quick
    defaults:            # merged into every grid entry (entry value wins)
      quick: true
      repeats: 1
    grid:
      - suite: hdc
      - suite: replay    # list-valued params expand cartesian into cells
        dataset: [nsl_kdd, unsw_nb15]
        workers: 2
      - suite: cascade   # an explicit id names the cell for comparisons
        id: cascade-int8
        multiclass_bits: 8
    gates:
      tolerance: 0.2     # relative-speedup tolerance vs the baseline JSON
      alpha: 0.2         # significance level for comparisons
      floors:            # keyed by suite or exact cell id
        bitpack:
          bitpack_score_speedup: 2.0
      baselines:         # BENCH_*.json override per suite (null = no diff)
        loadgen: BENCH_loadgen.json
    comparisons:         # paired-significance gates between two cells
      - name: int8-head-holds-throughput
        cell: cascade-int8
        baseline: cascade
        metric: cascade_throughput.speedup
        min_ratio: 0.5

Every key except ``suite``, ``id``, ``repeats`` and ``tolerance`` is passed
verbatim to the suite's ``run_*_benchmarks`` entry point, so the spec can
express anything the CLI can.  Expansion is deterministic: cells appear in
grid order, axes expand sorted by parameter name, and the derived cell ids
(``suite/param=value,...``) are stable across runs — they are the join key
for floors, comparisons and cache entries.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

SPEC_SCHEMA = "repro-matrix-spec/1"

#: Grid-entry keys consumed by the matrix itself (never forwarded to suites).
RESERVED_KEYS = ("suite", "id", "repeats", "tolerance")


def _format_value(value: Any) -> str:
    """Stable scalar rendering for cell ids (bools lowercase, floats bare)."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)


def canonical_json(data: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)


@dataclass(frozen=True)
class MatrixCell:
    """One fully-resolved grid point: a suite plus concrete parameters."""

    cell_id: str
    suite: str
    params: Tuple[Tuple[str, Any], ...]
    repeats: int = 1
    tolerance: Optional[float] = None

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The suite-runner keyword arguments."""
        return dict(self.params)


def _split_metric(metric: str) -> Tuple[str, str]:
    parts = metric.rsplit(".", 1)
    return (parts[0], parts[1]) if len(parts) == 2 else (metric, "speedup")


@dataclass(frozen=True)
class CellComparison:
    """A paired-significance gate between two named cells.

    ``baseline_metric`` defaults to ``metric``; set it when the two sides
    record the comparable quantity under different ops (e.g. the cascade
    cell's ``cascade_int8_throughput.speedup`` against its own
    ``cascade_throughput.speedup`` — both measured against the same
    float32 reference path, so their ratio is the int8/float32 story).
    """

    name: str
    cell: str
    baseline: str
    metric: str  # "op.field", e.g. "cascade_throughput.speedup"
    baseline_metric: Optional[str] = None
    min_ratio: float = 1.0
    alpha: Optional[float] = None

    @property
    def op(self) -> str:
        return _split_metric(self.metric)[0]

    @property
    def metric_field(self) -> str:
        return _split_metric(self.metric)[1]

    @property
    def baseline_op(self) -> str:
        return _split_metric(self.baseline_metric or self.metric)[0]

    @property
    def baseline_field(self) -> str:
        return _split_metric(self.baseline_metric or self.metric)[1]


@dataclass
class MatrixSpec:
    """A parsed, expanded experiment matrix."""

    name: str
    cells: List[MatrixCell]
    tolerance: float = 0.2
    alpha: float = 0.2
    floors: Dict[str, Dict[str, float]] = field(default_factory=dict)
    baselines: Dict[str, Optional[str]] = field(default_factory=dict)
    comparisons: List[CellComparison] = field(default_factory=list)
    raw: Dict[str, Any] = field(default_factory=dict)
    source: Optional[Path] = None

    # ------------------------------------------------------------------- API
    def cell(self, cell_id: str) -> MatrixCell:
        """Look a cell up by id (raises on unknown ids)."""
        for cell in self.cells:
            if cell.cell_id == cell_id:
                return cell
        known = ", ".join(c.cell_id for c in self.cells)
        raise ConfigurationError(f"unknown cell id {cell_id!r} (cells: {known})")

    def spec_hash(self) -> str:
        """Content hash of the whole spec document.

        Any edit to the grid or the gates changes the hash; CI uses it (with
        the code fingerprint) as the ``actions/cache`` key so a stale cell
        cache can never answer for an edited spec.
        """
        return blake2b(canonical_json(self.raw).encode(), digest_size=16).hexdigest()

    def floors_for(self, cell: MatrixCell) -> Dict[str, float]:
        """Floors for a cell: exact cell-id entry first, then its suite's."""
        if cell.cell_id in self.floors:
            return dict(self.floors[cell.cell_id])
        return dict(self.floors.get(cell.suite, {}))

    def tolerance_for(self, cell: MatrixCell) -> float:
        return self.tolerance if cell.tolerance is None else cell.tolerance


def expand_grid_entry(
    entry: Mapping[str, Any],
    defaults: Mapping[str, Any],
    default_repeats: int,
) -> List[MatrixCell]:
    """Expand one grid entry into cells (cartesian over list-valued params)."""
    if "suite" not in entry:
        raise ConfigurationError(f"grid entry missing 'suite': {dict(entry)!r}")
    suite = str(entry["suite"])
    explicit_id = entry.get("id")
    merged: Dict[str, Any] = {
        key: value for key, value in defaults.items() if key not in RESERVED_KEYS
    }
    merged.update(
        {key: value for key, value in entry.items() if key not in RESERVED_KEYS}
    )
    repeats = int(entry.get("repeats", defaults.get("repeats", default_repeats)))
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1 (cell {suite!r})")
    tolerance = entry.get("tolerance", None)

    axes = sorted(
        (key, list(value))
        for key, value in merged.items()
        if isinstance(value, (list, tuple))
    )
    scalars = {key: value for key, value in merged.items() if not isinstance(value, (list, tuple))}
    for key, values in axes:
        if not values:
            raise ConfigurationError(f"axis {key!r} of {suite!r} expands to no values")

    cells: List[MatrixCell] = []
    for combo in itertools.product(*(values for _, values in axes)) if axes else [()]:
        params = dict(scalars)
        params.update({key: value for (key, _), value in zip(axes, combo)})
        if explicit_id is not None:
            # An explicit id names the whole entry; only the expanded axes
            # need to disambiguate the individual cells.
            suffix_params = {key: params[key] for key, _ in axes}
            base = str(explicit_id)
        else:
            suffix_params = params
            base = suite
        suffix = ",".join(
            f"{key}={_format_value(value)}" for key, value in sorted(suffix_params.items())
        )
        cell_id = f"{base}/{suffix}" if suffix else base
        cells.append(
            MatrixCell(
                cell_id=cell_id,
                suite=suite,
                params=tuple(sorted(params.items())),
                repeats=repeats,
                tolerance=None if tolerance is None else float(tolerance),
            )
        )
    return cells


def parse_spec(
    data: Mapping[str, Any],
    *,
    name: str = "matrix",
    source: Optional[Path] = None,
    known_suites: Optional[Sequence[str]] = None,
) -> MatrixSpec:
    """Build a :class:`MatrixSpec` from a parsed YAML/JSON document."""
    if not isinstance(data, Mapping):
        raise ConfigurationError("a matrix spec must be a mapping at top level")
    schema = data.get("schema")
    if schema != SPEC_SCHEMA:
        raise ConfigurationError(
            f"unsupported matrix spec schema {schema!r} (expected {SPEC_SCHEMA!r})"
        )
    grid = data.get("grid")
    if not isinstance(grid, list) or not grid:
        raise ConfigurationError("a matrix spec needs a non-empty 'grid' list")
    defaults = data.get("defaults") or {}
    if not isinstance(defaults, Mapping):
        raise ConfigurationError("'defaults' must be a mapping")
    default_repeats = int(defaults.get("repeats", 1))

    cells: List[MatrixCell] = []
    for entry in grid:
        if not isinstance(entry, Mapping):
            raise ConfigurationError(f"grid entries must be mappings, got {entry!r}")
        cells.extend(expand_grid_entry(entry, defaults, default_repeats))
    seen: Dict[str, int] = {}
    for cell in cells:
        seen[cell.cell_id] = seen.get(cell.cell_id, 0) + 1
    duplicates = [cell_id for cell_id, count in seen.items() if count > 1]
    if duplicates:
        raise ConfigurationError(
            f"duplicate cell ids after expansion: {sorted(duplicates)} "
            "(give the colliding entries distinct 'id's)"
        )
    if known_suites is not None:
        unknown = sorted({c.suite for c in cells} - set(known_suites))
        if unknown:
            raise ConfigurationError(
                f"unknown suites {unknown} (known: {sorted(known_suites)})"
            )

    gates = data.get("gates") or {}
    if not isinstance(gates, Mapping):
        raise ConfigurationError("'gates' must be a mapping")
    floors_raw = gates.get("floors") or {}
    floors = {
        str(scope): {str(op): float(value) for op, value in (entry or {}).items()}
        for scope, entry in floors_raw.items()
    }
    baselines = {
        str(suite): (None if path is None else str(path))
        for suite, path in (gates.get("baselines") or {}).items()
    }

    comparisons: List[CellComparison] = []
    for entry in data.get("comparisons") or []:
        if not isinstance(entry, Mapping):
            raise ConfigurationError(f"comparisons must be mappings, got {entry!r}")
        missing = [key for key in ("name", "cell", "baseline", "metric") if key not in entry]
        if missing:
            raise ConfigurationError(
                f"comparison {entry.get('name', '?')!r} missing keys {missing}"
            )
        comparisons.append(
            CellComparison(
                name=str(entry["name"]),
                cell=str(entry["cell"]),
                baseline=str(entry["baseline"]),
                metric=str(entry["metric"]),
                baseline_metric=(
                    None
                    if entry.get("baseline_metric") is None
                    else str(entry["baseline_metric"])
                ),
                min_ratio=float(entry.get("min_ratio", 1.0)),
                alpha=None if entry.get("alpha") is None else float(entry["alpha"]),
            )
        )
    cell_ids = {cell.cell_id for cell in cells}
    for comparison in comparisons:
        for endpoint in (comparison.cell, comparison.baseline):
            if endpoint not in cell_ids:
                raise ConfigurationError(
                    f"comparison {comparison.name!r} references unknown cell "
                    f"{endpoint!r} (cells: {sorted(cell_ids)})"
                )

    return MatrixSpec(
        name=str(data.get("name", name)),
        cells=cells,
        tolerance=float(gates.get("tolerance", 0.2)),
        alpha=float(gates.get("alpha", 0.2)),
        floors=floors,
        baselines=baselines,
        comparisons=comparisons,
        raw=dict(data),
        source=source,
    )


def load_spec(
    path: Union[str, Path],
    *,
    known_suites: Optional[Sequence[str]] = None,
) -> MatrixSpec:
    """Load a spec file (YAML when PyYAML is available, JSON always)."""
    path = Path(path)
    text = path.read_text()
    data: Any
    if path.suffix.lower() == ".json":
        data = json.loads(text)
    else:
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - container ships pyyaml
            raise ConfigurationError(
                f"cannot parse {path.name}: PyYAML is not installed "
                "(use a .json spec instead)"
            ) from exc
        data = yaml.safe_load(text)
    return parse_spec(data, name=path.stem, source=path, known_suites=known_suites)
