"""Matrix execution: cells → cached results → one report artifact.

``run_matrix`` walks a spec's cells in order, keys each against the
:mod:`result cache <repro.matrix.cache>`, executes misses through the
suite's ``run_*_benchmarks`` entry point in :mod:`repro.perf` (``repeats``
times, aggregating per-repeat samples), and emits a single provenance-
stamped report (schema ``repro-matrix/1``).

``diff_matrix`` is the gate: per cell it reuses
:func:`repro.perf.diff_bench_payloads` against the suite's checked-in
``BENCH_*.json`` (parity, relative-speedup tolerance, absolute floors —
exactly the checks the pre-matrix CI ran as seven separate jobs), then adds
the spec's paired-significance comparisons on the per-repeat samples.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.matrix.cache import CELL_SCHEMA, ResultCache, cell_key, code_fingerprint
from repro.matrix.spec import MatrixCell, MatrixSpec
from repro.matrix.stats import aggregate_samples, compare_cells, find_samples

REPORT_SCHEMA = "repro-matrix/1"

#: Modules every suite exercises (the training/benchmark substrate).
_COMMON_MODULES = (
    "repro.perf",
    "repro.hdc",
    "repro.core",
    "repro.models",
    "repro.datasets",
    "repro.utils",
)

#: Extra modules per suite, for the code fingerprint: a source edit outside
#: a suite's set leaves its cached cells valid.
_SUITE_MODULES: Dict[str, Tuple[str, ...]] = {
    "hdc": (),
    "streaming": ("repro.nids", "repro.serving"),
    "cluster": ("repro.nids", "repro.serving", "repro.cluster"),
    "replay": ("repro.nids", "repro.serving", "repro.cluster", "repro.replay"),
    "bitpack": (
        "repro.nids",
        "repro.serving",
        "repro.cluster",
        "repro.replay",
        "repro.persistence",
    ),
    "chaos": ("repro.nids", "repro.serving", "repro.cluster", "repro.replay"),
    "fabric": ("repro.nids", "repro.serving", "repro.fabric", "repro.persistence"),
    "cascade": ("repro.nids", "repro.serving", "repro.cascade", "repro.persistence"),
    "loadgen": ("repro.nids", "repro.serving", "repro.cluster", "repro.replay"),
    "baselines": ("repro.baselines",),
}

#: Record fields that are identity, not measurement: never averaged across
#: repeats and never sampled into the aggregate block.
_IDENTITY_FIELDS = frozenset({"D", "n"})


@dataclass(frozen=True)
class SuiteBinding:
    """One runnable suite: entry point, default baseline, touched modules."""

    name: str
    runner: Callable[..., List[Dict[str, Any]]]
    baseline_json: Optional[str]
    modules: Tuple[str, ...]


_suites_cache: Optional[Dict[str, SuiteBinding]] = None


def get_suites() -> Dict[str, SuiteBinding]:
    """The suite registry (lazy: importing the matrix stays cheap)."""
    global _suites_cache
    if _suites_cache is not None:
        return _suites_cache
    from repro import perf

    def binding(name: str, runner: Callable[..., List[Dict[str, Any]]], baseline: str):
        return SuiteBinding(
            name=name,
            runner=runner,
            baseline_json=baseline,
            modules=_COMMON_MODULES + _SUITE_MODULES.get(name, ()),
        )

    _suites_cache = {
        "hdc": binding("hdc", perf.run_benchmarks, perf.BENCH_JSON_NAME),
        "streaming": binding(
            "streaming", perf.run_streaming_benchmarks, perf.BENCH_STREAMING_JSON_NAME
        ),
        "cluster": binding(
            "cluster", perf.run_cluster_benchmarks, perf.BENCH_CLUSTER_JSON_NAME
        ),
        "replay": binding(
            "replay", perf.run_replay_benchmarks, perf.BENCH_REPLAY_JSON_NAME
        ),
        "bitpack": binding(
            "bitpack", perf.run_bitpack_benchmarks, perf.BENCH_BITPACK_JSON_NAME
        ),
        "chaos": binding("chaos", perf.run_chaos_benchmarks, perf.BENCH_CHAOS_JSON_NAME),
        "fabric": binding(
            "fabric", perf.run_fabric_benchmarks, perf.BENCH_FABRIC_JSON_NAME
        ),
        "cascade": binding(
            "cascade", perf.run_cascade_benchmarks, perf.BENCH_CASCADE_JSON_NAME
        ),
        "loadgen": binding(
            "loadgen", perf.run_loadgen_benchmarks, perf.BENCH_LOADGEN_JSON_NAME
        ),
        "baselines": binding(
            "baselines", perf.run_baseline_benchmarks, perf.BENCH_BASELINES_JSON_NAME
        ),
    }
    return _suites_cache


# ------------------------------------------------------------- cell execution
def _aggregate_runs(
    runs: Sequence[List[Dict[str, Any]]],
) -> Tuple[List[Dict[str, Any]], List[Dict[str, Any]]]:
    """Fold per-repeat record lists into representative records + samples.

    Records pair positionally within each op (suites emit a deterministic
    record structure, so the i-th ``replay_open_loop`` of repeat 2 measures
    the same operating point as the i-th of repeat 0).  Numeric measurement
    fields become their across-repeat mean in the representative record —
    except ``parity_ok``, which becomes the *minimum*: a parity bit that
    drops in any repeat is a failure, not noise to average away.
    """
    representative = [dict(record) for record in runs[0]]
    if len(runs) <= 1:
        aggregates = [
            {
                "op": record["op"],
                "index": _op_index(runs[0], i),
                "fields": {
                    key: aggregate_samples([value])
                    for key, value in record.items()
                    if _is_measurement(key, value)
                },
            }
            for i, record in enumerate(runs[0])
        ]
        return representative, aggregates

    aggregates = []
    for i, record in enumerate(representative):
        op = record["op"]
        index = _op_index(runs[0], i)
        peers: List[Dict[str, Any]] = []
        for run in runs:
            matches = [r for r in run if r.get("op") == op]
            if index < len(matches):
                peers.append(matches[index])
        fields: Dict[str, Any] = {}
        for key, value in record.items():
            if not _is_measurement(key, value):
                continue
            samples = [
                peer[key]
                for peer in peers
                if isinstance(peer.get(key), (int, float))
                and not isinstance(peer.get(key), bool)
            ]
            if len(samples) != len(peers):
                continue
            fields[key] = aggregate_samples(samples)
            if key == "parity_ok":
                record[key] = int(min(samples))
            else:
                record[key] = fields[key]["mean"]
        aggregates.append({"op": op, "index": index, "fields": fields})
    return representative, aggregates


def _op_index(records: Sequence[Dict[str, Any]], position: int) -> int:
    """How many earlier records share ``records[position]``'s op."""
    op = records[position]["op"]
    return sum(1 for r in records[:position] if r.get("op") == op)


def _is_measurement(key: str, value: Any) -> bool:
    return (
        key not in _IDENTITY_FIELDS
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    )


def run_cell(
    binding: SuiteBinding,
    cell: MatrixCell,
) -> Dict[str, Any]:
    """Execute one cell (``cell.repeats`` suite runs) into a payload."""
    runs: List[List[Dict[str, Any]]] = []
    start = time.perf_counter()
    for _ in range(cell.repeats):
        try:
            runs.append(binding.runner(**cell.params_dict))
        except TypeError as exc:
            raise ConfigurationError(
                f"cell {cell.cell_id!r}: suite {cell.suite!r} rejected its "
                f"parameters {cell.params_dict!r}: {exc}"
            ) from exc
    wall_seconds = time.perf_counter() - start
    records, aggregates = _aggregate_runs(runs)
    return {
        "schema": CELL_SCHEMA,
        "cell_id": cell.cell_id,
        "suite": cell.suite,
        "params": cell.params_dict,
        "repeats": cell.repeats,
        "wall_seconds": wall_seconds,
        "records": records,
        "aggregates": aggregates,
    }


# ------------------------------------------------------------------ the sweep
def run_matrix(
    spec: MatrixSpec,
    cache_dir: Union[str, Path] = ".matrix-cache",
    *,
    use_cache: bool = True,
    refresh: bool = False,
    repeats_override: Optional[int] = None,
    progress: Optional[Callable[[str], None]] = None,
    suites: Optional[Dict[str, SuiteBinding]] = None,
) -> Dict[str, Any]:
    """Run every cell of ``spec``, reusing cached results, into a report.

    Each completed cell is persisted to the cache *before* the next one
    starts, so an interrupted sweep resumes where it stopped: the re-run
    hits the cache for every finished cell and only executes the rest.
    ``refresh`` forces re-execution but still writes fresh cache entries;
    ``use_cache=False`` bypasses the cache entirely (read and write).
    """
    suites = suites if suites is not None else get_suites()
    from repro.perf import bench_provenance

    cache = ResultCache(cache_dir)
    emit = progress or (lambda message: None)
    fingerprints: Dict[str, str] = {}
    cells_out: List[Dict[str, Any]] = []
    n_cached = 0
    start = time.perf_counter()
    for cell in spec.cells:
        binding = suites.get(cell.suite)
        if binding is None:
            raise ConfigurationError(
                f"cell {cell.cell_id!r} names unknown suite {cell.suite!r} "
                f"(known: {sorted(suites)})"
            )
        if repeats_override is not None:
            cell = replace(cell, repeats=int(repeats_override))
        if cell.suite not in fingerprints:
            fingerprints[cell.suite] = code_fingerprint(binding.modules)
        key, components = cell_key(cell, fingerprints[cell.suite])
        if use_cache and not refresh:
            cached = cache.get(key)
            if cached is not None:
                n_cached += 1
                emit(f"[cache] {cell.cell_id}  key={key[:12]}")
                entry = dict(cached)
                entry["cell_id"] = cell.cell_id
                entry["cached"] = True
                cells_out.append(entry)
                continue
        emit(f"[run  ] {cell.cell_id}  repeats={cell.repeats}")
        payload = run_cell(binding, cell)
        payload["key"] = key
        payload["key_components"] = components
        if use_cache:
            cache.put(key, payload)
        entry = dict(payload)
        entry["cached"] = False
        cells_out.append(entry)
    wall_seconds = time.perf_counter() - start
    n_cells = len(cells_out)
    return {
        "schema": REPORT_SCHEMA,
        "spec_name": spec.name,
        "spec_hash": spec.spec_hash(),
        "spec_source": str(spec.source) if spec.source else None,
        "provenance": bench_provenance(),
        "cells": cells_out,
        "summary": {
            "n_cells": n_cells,
            "n_cached": n_cached,
            "n_executed": n_cells - n_cached,
            "cache_hit_fraction": n_cached / n_cells if n_cells else 0.0,
            "wall_seconds": wall_seconds,
        },
    }


def write_matrix_report(report: Dict[str, Any], path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


# ------------------------------------------------------------------ the gate
def diff_matrix(
    report: Dict[str, Any],
    spec: MatrixSpec,
    baseline_dir: Union[str, Path] = ".",
    *,
    suites: Optional[Dict[str, SuiteBinding]] = None,
) -> Tuple[bool, List[str]]:
    """Gate a matrix report: per-cell bench diffs + paired significance.

    Per cell the fresh records diff against the suite's checked-in
    ``BENCH_*.json`` via :func:`repro.perf.diff_bench_payloads` with the
    spec's tolerance and floors — the same semantics ``repro bench-diff``
    applies, which is what lets one ``matrix diff`` subsume the old
    per-suite CI gates.  Spec comparisons then run
    :func:`repro.matrix.stats.compare_cells` on the per-repeat samples;
    only a significance-*confirmed* regression fails the gate.
    """
    from repro.perf import diff_bench_payloads

    suites = suites if suites is not None else get_suites()
    baseline_dir = Path(baseline_dir)
    cells_by_id = {cell.get("cell_id"): cell for cell in report.get("cells", [])}
    lines: List[str] = []
    ok = True

    for cell in spec.cells:
        payload = cells_by_id.get(cell.cell_id)
        if payload is None:
            ok = False
            lines.append(f"[FAIL] cell {cell.cell_id}: missing from the report")
            continue
        binding = suites.get(cell.suite)
        baseline_name = spec.baselines.get(
            cell.suite, binding.baseline_json if binding else None
        )
        if baseline_name is None:
            lines.append(f"[skip] cell {cell.cell_id}: no baseline configured")
            continue
        baseline_path = baseline_dir / baseline_name
        if not baseline_path.is_file():
            ok = False
            lines.append(
                f"[FAIL] cell {cell.cell_id}: baseline {baseline_path} not found"
            )
            continue
        baseline_payload = json.loads(baseline_path.read_text())
        fresh_payload = {
            "records": payload.get("records", []),
            "provenance": report.get("provenance", {}),
        }
        cell_ok, cell_lines = diff_bench_payloads(
            fresh_payload,
            baseline_payload,
            tolerance=spec.tolerance_for(cell),
            floors=spec.floors_for(cell),
        )
        ok &= cell_ok
        lines.extend(f"{cell.cell_id} :: {line}" for line in cell_lines)

    for comparison in spec.comparisons:
        candidate = cells_by_id.get(comparison.cell)
        baseline = cells_by_id.get(comparison.baseline)
        if candidate is None or baseline is None:
            ok = False
            missing = comparison.cell if candidate is None else comparison.baseline
            lines.append(
                f"[FAIL] comparison {comparison.name}: cell {missing!r} missing "
                "from the report"
            )
            continue
        cand_samples = find_samples(
            candidate.get("aggregates", []), comparison.op, comparison.metric_field
        )
        base_samples = find_samples(
            baseline.get("aggregates", []),
            comparison.baseline_op,
            comparison.baseline_field,
        )
        if not cand_samples or not base_samples:
            ok = False
            side = comparison.cell if not cand_samples else comparison.baseline
            lines.append(
                f"[FAIL] comparison {comparison.name}: metric "
                f"{comparison.metric} not measured in cell {side!r}"
            )
            continue
        verdict = compare_cells(
            cand_samples,
            base_samples,
            alpha=spec.alpha if comparison.alpha is None else comparison.alpha,
            min_ratio=comparison.min_ratio,
        )
        failed = verdict["verdict"] == "regression"
        ok &= not failed
        p_worse = verdict["p_worse"]
        p_text = "n/a" if p_worse is None else f"{p_worse:.3f}"
        lines.append(
            f"[{'FAIL' if failed else 'ok'}] comparison {comparison.name}: "
            f"{comparison.metric} ratio {verdict['ratio']:.3f} "
            f"(floor {comparison.min_ratio}) p={p_text} "
            f"alpha={verdict['alpha']} -> {verdict['verdict']}"
        )
    if not lines:
        ok = False
        lines.append("[FAIL] nothing compared: the spec gated no cells")
    return ok, lines


# -------------------------------------------------------------- presentation
def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a ``repro-matrix/1`` report."""
    summary = report.get("summary", {})
    lines = [
        f"matrix {report.get('spec_name', '?')}  "
        f"spec={report.get('spec_hash', '?')[:12]}  "
        f"cells={summary.get('n_cells', 0)} "
        f"(cached {summary.get('n_cached', 0)}, "
        f"executed {summary.get('n_executed', 0)}, "
        f"hit rate {summary.get('cache_hit_fraction', 0.0):.0%})  "
        f"wall={summary.get('wall_seconds', 0.0):.1f}s"
    ]
    for cell in report.get("cells", []):
        flag = "cache" if cell.get("cached") else "run  "
        lines.append(
            f"  [{flag}] {cell.get('cell_id')}  repeats={cell.get('repeats')}  "
            f"wall={cell.get('wall_seconds', 0.0):.1f}s"
        )
        aggregates = {
            (entry.get("op"), entry.get("index")): entry.get("fields", {})
            for entry in cell.get("aggregates", [])
        }
        seen: Dict[str, int] = {}
        for record in cell.get("records", []):
            op = record.get("op")
            index = seen.get(op, 0)
            seen[op] = index + 1
            parts = []
            if "speedup" in record:
                stats = aggregates.get((op, index), {}).get("speedup")
                if stats and stats.get("n", 1) > 1:
                    lo, hi = stats["ci95"]
                    parts.append(
                        f"speedup {stats['mean']:.2f}x (95% CI {lo:.2f}-{hi:.2f})"
                    )
                else:
                    parts.append(f"speedup {float(record['speedup']):.2f}x")
            if "parity_ok" in record:
                parts.append(f"parity_ok={int(record['parity_ok'])}")
            for extra_field in ("recall", "wall_speedup", "escalation_fraction"):
                if extra_field in record:
                    parts.append(f"{extra_field}={float(record[extra_field]):.3f}")
            if parts:
                lines.append(f"      {op}: " + "  ".join(parts))
    return "\n".join(lines)
