"""Declarative experiment matrix: specs, cached cells, significance gates.

One YAML spec names a grid of benchmark cells (suite × parameters), each
cell is executed through the existing ``repro.perf`` suite runners behind a
content-addressed result cache, and the sweep emits one provenance-stamped
``repro-matrix/1`` report that ``matrix diff`` gates against the checked-in
``BENCH_*.json`` baselines (floors, parity, tolerance) plus paired
permutation significance tests between named cells.  See
``docs/experiments.md``.
"""

from repro.matrix.cache import (
    CELL_SCHEMA,
    ResultCache,
    cell_key,
    code_fingerprint,
    dataset_digest,
)
from repro.matrix.runner import (
    REPORT_SCHEMA,
    SuiteBinding,
    diff_matrix,
    get_suites,
    render_report,
    run_cell,
    run_matrix,
    write_matrix_report,
)
from repro.matrix.spec import (
    SPEC_SCHEMA,
    CellComparison,
    MatrixCell,
    MatrixSpec,
    load_spec,
    parse_spec,
)
from repro.matrix.stats import (
    compare_cells,
    mean_ci,
    paired_permutation_pvalue,
)

__all__ = [
    "CELL_SCHEMA",
    "REPORT_SCHEMA",
    "SPEC_SCHEMA",
    "CellComparison",
    "MatrixCell",
    "MatrixSpec",
    "ResultCache",
    "SuiteBinding",
    "cell_key",
    "code_fingerprint",
    "compare_cells",
    "dataset_digest",
    "diff_matrix",
    "get_suites",
    "load_spec",
    "mean_ci",
    "paired_permutation_pvalue",
    "parse_spec",
    "render_report",
    "run_cell",
    "run_matrix",
    "write_matrix_report",
]
