"""Repeat-run statistics: confidence intervals and paired significance.

Benchmark repeats are few (3–5) and nothing about wall-time noise is
Gaussian, so the significance machinery is deliberately assumption-free:

* **mean/CI** — Student-t intervals on the per-repeat samples (the t table
  is hardcoded for the tiny degrees of freedom the matrix actually uses);
* **paired sign-flip permutation test** — repeats of two cells measured on
  the same host in the same sweep pair naturally by repeat index; under the
  null (no difference) each paired difference is symmetric around zero, so
  the exact distribution of the mean difference over all ``2^n`` sign
  assignments gives a p-value with no distributional assumptions at all.

With ``n`` repeats the smallest achievable one-sided p-value is ``1/2^n``
(0.125 at n=3), so the default significance level must sit above that —
the matrix uses ``alpha = 0.2``: nightly runs at ``--repeats 3`` can
confirm a regression, single-shot PR runs never can (their verdicts stay
``inconclusive`` and only floors/parity/tolerance gate).
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 12: 2.179, 15: 2.131, 20: 2.086,
    25: 2.060, 30: 2.042,
}


def _t95(df: int) -> float:
    if df <= 0:
        return 0.0
    if df in _T95:
        return _T95[df]
    candidates = [d for d in _T95 if d <= df]
    return _T95[max(candidates)] if candidates else 1.96


def mean_ci(samples: Sequence[float]) -> Dict[str, Any]:
    """Mean, sample std and 95% t-interval of ``samples``."""
    values = [float(v) for v in samples]
    n = len(values)
    mean = sum(values) / n if n else 0.0
    if n <= 1:
        return {"mean": mean, "std": 0.0, "n": n, "ci95": [mean, mean]}
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    std = math.sqrt(variance)
    half = _t95(n - 1) * std / math.sqrt(n)
    return {"mean": mean, "std": std, "n": n, "ci95": [mean - half, mean + half]}


def paired_permutation_pvalue(
    a: Sequence[float],
    b: Sequence[float],
    alternative: str = "two-sided",
    max_exact: int = 4096,
    resamples: int = 2048,
) -> float:
    """Sign-flip permutation p-value for paired samples ``a`` vs ``b``.

    ``alternative`` is about the mean of ``a - b``: ``"greater"`` tests
    whether ``a`` exceeds ``b``, ``"less"`` the reverse, ``"two-sided"``
    any difference.  Exact enumeration of all ``2^n`` sign assignments when
    that fits in ``max_exact``; a seeded Monte-Carlo sample otherwise (the
    identity assignment is always included, so p is never 0).
    """
    if len(a) != len(b):
        raise ValueError(f"paired samples differ in length: {len(a)} vs {len(b)}")
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError(f"unknown alternative {alternative!r}")
    diffs = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    n = diffs.size
    if n == 0 or not np.any(diffs):
        return 1.0
    observed = float(diffs.mean())

    if 2**n <= max_exact:
        signs = np.array(list(itertools.product((1.0, -1.0), repeat=n)))
    else:
        rng = np.random.default_rng(0)
        signs = rng.choice((1.0, -1.0), size=(resamples - 1, n))
        signs = np.vstack([np.ones((1, n)), signs])
    permuted = (signs * diffs).mean(axis=1)
    if alternative == "greater":
        extreme = permuted >= observed
    elif alternative == "less":
        extreme = permuted <= observed
    else:
        extreme = np.abs(permuted) >= abs(observed)
    # >= up to float noise: the identity assignment must always count.
    return float(np.mean(extreme | np.isclose(permuted, observed)))


def compare_cells(
    candidate: Sequence[float],
    baseline: Sequence[float],
    *,
    alpha: float = 0.2,
    min_ratio: float = 1.0,
    higher_is_better: bool = True,
) -> Dict[str, Any]:
    """Verdict for a candidate metric against a baseline cell's metric.

    The verdict combines an *effect-size* condition (the mean ratio must
    fall below ``min_ratio``, resp. above ``1/min_ratio`` for lower-is-
    better metrics) with a *significance* condition (one-sided paired
    permutation ``p <= alpha`` in the degradation direction).  Both must
    hold for ``"regression"`` — a significant-but-tiny dip and a large-but-
    noisy dip both stay ``"ok"``.  With a single repeat per cell no
    permutation can reach significance and the verdict is
    ``"inconclusive"``.
    """
    cand = [float(v) for v in candidate]
    base = [float(v) for v in baseline]
    n = min(len(cand), len(base))
    cand, base = cand[:n], base[:n]
    mean_candidate = sum(cand) / n if n else 0.0
    mean_baseline = sum(base) / n if n else 0.0
    ratio = mean_candidate / mean_baseline if mean_baseline else float("inf")

    worse = "less" if higher_is_better else "greater"
    better = "greater" if higher_is_better else "less"
    result: Dict[str, Any] = {
        "n": n,
        "mean_candidate": mean_candidate,
        "mean_baseline": mean_baseline,
        "ratio": ratio,
        "min_ratio": float(min_ratio),
        "alpha": float(alpha),
        "p_worse": None,
        "p_better": None,
        "verdict": "inconclusive",
    }
    if n < 2:
        # One repeat cannot resolve significance; the ratio is still
        # reported so floors/tolerance gates elsewhere can use it.
        return result
    p_worse = paired_permutation_pvalue(cand, base, alternative=worse)
    p_better = paired_permutation_pvalue(cand, base, alternative=better)
    result["p_worse"] = p_worse
    result["p_better"] = p_better
    degraded = ratio < min_ratio if higher_is_better else ratio > 1.0 / min_ratio
    improved = ratio > 1.0 if higher_is_better else ratio < 1.0
    if degraded and p_worse <= alpha:
        result["verdict"] = "regression"
    elif improved and p_better <= alpha:
        result["verdict"] = "improvement"
    else:
        result["verdict"] = "ok"
    return result


def aggregate_samples(per_run_values: Sequence[float]) -> Dict[str, Any]:
    """The stored aggregate for one record field across repeats."""
    stats = mean_ci(per_run_values)
    stats["samples"] = [float(v) for v in per_run_values]
    return stats


def find_samples(
    aggregates: Sequence[Dict[str, Any]],
    op: str,
    field: str,
    index: int = 0,
) -> Optional[List[float]]:
    """Per-repeat samples of ``op.field`` from a cell's aggregate block."""
    matches = [entry for entry in aggregates if entry.get("op") == op]
    if index >= len(matches):
        return None
    entry = matches[index].get("fields", {}).get(field)
    if not entry:
        return None
    return [float(v) for v in entry.get("samples", [])]
