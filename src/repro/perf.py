"""Performance benchmark harness for the HDC compute backend.

This module is the perf-regression baseline for the repository: it times the
hot-path primitives (encoding, scatter aggregation, similarity scoring, one
adaptive epoch) across dtypes, plus the end-to-end ``CyberHD.fit`` at the
paper-scale setting (``D = 500``, NSL-KDD-sized synthetic data), and emits a
machine-readable record list that gets written to ``BENCH_hdc_primitives.json``.

Two ways to run it:

* ``python -m repro bench`` -- the CLI entry point; prints a table and writes
  the JSON baseline.
* ``benchmarks/bench_hdc_primitives.py`` -- the pytest-benchmark suite, which
  reuses the same record format.

To keep the speedup claims honest the module carries *seed-equivalent*
reference implementations of the original float64 pipeline (``np.add.at``
scatters, per-batch norm recomputation with normalized operand copies, and a
full training-set re-encode after every regeneration step).  The
``fit_cyberhd`` records therefore measure the current pipeline against the
exact algorithm the repository started from, on the same machine and the
same workload.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro._version import __version__
from repro.core.config import CyberHDConfig
from repro.core.cyberhd import CyberHD
from repro.core.regeneration import (
    apply_regeneration,
    select_drop_dimensions,
    warm_start_regenerated,
)
from repro.hdc.backend import resolve_dtype, row_norms, segment_sum
from repro.hdc.encoders import RBFEncoder, LevelIDEncoder, make_encoder
from repro.hdc.similarity import cosine_similarity_matrix
from repro.core.trainer import adaptive_epoch, adaptive_one_pass_fit
from repro.utils.rng import ensure_rng

BENCH_JSON_NAME = "BENCH_hdc_primitives.json"


# ------------------------------------------------------------------ recording
def make_record(
    op: str,
    wall_time_s: float,
    dtype: str = "float64",
    D: int = 0,
    n: int = 0,
    **extra: Any,
) -> Dict[str, Any]:
    """One benchmark measurement in the shared schema."""
    record = {
        "op": op,
        "dtype": dtype,
        "D": int(D),
        "n": int(n),
        "wall_time_s": float(wall_time_s),
    }
    record.update(extra)
    return record


def _git_revision() -> str:
    """The current git commit (or "unknown" outside a checkout)."""
    try:
        result = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
        if result.returncode == 0:
            return result.stdout.strip()
    except Exception:
        pass
    return "unknown"


def bench_provenance() -> Dict[str, Any]:
    """Environment metadata stamped into every ``BENCH_*.json``.

    Benchmark trajectories across PRs are only comparable when the record
    says what produced them: the exact source revision, interpreter and
    NumPy versions, the backend dtype policy, and how many CPUs the host
    actually exposed (scaling numbers are meaningless without it).
    """
    from repro.hdc.backend import DEFAULT_DTYPE

    try:
        affinity_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux
        affinity_cpus = os.cpu_count() or 1
    return {
        "git_revision": _git_revision(),
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "numpy_version": np.__version__,
        "dtype_policy": DEFAULT_DTYPE,
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity_count": affinity_cpus,
        "platform": platform.platform(),
        "argv": list(sys.argv),
    }


def write_bench_json(
    records: Sequence[Dict[str, Any]], path: Union[str, Path]
) -> Path:
    """Write benchmark records (plus environment provenance) as JSON."""
    path = Path(path)
    payload = {
        "schema": "repro-bench/2",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "provenance": bench_provenance(),
        "records": list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls (minimum is the standard
    noise-robust estimator for microbenchmarks)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------- seed-equivalent reference path
def _legacy_cosine_matrix(queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """The original kernel: normalized float64 copies of both operands."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    c = np.atleast_2d(np.asarray(classes, dtype=np.float64))
    qn = np.linalg.norm(q, axis=1, keepdims=True)
    cn = np.linalg.norm(c, axis=1, keepdims=True)
    qn = np.where(qn < 1e-12, 1.0, qn)
    cn = np.where(cn < 1e-12, 1.0, cn)
    return (q / qn) @ (c / cn).T


def _legacy_adaptive_one_pass_fit(H, y, n_classes, batch_size=256, rng=None):
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    classes = np.zeros((n_classes, H.shape[1]))
    gen = ensure_rng(rng)
    order = gen.permutation(H.shape[0])
    for start in range(0, H.shape[0], batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = _legacy_cosine_matrix(Hb, classes)
        pred = np.argmax(sims, axis=1)
        sim_true = sims[np.arange(idx.size), yb]
        np.add.at(classes, yb, (1.0 - sim_true)[:, None] * Hb)
        wrong = pred != yb
        if np.any(wrong):
            sim_pred = sims[wrong, pred[wrong]]
            np.add.at(classes, pred[wrong], -(1.0 - sim_pred)[:, None] * Hb[wrong])
    return classes


def _legacy_adaptive_epoch(classes, H, y, learning_rate, batch_size=256, rng=None):
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    n = H.shape[0]
    gen = ensure_rng(rng)
    order = gen.permutation(n)
    errors = 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = _legacy_cosine_matrix(Hb, classes)
        pred = np.argmax(sims, axis=1)
        wrong = pred != yb
        n_wrong = int(np.count_nonzero(wrong))
        errors += n_wrong
        if n_wrong == 0:
            continue
        Hw = Hb[wrong]
        yw = yb[wrong]
        pw = pred[wrong]
        sim_true = sims[wrong, yw]
        sim_pred = sims[wrong, pw]
        np.add.at(classes, yw, (learning_rate * (1.0 - sim_true))[:, None] * Hw)
        np.add.at(classes, pw, -(learning_rate * (1.0 - sim_pred))[:, None] * Hw)
    return errors, 1.0 - errors / n


def _legacy_level_id_encode(encoder: LevelIDEncoder, X: np.ndarray) -> np.ndarray:
    """The original per-feature Python loop over bound (ID * LEVEL) pairs."""
    level_idx = encoder._quantize_levels(np.asarray(X, dtype=np.float64))
    H = np.zeros((X.shape[0], encoder.dim))
    for f in range(encoder.in_features):
        H += np.asarray(encoder.id_vectors[f], dtype=np.float64) * np.asarray(
            encoder.level_vectors, dtype=np.float64
        )[level_idx[:, f]]
    return H


def legacy_fit_cyberhd(X: np.ndarray, y: np.ndarray, config: CyberHDConfig) -> np.ndarray:
    """Seed-equivalent ``CyberHD.fit``: float64, ``np.add.at`` scatters, and a
    **full** training-set re-encode after every regeneration step.

    Returns the trained class matrix (used to sanity-check the run did real
    work; callers time the call itself).
    """
    cfg = config.validate()
    rng = ensure_rng(cfg.seed)
    n_classes = int(np.max(y)) + 1
    encoder = make_encoder(
        cfg.encoder,
        in_features=X.shape[1],
        dim=cfg.dim,
        rng=rng,
        dtype=np.float64,
        **cfg.encoder_kwargs,
    )
    H = encoder.encode(X)
    classes = _legacy_adaptive_one_pass_fit(H, y, n_classes, cfg.batch_size, rng)
    for epoch in range(1, cfg.epochs + 1):
        _legacy_adaptive_epoch(classes, H, y, cfg.learning_rate, cfg.batch_size, rng)
        should_regen = (
            cfg.regeneration_rate > 0.0
            and epoch % cfg.regeneration_interval == 0
            and epoch < cfg.epochs
        )
        if should_regen:
            dims, _ = select_drop_dimensions(classes, cfg.regeneration_rate)
            if dims.size:
                apply_regeneration(classes, encoder, dims)
                H = encoder.encode(X)  # the full re-encode this PR eliminated
                warm_start_regenerated(classes, H, y, dims)
    return classes


# ----------------------------------------------------------------- workloads
def _primitive_workload(n: int, features: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n, features))
    y = rng.integers(0, 5, size=n)
    return X, y


def _fit_workload(n: int, seed: int = 0):
    """NSL-KDD-sized synthetic training split (41 flow features)."""
    from repro.datasets.loaders import load_dataset

    ds = load_dataset("nsl_kdd", n_train=n, n_test=32, seed=seed)
    return ds.X_train, ds.y_train


# ---------------------------------------------------------------- benchmarks
def bench_primitives(
    dim: int = 500,
    n: int = 2000,
    features: int = 64,
    repeats: int = 3,
    dtypes: Sequence[str] = ("float32", "float64"),
) -> List[Dict[str, Any]]:
    """Time the HDC primitives across dtypes; returns benchmark records."""
    X, y = _primitive_workload(n, features)
    records: List[Dict[str, Any]] = []

    for dtype_name in dtypes:
        dtype = resolve_dtype(dtype_name)
        rbf = RBFEncoder(in_features=features, dim=dim, rng=0, dtype=dtype)
        records.append(
            make_record(
                "encode_rbf",
                _best_of(lambda: rbf.encode(X), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        level = LevelIDEncoder(in_features=features, dim=dim, rng=0, dtype=dtype)
        records.append(
            make_record(
                "encode_level_id",
                _best_of(lambda: level.encode(X), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        if dtype == np.float64:
            records.append(
                make_record(
                    "encode_level_id_loop",
                    _best_of(lambda: _legacy_level_id_encode(level, X), repeats),
                    "float64",
                    dim,
                    n,
                    note="seed-equivalent per-feature Python loop",
                )
            )

        H = rbf.encode(X)
        classes = adaptive_one_pass_fit(H, y, n_classes=5, rng=0)
        class_norms = row_norms(classes)
        query_norms = row_norms(H)
        records.append(
            make_record(
                "cosine_scores",
                _best_of(lambda: cosine_similarity_matrix(H, classes), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        records.append(
            make_record(
                "cosine_scores_cached_norms",
                _best_of(
                    lambda: cosine_similarity_matrix(
                        H, classes, query_norms=query_norms, class_norms=class_norms
                    ),
                    repeats,
                ),
                dtype_name,
                dim,
                n,
            )
        )

        rows = H[:512]
        ids = y[:512].astype(np.int64)
        for method in ("add_at", "bincount", "matmul"):
            records.append(
                make_record(
                    f"scatter_{method}",
                    _best_of(lambda: segment_sum(rows, ids, 5, method=method), repeats),
                    dtype_name,
                    dim,
                    512,
                )
            )

        records.append(
            make_record(
                "adaptive_epoch",
                _best_of(
                    lambda: adaptive_epoch(
                        classes.copy(),
                        H,
                        y,
                        learning_rate=1.0,
                        rng=0,
                        query_norms=query_norms,
                        class_norms=class_norms.copy(),
                    ),
                    repeats,
                ),
                dtype_name,
                dim,
                n,
            )
        )
        if dtype == np.float64:
            records.append(
                make_record(
                    "adaptive_epoch_legacy",
                    _best_of(
                        lambda: _legacy_adaptive_epoch(
                            classes.copy(), H, y, learning_rate=1.0, rng=0
                        ),
                        repeats,
                    ),
                    "float64",
                    dim,
                    n,
                    note="seed-equivalent np.add.at + per-batch norms",
                )
            )
    return records


def bench_fit(
    dim: int = 500,
    n: int = 4000,
    epochs: int = 8,
    repeats: int = 2,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """End-to-end ``CyberHD.fit`` at paper scale: current backend vs seed.

    The two measurements run the same algorithm on the same synthetic
    NSL-KDD-sized workload; the ``fit_speedup`` record carries the ratio the
    acceptance gate reads.
    """
    X, y = _fit_workload(n, seed)
    base = dict(
        dim=dim,
        epochs=epochs,
        regeneration_rate=0.10,
        regeneration_interval=1,
        seed=seed,
    )

    def run_current():
        CyberHD(CyberHDConfig(dtype="float32", **base)).fit(X, y)

    def run_legacy():
        legacy_fit_cyberhd(
            np.asarray(X, dtype=np.float64),
            np.asarray(y, dtype=np.int64),
            CyberHDConfig(dtype="float64", **base),
        )

    current = _best_of(run_current, repeats)
    legacy = _best_of(run_legacy, repeats)
    records = [
        make_record("fit_cyberhd", current, "float32", dim, n, epochs=epochs),
        make_record(
            "fit_cyberhd_seed_equivalent",
            legacy,
            "float64",
            dim,
            n,
            epochs=epochs,
            note="float64 + np.add.at + full re-encode per regeneration",
        ),
        make_record(
            "fit_speedup",
            current,
            "float32",
            dim,
            n,
            speedup=legacy / current if current > 0 else float("inf"),
            baseline_wall_time_s=legacy,
        ),
    ]
    return records


def run_benchmarks(
    dim: int = 500,
    n_primitives: int = 2000,
    n_fit: int = 4000,
    epochs: int = 8,
    repeats: int = 3,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """Run the full harness (primitives + end-to-end fit)."""
    if quick:
        n_primitives, n_fit, epochs, repeats = 500, 800, 3, 1
    records = bench_primitives(dim=dim, n=n_primitives, repeats=repeats)
    records += bench_fit(dim=dim, n=n_fit, epochs=epochs, repeats=max(1, repeats - 1))
    return records


def format_table(records: Sequence[Dict[str, Any]]) -> str:
    """Plain-text table of benchmark records."""
    lines = [f"{'op':<32} {'dtype':<8} {'D':>6} {'n':>7} {'wall_time_s':>12}  extra"]
    lines.append("-" * len(lines[0]))
    for r in records:
        extra = ", ".join(
            f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in r.items()
            if k not in ("op", "dtype", "D", "n", "wall_time_s")
        )
        lines.append(
            f"{r['op']:<32} {r['dtype']:<8} {r['D']:>6} {r['n']:>7} "
            f"{r['wall_time_s']:>12.6f}  {extra}"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_JSON_NAME",
    "BENCH_STREAMING_JSON_NAME",
    "BENCH_CLUSTER_JSON_NAME",
    "BENCH_REPLAY_JSON_NAME",
    "BENCH_BITPACK_JSON_NAME",
    "BENCH_CHAOS_JSON_NAME",
    "BENCH_FABRIC_JSON_NAME",
    "BENCH_CASCADE_JSON_NAME",
    "make_record",
    "write_bench_json",
    "bench_provenance",
    "bench_primitives",
    "bench_fit",
    "run_benchmarks",
    "bench_streaming",
    "run_streaming_benchmarks",
    "bench_cluster",
    "run_cluster_benchmarks",
    "bench_replay",
    "run_replay_benchmarks",
    "bench_bitpack",
    "run_bitpack_benchmarks",
    "bench_chaos",
    "run_chaos_benchmarks",
    "bench_fabric",
    "run_fabric_benchmarks",
    "bench_cascade",
    "run_cascade_benchmarks",
    "diff_bench_payloads",
    "legacy_detect_stream",
    "format_table",
    "legacy_fit_cyberhd",
]


# ----------------------------------------------- streaming serving benchmark
BENCH_STREAMING_JSON_NAME = "BENCH_streaming.json"


class _LegacyFlowRecord:
    """Seed-equivalent flow record: per-packet Python list buffers."""

    __slots__ = (
        "key", "initiator_ip", "initiator_port", "start_time", "end_time",
        "label", "fwd_packets", "bwd_packets", "fwd_bytes", "bwd_bytes",
        "fwd_lengths", "bwd_lengths", "timestamps", "syn_count", "fin_count",
        "rst_count", "psh_count", "ack_count", "urg_count", "distinct_dst_ports",
        "protocol",
    )

    def __init__(self, packet):
        from repro.nids.flow import FlowKey

        self.key = FlowKey.from_packet(packet)
        self.protocol = packet.protocol
        self.initiator_ip = packet.src_ip
        self.initiator_port = packet.src_port
        self.start_time = packet.timestamp
        self.end_time = packet.timestamp
        self.label = "benign"
        self.fwd_packets = 0
        self.bwd_packets = 0
        self.fwd_bytes = 0
        self.bwd_bytes = 0
        self.fwd_lengths = []
        self.bwd_lengths = []
        self.timestamps = []
        self.syn_count = 0
        self.fin_count = 0
        self.rst_count = 0
        self.psh_count = 0
        self.ack_count = 0
        self.urg_count = 0
        self.distinct_dst_ports = set()
        self.add_packet(packet)

    def add_packet(self, packet):
        from repro.nids.packets import TCP_FLAGS

        is_forward = (
            packet.src_ip == self.initiator_ip and packet.src_port == self.initiator_port
        )
        self.end_time = max(self.end_time, packet.timestamp)
        self.timestamps.append(packet.timestamp)
        if is_forward:
            self.fwd_packets += 1
            self.fwd_bytes += packet.length
            self.fwd_lengths.append(packet.length)
            self.distinct_dst_ports.add(packet.dst_port)
        else:
            self.bwd_packets += 1
            self.bwd_bytes += packet.length
            self.bwd_lengths.append(packet.length)
        if packet.protocol == "tcp":
            self.syn_count += bool(packet.tcp_flags & TCP_FLAGS["SYN"])
            self.fin_count += bool(packet.tcp_flags & TCP_FLAGS["FIN"])
            self.rst_count += bool(packet.tcp_flags & TCP_FLAGS["RST"])
            self.psh_count += bool(packet.tcp_flags & TCP_FLAGS["PSH"])
            self.ack_count += bool(packet.tcp_flags & TCP_FLAGS["ACK"])
            self.urg_count += bool(packet.tcp_flags & TCP_FLAGS["URG"])
        if packet.label != "benign" and self.label == "benign":
            self.label = packet.label


class _LegacyFlowTable:
    """Seed-equivalent flow table: per-packet dict churn + O(active) expiry scan."""

    def __init__(self, idle_timeout=5.0, max_flow_duration=120.0):
        self.idle_timeout = idle_timeout
        self.max_flow_duration = max_flow_duration
        self._active = {}

    def add_packet(self, packet):
        from repro.nids.flow import FlowKey

        expired = []
        stale = [
            key
            for key, record in self._active.items()
            if (packet.timestamp - record.end_time) > self.idle_timeout
            or (packet.timestamp - record.start_time) > self.max_flow_duration
        ]
        for key in stale:
            expired.append(self._active.pop(key))
        key = FlowKey.from_packet(packet)
        record = self._active.get(key)
        if record is None:
            self._active[key] = _LegacyFlowRecord(packet)
        else:
            record.add_packet(packet)
        return expired

    def flush(self):
        flows = list(self._active.values())
        self._active.clear()
        return flows


def _legacy_extract(flow) -> np.ndarray:
    """Seed-equivalent per-flow feature extraction (list buffers, float64)."""
    duration = max(0.0, flow.end_time - flow.start_time)
    safe_duration = max(duration, 1e-6)
    fwd_lengths = np.asarray(flow.fwd_lengths, dtype=np.float64)
    bwd_lengths = np.asarray(flow.bwd_lengths, dtype=np.float64)
    timestamps = np.sort(np.asarray(flow.timestamps, dtype=np.float64))
    iats = np.diff(timestamps) if timestamps.size > 1 else np.zeros(1)

    def stats(values):
        if values.size == 0:
            return 0.0, 0.0, 0.0, 0.0
        return float(values.mean()), float(values.std()), float(values.max()), float(values.min())

    fwd_mean, fwd_std, fwd_max, fwd_min = stats(fwd_lengths)
    bwd_mean, bwd_std, _, _ = stats(bwd_lengths)
    iat_mean, iat_std, iat_max, iat_min = stats(iats)
    total_packets = flow.fwd_packets + flow.bwd_packets
    total_bytes = flow.fwd_bytes + flow.bwd_bytes
    return np.asarray(
        [
            duration, float(total_packets), float(total_bytes),
            float(flow.fwd_packets), float(flow.bwd_packets),
            float(flow.fwd_bytes), float(flow.bwd_bytes),
            total_bytes / safe_duration, total_packets / safe_duration,
            flow.bwd_packets / max(flow.fwd_packets, 1),
            fwd_mean, fwd_std, fwd_max, fwd_min, bwd_mean, bwd_std,
            iat_mean, iat_std, iat_max, iat_min,
            float(flow.syn_count), float(flow.fin_count), float(flow.rst_count),
            float(flow.psh_count), float(flow.ack_count), float(flow.urg_count),
            flow.syn_count / max(total_packets, 1),
            float(len(flow.distinct_dst_ports)),
            1.0 if flow.protocol == "tcp" else 0.0,
            1.0 if flow.protocol == "udp" else 0.0,
        ],
        dtype=np.float64,
    )


def legacy_detect_stream(packets, pipeline, window_size: int):
    """Seed-equivalent packets->alerts serving loop.

    Per-packet flow-table updates (with the O(active) expiry scan on every
    packet), a per-flow Python loop of NumPy feature extraction, and one
    ``predict_scores`` call per window -- the exact shape of the seed
    ``StreamingDetector`` + ``DetectionPipeline`` path, run against the same
    trained classifier and scaler as the current subsystem.

    Returns ``(n_flows, window_latencies)`` where ``window_latencies`` is a
    list of ``(seconds, n_flows)`` detection-time pairs.
    """
    table = _LegacyFlowTable()
    buffer = []
    latencies = []
    total_flows = 0

    def detect(flows):
        nonlocal total_flows
        if not flows:
            return
        start = time.perf_counter()
        X = np.stack([_legacy_extract(f) for f in flows])
        if pipeline._scaler is not None:
            X = pipeline._scaler.transform(X)
        scores = pipeline.classifier.predict_scores(X)
        np.argmax(scores, axis=1)
        latencies.append((time.perf_counter() - start, len(flows)))
        total_flows += len(flows)

    for packet in packets:
        buffer.append(packet)
        if len(buffer) >= window_size:
            expired = []
            for p in buffer:
                expired.extend(table.add_packet(p))
            buffer = []
            detect(expired)
    expired = []
    for p in buffer:
        expired.extend(table.add_packet(p))
    expired.extend(table.flush())
    detect(expired)
    return total_flows, latencies


def _flow_latency_percentiles(latencies) -> Dict[str, float]:
    """p50/p95 per-flow detection latency from (seconds, n_flows) pairs."""
    per_flow = np.concatenate(
        [np.full(n, seconds) for seconds, n in latencies if n > 0]
    ) if any(n > 0 for _, n in latencies) else np.zeros(1)
    return {
        "p50_flow_latency_ms": float(np.percentile(per_flow, 50) * 1e3),
        "p95_flow_latency_ms": float(np.percentile(per_flow, 95) * 1e3),
    }


def bench_streaming(
    n_packets: int = 50_000,
    window: int = 1000,
    dim: int = 256,
    epochs: int = 5,
    train_flows: int = 300,
    repeats: int = 1,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """End-to-end packets->alerts throughput: serving subsystem vs seed path.

    Both measurements classify the same synthetic packet stream with the
    same trained classifier and scaler; only the serving machinery differs
    (columnar flow engine + vectorized extraction + engine micro-batching
    vs per-packet scalar loops).  The ``streaming_speedup`` record carries
    the ratio the acceptance gate reads.
    """
    from repro.core.cyberhd import CyberHD
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline
    from repro.nids.streaming import StreamingDetector

    generator = TrafficGenerator(seed=seed)
    train_packets = generator.generate(train_flows)
    pipeline = DetectionPipeline(
        classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
    ).fit_packets(train_packets)

    stream_gen = TrafficGenerator(seed=seed + 1)
    packets = stream_gen.generate(max(8, int(n_packets / 28)))
    top_up = 0
    while len(packets) < n_packets:
        # Fresh seed per top-up so the tail is new traffic, not repeats of
        # the same flow set; size each chunk to the remaining shortfall.
        top_up += 1
        shortfall_flows = max(32, (n_packets - len(packets)) // 25)
        packets += TrafficGenerator(seed=seed + 2 + top_up).generate(
            shortfall_flows, start_time=packets[-1].timestamp + 60.0
        )
    packets = packets[:n_packets]

    def run_current():
        detector = StreamingDetector(pipeline, window_size=window)
        detector.push_many(packets)
        detector.flush()
        return detector

    def run_legacy():
        return legacy_detect_stream(packets, pipeline, window)

    # Current serving subsystem.
    best_current = float("inf")
    detector = None
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        candidate = run_current()
        elapsed = time.perf_counter() - start
        if elapsed < best_current:
            best_current, detector = elapsed, candidate
    current_latencies = [(r.latency_seconds, r.n_flows) for r in detector.results]

    # Seed-equivalent scalar path.
    best_legacy = float("inf")
    legacy_latencies = []
    legacy_flows = 0
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        legacy_flows, legacy_latencies = run_legacy()
        best_legacy = min(best_legacy, time.perf_counter() - start)

    # The speedup claim only means something if both paths served the same
    # workload: the columnar engine must emit exactly the seed's flow set.
    if detector.total_flows != legacy_flows:
        raise RuntimeError(
            f"flow-count mismatch between serving paths: current="
            f"{detector.total_flows}, seed-equivalent={legacy_flows}"
        )

    n = len(packets)
    records = [
        make_record(
            "streaming_serve",
            best_current,
            "float32",
            dim,
            n,
            packets_per_second=n / best_current,
            flows=detector.total_flows,
            window=window,
            **_flow_latency_percentiles(current_latencies),
        ),
        make_record(
            "streaming_seed_equivalent",
            best_legacy,
            "float64",
            dim,
            n,
            packets_per_second=n / best_legacy,
            flows=legacy_flows,
            window=window,
            note="per-packet flow table + per-flow extract loop",
            **_flow_latency_percentiles(legacy_latencies),
        ),
        make_record(
            "streaming_speedup",
            best_current,
            "float32",
            dim,
            n,
            speedup=best_legacy / best_current if best_current > 0 else float("inf"),
            baseline_wall_time_s=best_legacy,
        ),
    ]
    return records


def run_streaming_benchmarks(
    n_packets: int = 50_000,
    window: int = 1000,
    dim: int = 256,
    repeats: int = 1,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite streaming`` entry point.

    ``quick`` shrinks the workload for a CI smoke run, but only the
    parameters the caller left at their defaults -- explicit ``--packets``
    / ``--window`` / ``--dim`` values always win, and repeats drop to 1.
    """
    if quick:
        if n_packets == 50_000:
            n_packets = 8_000
        if window == 1000:
            window = 500
        if dim == 256:
            dim = 128
        repeats = 1
    return bench_streaming(
        n_packets=n_packets, window=window, dim=dim, repeats=repeats
    )


# ------------------------------------------------------- cluster scaling bench
BENCH_CLUSTER_JSON_NAME = "BENCH_cluster.json"


def bench_cluster(
    scenario: str = "mixed_benign",
    workers: int = 4,
    flows_scale: float = 2.0,
    batch_size: int = 512,
    dim: int = 256,
    epochs: int = 5,
    train_flows: int = 300,
    sync_interval: int = 8,
    online: bool = True,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Sharded cluster serving vs the single-process engine, same scenario.

    Both paths serve the identical scenario packet stream with the same
    trained pipeline.  The single-process baseline is the PR 2 path
    (``StreamingDetector`` over the ``InferenceEngine``); the cluster path is
    ``ClusterCoordinator`` with ``workers`` replica processes.

    Two throughput notions are reported, deliberately:

    * ``wall`` -- total flows over wall-clock seconds.  This is what an
      operator observes on *this* host, and on a host with fewer cores than
      workers it is bounded by the hardware, not the architecture.
    * ``aggregate`` -- the sum of per-replica sustained rates (each worker's
      flows over its own busy seconds).  This is the cluster's capacity when
      every worker has a core to itself; it is the number the
      ``cluster_speedup`` record carries, alongside ``wall_speedup`` and the
      host ``cpu_count`` in the file's provenance so the two readings are
      never conflated.
    """
    from repro.cluster import ClusterConfig, ClusterCoordinator, get_scenario
    from repro.core.cyberhd import CyberHD
    from repro.nids.pipeline import DetectionPipeline
    from repro.nids.streaming import StreamingDetector
    from repro.serving import OnlineLearner

    load = get_scenario(scenario)
    train_packets = load.training_packets(n_flows=train_flows, seed=seed)
    pipeline = DetectionPipeline(
        classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
    ).fit_packets(train_packets)
    packets = load.build_packets(
        seed=seed + 1, flows_scale=flows_scale, start_time=train_packets[-1].timestamp + 60.0
    )
    n_packets = len(packets)

    # ---- single-process PR 2 baseline ---------------------------------
    learner = None
    if online:
        # partial_fit only (no replay, no regeneration): the same learning
        # rule the cluster workers run, so the comparison is architecture vs
        # architecture rather than learning-schedule vs learning-schedule.
        learner = OnlineLearner(
            pipeline.classifier, passes=1, replay_rows=0, regenerate=False, monitor=None
        )
    single_model = pipeline.classifier.class_vector_snapshot()
    detector = StreamingDetector(pipeline, window_size=batch_size, online=learner)
    start = time.perf_counter()
    cpu_start = time.process_time()
    detector.push_many(packets)
    detector.flush()
    single_wall = time.perf_counter() - start
    single_cpu = time.process_time() - cpu_start
    single_flows = detector.total_flows
    single_wall_rate = single_flows / single_wall if single_wall > 0 else 0.0
    single_cpu_rate = single_flows / single_cpu if single_cpu > 0 else 0.0
    # Restore the pre-serve model so the cluster starts from the same state.
    pipeline.classifier.set_class_vectors(single_model)

    # ---- sharded cluster ----------------------------------------------
    coordinator = ClusterCoordinator(
        pipeline,
        ClusterConfig(
            n_workers=workers,
            batch_size=batch_size,
            sync_interval=sync_interval,
            online=online,
        ),
    )
    report = coordinator.serve(packets)
    if report.total_flows != single_flows:
        raise RuntimeError(
            "flow-count mismatch between serving paths: cluster="
            f"{report.total_flows}, single-process={single_flows}"
        )

    aggregate_rate = report.aggregate_flow_throughput
    wall_rate = report.wall_flow_throughput
    records = [
        make_record(
            "cluster_single_process",
            single_wall,
            "float32",
            dim,
            n_packets,
            scenario=scenario,
            flows=single_flows,
            flows_per_second=single_wall_rate,
            cpu_seconds=single_cpu,
            flows_per_cpu_second=single_cpu_rate,
            note="PR 2 StreamingDetector path",
        ),
        make_record(
            "cluster_serve",
            report.wall_seconds,
            "float32",
            dim,
            n_packets,
            scenario=scenario,
            workers=workers,
            flows=report.total_flows,
            alerts=report.total_alerts,
            sync_rounds=report.sync_rounds,
            generation=report.generation,
            wall_flows_per_second=wall_rate,
            aggregate_flows_per_second=aggregate_rate,
            aggregate_packets_per_second=report.aggregate_packet_throughput,
            coordinator_cpu_seconds=report.coordinator_cpu_seconds,
            routing_packets_per_cpu_second=report.routing_packets_per_cpu_second,
            transport=report.transport,
        ),
    ]
    for worker in report.workers:
        records.append(
            make_record(
                f"cluster_worker_{worker.worker_id}",
                worker.busy_seconds,
                "float32",
                dim,
                worker.packets,
                scenario=scenario,
                flows=worker.flows,
                alerts=worker.alerts,
                batches=worker.batches,
                busy_cpu_seconds=worker.busy_cpu_seconds,
                flows_per_cpu_second=worker.flow_throughput,
                online_updates=worker.online_updates,
            )
        )
    aggregate_speedup = aggregate_rate / single_cpu_rate if single_cpu_rate > 0 else 0.0
    wall_speedup = wall_rate / single_wall_rate if single_wall_rate > 0 else 0.0
    transport = report.transport or {}
    records.append(
        make_record(
            "cluster_speedup",
            report.wall_seconds,
            "float32",
            dim,
            n_packets,
            scenario=scenario,
            workers=workers,
            speedup=aggregate_speedup,
            wall_speedup=wall_speedup,
            scaling_efficiency=aggregate_speedup / workers if workers else 0.0,
            baseline_wall_time_s=single_wall,
            # Coordinator CPU spent columnarizing + copying frames into ring
            # slots -- the producer-pays cost that replaced per-batch pickle.
            transport_overhead_s=float(transport.get("serialize_cpu_seconds", 0.0)),
            routing_cpu_fraction=(
                report.routing_cpu_seconds / report.coordinator_cpu_seconds
                if report.coordinator_cpu_seconds > 0
                else 0.0
            ),
            note="speedup = aggregate capacity (sum of per-replica per-core "
            "rates) vs the single-process per-core rate; wall_speedup is the "
            "same-host wall-clock ratio, bounded by provenance.cpu_count",
        )
    )
    return records


def run_cluster_benchmarks(
    scenario: str = "mixed_benign",
    workers: int = 4,
    flows_scale: float = 2.0,
    batch_size: int = 512,
    dim: int = 256,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite cluster`` entry point.

    ``quick`` shrinks the workload for a CI smoke run, but only the
    parameters the caller left at their defaults -- explicit values always
    win.
    """
    if quick:
        if flows_scale == 2.0:
            flows_scale = 0.4
        if dim == 256:
            dim = 128
        if batch_size == 512:
            batch_size = 256
    return bench_cluster(
        scenario=scenario,
        workers=workers,
        flows_scale=flows_scale,
        batch_size=batch_size,
        dim=dim,
    )


# -------------------------------------------------- dataset replay benchmark
BENCH_REPLAY_JSON_NAME = "BENCH_replay.json"


def bench_replay(
    dataset: str = "nsl_kdd",
    n_train: int = 600,
    n_test: int = 240,
    dim: int = 256,
    epochs: int = 5,
    window: int = 512,
    micro_window: int = 64,
    workers: int = 2,
    rates: Sequence[float] = (5_000.0, 25_000.0, 100_000.0, 400_000.0),
    seed: int = 0,
    cluster: bool = True,
) -> List[Dict[str, Any]]:
    """Dataset-to-traffic replay: golden-trace parity + accuracy under load.

    The suite compiles the dataset's train/test splits into packet traces,
    trains a pipeline on the compiled training traffic, records the offline
    golden predictions for the test trace, then measures two things:

    * **parity** -- flow-for-flow agreement of the single-process,
      micro-batched and ``workers``-worker cluster serving paths with the
      offline batch path (the ``parity_ok`` fields are the correctness
      gate: a value of 0 means the serving stack and the paper's evaluation
      path disagree about which flows are attacks);
    * **accuracy under load** -- open-loop replay at each rate in
      ``rates`` (packets/second) against a bounded ``drop_oldest`` queue,
      reporting detection recall/precision and shed fraction as the offered
      rate passes serving capacity.
    """
    from repro.core.cyberhd import CyberHD
    from repro.datasets.loaders import load_dataset
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import (
        DatasetTraceCompiler,
        DifferentialHarness,
        ReplayConfig,
        TraceReplayer,
    )

    records: List[Dict[str, Any]] = []

    # ---- compile ---------------------------------------------------------
    ds = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=seed)
    compiler = DatasetTraceCompiler()
    start = time.perf_counter()
    train_trace = compiler.compile(ds, split="train", seed=seed)
    test_trace = compiler.compile(ds, split="test", seed=seed + 1)
    compile_wall = time.perf_counter() - start
    records.append(
        make_record(
            "replay_compile",
            compile_wall,
            "float32",
            dim,
            train_trace.n_packets + test_trace.n_packets,
            dataset=dataset,
            flows=train_trace.n_flows + test_trace.n_flows,
            packets_per_second=(train_trace.n_packets + test_trace.n_packets)
            / max(compile_wall, 1e-9),
            trace_seconds=test_trace.duration_seconds,
        )
    )

    # ---- train on the compiled training traffic --------------------------
    pipeline = DetectionPipeline(
        classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
    )
    start = time.perf_counter()
    pipeline.fit_packets(train_trace.packets)
    records.append(
        make_record(
            "replay_train",
            time.perf_counter() - start,
            "float32",
            dim,
            train_trace.n_flows,
            dataset=dataset,
            classes=len(pipeline.class_names),
        )
    )

    # ---- golden offline reference + parity across architectures ----------
    start = time.perf_counter()
    harness = DifferentialHarness(
        pipeline,
        test_trace,
        window_size=window,
        micro_window_size=micro_window,
        cluster_workers=workers,
    )
    golden_wall = time.perf_counter() - start
    records.append(
        make_record(
            "replay_golden_offline",
            golden_wall,
            "float32",
            dim,
            test_trace.n_packets,
            dataset=dataset,
            flows=harness.golden.n_flows,
            flagged=harness.golden.n_flagged,
            packets_per_second=test_trace.n_packets / max(golden_wall, 1e-9),
        )
    )
    paths = [
        ("single_process", harness.run_single_process),
        ("microbatched", harness.run_microbatched),
    ]
    if cluster and workers > 1:
        paths.append((f"cluster_{workers}w", harness.run_cluster))
    for name, run in paths:
        start = time.perf_counter()
        report = run()
        records.append(
            make_record(
                f"replay_parity_{name}",
                time.perf_counter() - start,
                "float32",
                dim,
                test_trace.n_packets,
                dataset=dataset,
                parity_ok=int(report.ok),
                missing=len(report.missing_flows),
                prediction_mismatches=len(report.prediction_mismatches),
                flag_mismatches=len(report.flag_mismatches),
                confidence_mismatches=len(report.confidence_mismatches),
                max_confidence_delta=report.max_confidence_delta,
            )
        )

    # ---- closed-loop capacity baseline ------------------------------------
    closed = TraceReplayer(
        pipeline, ReplayConfig(mode="closed", window_size=window)
    ).replay(test_trace)
    records.append(
        make_record(
            "replay_closed_loop",
            closed.wall_seconds,
            "float32",
            dim,
            closed.n_packets_served,
            dataset=dataset,
            packets_per_second=closed.packets_per_second,
            flows=closed.n_flows_served,
            alerts=closed.n_alerts,
            recall=closed.metrics["recall"],
            precision=closed.metrics["precision"],
            served_fraction=closed.metrics["served_fraction"],
        )
    )

    # ---- accuracy-under-load curve (open loop, drop_oldest) ---------------
    for rate in rates:
        result = TraceReplayer(
            pipeline,
            ReplayConfig(
                mode="open",
                rate=float(rate),
                window_size=window,
                queue_capacity=2 * window,
            ),
        ).replay(test_trace)
        records.append(
            make_record(
                "replay_open_loop",
                result.wall_seconds,
                "float32",
                dim,
                result.n_packets_submitted,
                dataset=dataset,
                offered_rate=float(rate),
                achieved_rate=result.packets_per_second,
                dropped_packets=result.dropped_packets,
                served_fraction=result.metrics["served_fraction"],
                recall=result.metrics["recall"],
                precision=result.metrics["precision"],
                flows=result.n_flows_served,
            )
        )
    return records


def run_replay_benchmarks(
    dataset: str = "nsl_kdd",
    workers: int = 2,
    window: Optional[int] = None,
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite replay`` entry point.

    ``window`` and ``dim`` default to 512 / 256 (256 / 128 under
    ``quick``); pass explicit values to override either -- ``None`` means
    "use the suite default", so an explicit value always wins, including
    one that happens to equal a default.
    """
    n_train, n_test, epochs = 600, 240, 5
    rates: Sequence[float] = (5_000.0, 25_000.0, 100_000.0, 400_000.0)
    if quick:
        n_train, n_test, epochs = 300, 120, 3
        rates = (4_000.0, 150_000.0)
    if dim is None:
        dim = 128 if quick else 256
    if window is None:
        window = 256 if quick else 512
    return bench_replay(
        dataset=dataset,
        n_train=n_train,
        n_test=n_test,
        dim=dim,
        epochs=epochs,
        window=window,
        workers=workers,
        rates=rates,
    )


# ---------------------------------------------- bit-packed inference benchmark
BENCH_BITPACK_JSON_NAME = "BENCH_bitpack.json"


def bench_bitpack_primitives(
    dims: Sequence[int] = (4096, 8192),
    n: int = 4000,
    n_classes: int = 5,
    repeats: int = 5,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Packed XOR/popcount scoring vs the float32 cosine kernel.

    Three timings per dimensionality, all scoring the same ``(n, D)`` query
    block against ``n_classes`` classes:

    * ``bitpack_scores_float32`` -- the float32 cosine kernel (what the
      full-precision serving path runs);
    * ``bitpack_scores_packed`` -- XOR + popcount over pre-packed queries
      (the serving steady state: queries are packed once at encode time by
      the fused ``encode_packed`` path);
    * ``bitpack_scores_end_to_end`` -- sign-binarize + pack + score, i.e.
      the full cost of entering the binary domain from a float encoding.

    ``bitpack_score_speedup`` carries the packed-vs-float32 ratio (the
    acceptance gate's number) and ``bitpack_model_bytes`` the storage
    reduction.
    """
    from repro.hdc.bitpack import PackedClassMatrix, pack_sign_bits

    rng = np.random.default_rng(seed)
    records: List[Dict[str, Any]] = []
    for dim in dims:
        classes = rng.standard_normal((n_classes, dim)).astype(np.float32)
        H = rng.standard_normal((n, dim)).astype(np.float32)
        packed = PackedClassMatrix.from_class_matrix(classes)
        packed_queries = packed.pack_queries(H)

        t_float = _best_of(lambda: cosine_similarity_matrix(H, classes), repeats)
        t_packed = _best_of(lambda: packed.scores_packed(packed_queries), repeats)
        t_end_to_end = _best_of(lambda: packed.scores(H), repeats)
        t_pack = _best_of(lambda: pack_sign_bits(H), repeats)

        records.append(
            make_record(
                "bitpack_scores_float32", t_float, "float32", dim, n,
                scores_per_second=n / t_float,
            )
        )
        records.append(
            make_record(
                "bitpack_scores_packed", t_packed, "uint64", dim, n,
                scores_per_second=n / t_packed,
            )
        )
        records.append(
            make_record(
                "bitpack_scores_end_to_end", t_end_to_end, "uint64", dim, n,
                scores_per_second=n / t_end_to_end,
                note="sign-binarize + pack + XOR/popcount score",
            )
        )
        records.append(
            make_record(
                "bitpack_pack_queries", t_pack, "uint64", dim, n,
                rows_per_second=n / t_pack,
            )
        )
        records.append(
            make_record(
                "bitpack_score_speedup", t_packed, "uint64", dim, n,
                speedup=t_float / t_packed if t_packed > 0 else float("inf"),
                end_to_end_speedup=t_float / t_end_to_end if t_end_to_end > 0 else float("inf"),
                baseline_wall_time_s=t_float,
                note="pre-packed queries vs float32 cosine kernel",
            )
        )
        model_bytes_float32 = int(classes.nbytes)
        records.append(
            make_record(
                "bitpack_model_bytes", 0.0, "uint64", dim, n_classes,
                model_bytes_float32=model_bytes_float32,
                model_bytes_packed=packed.nbytes,
                bytes_reduction=model_bytes_float32 / packed.nbytes,
            )
        )
    return records


def bench_bitpack_serving(
    dataset: str = "nsl_kdd",
    n_train: int = 600,
    n_test: int = 240,
    dim: int = 256,
    epochs: int = 5,
    window: int = 512,
    micro_window: int = 64,
    workers: int = 2,
    fault_rates: Sequence[float] = (0.001, 0.005, 0.01, 0.05, 0.10),
    seed: int = 0,
    cluster: bool = True,
) -> List[Dict[str, Any]]:
    """Packed serving on one dataset: golden parity + live fault injection.

    * **parity** -- the golden record is the offline 1-bit batch path run
      through the float-GEMM :class:`QuantizedClassMatrix` (packed serving
      disabled); each serving path then replays the trace with the packed
      XOR/popcount fabric.  ``parity_ok == 1`` means the packed words and the
      quantized float path flag the same flows with bit-identical scores --
      the differential evidence that packing is a representation change, not
      a semantic one.
    * **fault injection** -- Fig. 5's robustness scenario as a serving
      workload: random bits of the deployed packed model are flipped at each
      rate in ``fault_rates`` and the corrupted model keeps serving the
      replayed trace; recall/precision are measured against the trace labels
      and prediction agreement against the clean serving run.
    """
    from repro.core.cyberhd import CyberHD
    from repro.datasets.loaders import load_dataset
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import (
        DatasetTraceCompiler,
        DifferentialHarness,
        ReplayConfig,
        TraceReplayer,
    )
    from repro.serving.faults import ServingFaultInjector

    records: List[Dict[str, Any]] = []
    ds = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=seed)
    compiler = DatasetTraceCompiler()
    train_trace = compiler.compile(ds, split="train", seed=seed)
    test_trace = compiler.compile(ds, split="test", seed=seed + 1)
    pipeline = DetectionPipeline(
        classifier=CyberHD(
            dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed, inference_bits=1
        )
    ).fit_packets(train_trace.packets)
    classifier = pipeline.classifier

    # ---- golden (offline 1-bit batch via the quantized GEMM path) ---------
    classifier.packed_inference = False
    classifier._invalidate_inference_caches()
    harness = DifferentialHarness(
        pipeline,
        test_trace,
        window_size=window,
        micro_window_size=micro_window,
        cluster_workers=workers,
    )
    classifier.packed_inference = True
    classifier._invalidate_inference_caches()

    paths = [
        ("single_process", harness.run_single_process),
        ("microbatched", harness.run_microbatched),
    ]
    if cluster and workers > 1:
        paths.append((f"cluster_{workers}w", harness.run_cluster))
    for name, run in paths:
        start = time.perf_counter()
        report = run()
        records.append(
            make_record(
                f"bitpack_parity_{name}",
                time.perf_counter() - start,
                "uint64",
                dim,
                test_trace.n_packets,
                dataset=dataset,
                parity_ok=int(report.ok),
                missing=len(report.missing_flows),
                prediction_mismatches=len(report.prediction_mismatches),
                flag_mismatches=len(report.flag_mismatches),
                confidence_mismatches=len(report.confidence_mismatches),
                max_confidence_delta=report.max_confidence_delta,
                note="packed XOR/popcount serving vs offline 1-bit GEMM batch",
            )
        )

    # ---- serving-time fault injection (Fig. 5, live) ----------------------
    def replay_once():
        return TraceReplayer(
            pipeline, ReplayConfig(mode="closed", window_size=window)
        ).replay(test_trace)

    clean = replay_once()
    clean_predictions = {
        token: record.prediction for token, record in clean.predictions.items()
    }
    records.append(
        make_record(
            "bitpack_fault_recall",
            clean.wall_seconds,
            "uint64",
            dim,
            clean.n_packets_served,
            dataset=dataset,
            error_rate=0.0,
            flipped_bits=0,
            recall=clean.metrics["recall"],
            precision=clean.metrics["precision"],
            prediction_agreement=1.0,
            packets_per_second=clean.packets_per_second,
        )
    )
    for rate in fault_rates:
        injector = ServingFaultInjector(float(rate), seed=seed)
        with injector.corrupt(classifier) as stats:
            result = replay_once()
        agreement = float(
            np.mean(
                [
                    result.predictions[token].prediction == prediction
                    for token, prediction in clean_predictions.items()
                    if token in result.predictions
                ]
            )
        )
        records.append(
            make_record(
                "bitpack_fault_recall",
                result.wall_seconds,
                "uint64",
                dim,
                result.n_packets_served,
                dataset=dataset,
                error_rate=float(rate),
                flipped_bits=stats.n_flipped,
                recall=result.metrics["recall"],
                precision=result.metrics["precision"],
                prediction_agreement=agreement,
                packets_per_second=result.packets_per_second,
            )
        )
    return records


def bench_bitpack(
    dims: Sequence[int] = (4096, 8192),
    datasets: Sequence[str] = ("nsl_kdd", "unsw_nb15"),
    n_train: int = 600,
    n_test: int = 240,
    serving_dim: int = 256,
    epochs: int = 5,
    window: int = 512,
    workers: int = 2,
    fault_rates: Sequence[float] = (0.001, 0.005, 0.01, 0.05, 0.10),
    repeats: int = 5,
    seed: int = 0,
    cluster: bool = True,
) -> List[Dict[str, Any]]:
    """The full bitpack suite: kernels + per-dataset packed serving."""
    records = bench_bitpack_primitives(dims=dims, repeats=repeats, seed=seed)
    for dataset in datasets:
        records += bench_bitpack_serving(
            dataset=dataset,
            n_train=n_train,
            n_test=n_test,
            dim=serving_dim,
            epochs=epochs,
            window=window,
            workers=workers,
            fault_rates=fault_rates,
            seed=seed,
            cluster=cluster,
        )
    return records


def run_bitpack_benchmarks(
    workers: int = 2,
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite bitpack`` entry point.

    ``quick`` shrinks the serving workloads for a CI smoke run but keeps the
    kernel measurement at ``D = 4096`` -- the acceptance floor is defined at
    that dimensionality, so the smoke measures the same operating point as
    the checked-in baseline.  An explicit ``--dim`` overrides the serving
    dimensionality in either mode.
    """
    n_train, n_test, epochs, repeats = 600, 240, 5, 5
    dims: Sequence[int] = (4096, 8192)
    fault_rates: Sequence[float] = (0.001, 0.005, 0.01, 0.05, 0.10)
    cluster = True
    if quick:
        n_train, n_test, epochs, repeats = 300, 120, 3, 3
        dims = (4096,)
        fault_rates = (0.01, 0.10)
        cluster = workers > 1
    return bench_bitpack(
        dims=dims,
        n_train=n_train,
        n_test=n_test,
        serving_dim=dim if dim is not None else (128 if quick else 256),
        epochs=epochs,
        window=256 if quick else 512,
        workers=workers,
        fault_rates=fault_rates,
        repeats=repeats,
        cluster=cluster,
    )


# ------------------------------------------------------------ chaos benchmark
BENCH_CHAOS_JSON_NAME = "BENCH_chaos.json"


def bench_chaos(
    dataset: str = "nsl_kdd",
    n_train: int = 600,
    n_test: int = 240,
    dim: int = 128,
    epochs: int = 3,
    batch_size: int = 64,
    workers: int = 2,
    scenarios: Sequence["tuple[str, Sequence[str]]"] = (
        ("kill", ("kill:0@0.4",)),
        ("hang", ("hang:1@0.3",)),
        ("exit", ("exit:1@0.5",)),
    ),
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Process-fault recovery under replay: the ``--suite chaos`` workload.

    The suite compiles the dataset into a trace, records the offline golden
    predictions, runs one crash-free cluster baseline, then replays the same
    trace under each fault schedule in ``scenarios`` (SIGKILL, non-stamping
    hang, clean-but-premature exit by default).  Every faulted run must
    still end in golden-trace flow parity -- the ``parity_ok`` fields are
    hard gates in ``bench-diff`` -- and two speedup-shaped records make the
    recovery quality gateable with absolute ``--floor`` requirements:

    * ``chaos_recall_retention`` -- faulted-run recall over crash-free
      recall for the SIGKILL scenario (the PR's acceptance bound is 0.99:
      recall within 1pt of the crash-free run);
    * ``chaos_recovery_speed`` -- ``1 / recovery_seconds`` for the SIGKILL
      scenario, so a floor of 0.2 reads "detect-to-recover within 5s".
      The ratio saturates at 2.0 (any recovery under half a second scores
      the same): recovery on an idle host takes tens of milliseconds, and
      an uncapped ratio would turn scheduler noise into a 10x swing that
      the relative bench-diff comparison then gates on.
    """
    from repro.cluster import ChaosSchedule, run_chaos_replay
    from repro.core.cyberhd import CyberHD
    from repro.datasets.loaders import load_dataset
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import DatasetTraceCompiler, GoldenTrace

    records: List[Dict[str, Any]] = []

    ds = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=seed)
    compiler = DatasetTraceCompiler()
    train_trace = compiler.compile(ds, split="train", seed=seed)
    test_trace = compiler.compile(ds, split="test", seed=seed + 1)
    pipeline = DetectionPipeline(
        classifier=CyberHD(dim=dim, epochs=epochs, regeneration_rate=0.1, seed=seed)
    ).fit_packets(train_trace.packets)
    golden = GoldenTrace.record(pipeline, test_trace)

    start = time.perf_counter()
    baseline = run_chaos_replay(
        pipeline,
        test_trace,
        golden=golden,
        n_workers=workers,
        batch_size=batch_size,
    )
    records.append(
        make_record(
            "chaos_baseline",
            time.perf_counter() - start,
            "float32",
            dim,
            test_trace.n_packets,
            dataset=dataset,
            workers=workers,
            parity_ok=int(baseline.parity.ok),
            recall=baseline.metrics["recall"],
            precision=baseline.metrics["precision"],
            served_fraction=baseline.metrics["served_fraction"],
        )
    )

    kill_result = None
    for name, specs in scenarios:
        start = time.perf_counter()
        result = run_chaos_replay(
            pipeline,
            test_trace,
            schedule=ChaosSchedule.parse(specs),
            golden=golden,
            n_workers=workers,
            batch_size=batch_size,
        )
        recovery = result.report.recovery
        records.append(
            make_record(
                f"chaos_{name}",
                time.perf_counter() - start,
                "float32",
                dim,
                test_trace.n_packets,
                dataset=dataset,
                workers=workers,
                schedule=list(specs),
                parity_ok=int(result.ok),
                detection_seconds=result.detection_seconds,
                recovery_seconds=result.recovery_seconds,
                respawns=recovery.total_respawns,
                redispatched_batches=recovery.total_redispatched_batches,
                redispatched_packets=recovery.total_redispatched_packets,
                duplicates_suppressed=recovery.duplicates_suppressed,
                unrecovered_batches=recovery.unrecovered_batches,
                recall=result.metrics["recall"],
                precision=result.metrics["precision"],
                recall_delta=result.metrics["recall"] - baseline.metrics["recall"],
            )
        )
        if name == "kill":
            kill_result = result

    if kill_result is not None:
        base_recall = max(baseline.metrics["recall"], 1e-9)
        records.append(
            make_record(
                "chaos_recall_retention",
                0.0,
                "float32",
                dim,
                test_trace.n_flows,
                dataset=dataset,
                speedup=kill_result.metrics["recall"] / base_recall,
            )
        )
        records.append(
            make_record(
                "chaos_recovery_speed",
                kill_result.recovery_seconds,
                "float32",
                dim,
                kill_result.report.recovery.total_redispatched_batches,
                dataset=dataset,
                recovery_seconds=kill_result.recovery_seconds,
                speedup=1.0 / max(kill_result.recovery_seconds, 0.5),
            )
        )
    return records


def run_chaos_benchmarks(
    dataset: str = "nsl_kdd",
    workers: int = 2,
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite chaos`` entry point.

    ``quick`` halves the compiled rows for a CI smoke run but keeps every
    fault scenario: the point of the suite is recovery evidence, and a
    smoke that drops the SIGKILL case would gate nothing.
    """
    n_train, n_test, epochs = 600, 240, 3
    if quick:
        n_train, n_test = 400, 120
    return bench_chaos(
        dataset=dataset,
        n_train=n_train,
        n_test=n_test,
        dim=dim if dim is not None else (96 if quick else 128),
        epochs=epochs,
        workers=workers,
    )


# ----------------------------------------------------------- fabric suite
BENCH_FABRIC_JSON_NAME = "BENCH_fabric.json"


def _fabric_recall(pipeline, packets) -> float:
    """Attack recall of one pipeline over one mirrored slice."""
    from repro.fabric import attack_recall
    from repro.replay.replayer import predictions_from_detections

    pipeline.alert_manager.clear()
    result = pipeline.detect_packets(packets, idle_timeout=5.0)
    records = predictions_from_detections([result], pipeline)
    return attack_recall(records.values(), pipeline.is_attack_class)


def bench_fabric(
    tenants: int = 128,
    train_flows: int = 160,
    mirror_flows: int = 240,
    dim: int = 128,
    epochs: int = 3,
    window: int = 256,
    swaps: int = 48,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Multi-tenant model fabric: the ``--suite fabric`` workload.

    Four records cover the fabric's headline claims:

    * ``fabric_tenant_capacity`` -- ``tenants`` packed models published
      resident in shared memory at once, with bytes-per-tenant (the
      tenants-per-host capacity number);
    * ``hot_swap_p95_ms`` -- p95 latency of an alias flip *plus* the
      attached reader materializing the new version, with ``speedup``
      encoded as ``micro_batch_interval_ms / p95`` so the bench-diff floor
      of 1.0 reads "a hot swap completes inside one micro-batch interval";
    * ``shadow_overhead_fraction`` -- candidate mirror wall time over live
      wall time, with ``speedup = 2 / (1 + overhead)`` so a floor of 0.9
      reads "mirroring costs at most ~1.2x the live pass";
    * ``fabric_recall_isolation`` -- online learning confined to one tenant
      must move that tenant's class matrix and *only* that tenant's
      (``parity_ok`` is the hard isolation gate in ``bench-diff``).
    """
    from repro.core.cyberhd import CyberHD
    from repro.fabric import (
        AttachedFabric,
        FabricEngine,
        ModelRegistry,
        TenantKeyer,
        evaluate_candidate,
    )
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline

    records: List[Dict[str, Any]] = []

    def train(model_seed: int, subnet: str) -> DetectionPipeline:
        packets = TrafficGenerator(seed=model_seed, subnet=subnet).generate(
            train_flows
        )
        return DetectionPipeline(
            classifier=CyberHD(
                dim=dim,
                epochs=epochs,
                regeneration_rate=0.1,
                seed=model_seed,
                inference_bits=1,
            )
        ).fit_packets(packets)

    base = train(seed, "10.0.0")
    candidate = train(seed + 1, "10.0.0")
    keyer = TenantKeyer.per_subnet(tenants)
    registry = ModelRegistry(max_tenants=tenants, max_readers=4)
    try:
        # Capacity: the same trained model published into every tenant slot
        # (capacity is about shm residency and publish cost, not training).
        start = time.perf_counter()
        for tenant in range(tenants):
            registry.publish(tenant, base)
        publish_seconds = time.perf_counter() - start
        total_bytes = registry.total_model_bytes()
        records.append(
            make_record(
                "fabric_tenant_capacity",
                publish_seconds,
                "float32",
                dim,
                tenants,
                tenants=tenants,
                total_model_bytes=total_bytes,
                bytes_per_tenant=total_bytes / tenants,
                publish_ms_per_tenant=1e3 * publish_seconds / tenants,
            )
        )

        # Micro-batch interval: how long one engine window takes to serve --
        # the budget a hot swap must fit inside.
        stream = TrafficGenerator(seed=seed + 5000, subnet="10.0.0").generate(
            mirror_flows
        )
        engine = FabricEngine(registry.spec(), keyer, reader_id=2)
        batch_seconds: List[float] = []
        try:
            for i in range(0, len(stream), window):
                t0 = time.perf_counter()
                engine.process_packets(stream[i : i + window])
                batch_seconds.append(time.perf_counter() - t0)
            engine.finalize()
        finally:
            engine.close()
        micro_batch_ms = 1e3 * float(np.mean(batch_seconds))

        # Hot swap: alias flip + the reader picking the new version up.
        v2 = registry.publish(0, candidate)
        v1 = registry.live_version(0)
        reader = AttachedFabric(registry.spec(), reader_id=1)
        try:
            reader.pipeline_for(0)
            swap_ms: List[float] = []
            start = time.perf_counter()
            for i in range(swaps):
                target = v2 if i % 2 == 0 else v1
                t0 = time.perf_counter()
                registry.promote(0, target)
                reader.pipeline_for(0)
                swap_ms.append(1e3 * (time.perf_counter() - t0))
            swap_seconds = time.perf_counter() - start
        finally:
            reader.close()
        p95_ms = float(np.percentile(swap_ms, 95))
        records.append(
            make_record(
                "hot_swap_p95_ms",
                swap_seconds,
                "float32",
                dim,
                swaps,
                p95_ms=p95_ms,
                mean_ms=float(np.mean(swap_ms)),
                micro_batch_interval_ms=micro_batch_ms,
                speedup=micro_batch_ms / max(p95_ms, 1e-9),
            )
        )

        # Shadow overhead: candidate wall time over live wall time on the
        # same mirror.  Best-of-3 so a single scheduler hiccup does not
        # masquerade as mirroring cost.
        mirror = TrafficGenerator(seed=seed + 6000, subnet="10.0.0").generate(
            mirror_flows
        )
        overhead = None
        start = time.perf_counter()
        for _ in range(3):
            decision = evaluate_candidate(
                base,
                candidate,
                mirror,
                recall_tolerance=1.0,
                divergence_budget=1.0,
            )
            fraction = decision.shadow_overhead_fraction
            overhead = fraction if overhead is None else min(overhead, fraction)
        shadow_seconds = time.perf_counter() - start
        records.append(
            make_record(
                "shadow_overhead_fraction",
                shadow_seconds,
                "float32",
                dim,
                decision.n_flows,
                shadow_overhead_fraction=overhead,
                speedup=2.0 / (1.0 + overhead),
            )
        )

        # Recall isolation: online learning on tenant 1's traffic only must
        # leave tenant 2's published class matrix bit-identical.
        before_1 = np.array(registry.publication(1).class_matrix, copy=True)
        before_2 = np.array(registry.publication(2).class_matrix, copy=True)
        tenant_stream = TrafficGenerator(
            seed=seed + 7000, subnet="10.1.0"
        ).generate(mirror_flows)
        start = time.perf_counter()
        engine = FabricEngine(
            registry.spec(),
            keyer,
            reader_id=3,
            online=True,
            registry=registry,
            sync_interval=2,
        )
        try:
            for i in range(0, len(tenant_stream), window):
                engine.process_packets(tenant_stream[i : i + window])
            engine.finalize()
        finally:
            engine.close()
        learn_seconds = time.perf_counter() - start
        after_1 = registry.publication(1).class_matrix
        after_2 = registry.publication(2).class_matrix
        learned = not np.array_equal(before_1, after_1)
        isolated = np.array_equal(before_2, after_2)
        scorer = AttachedFabric(registry.spec(), reader_id=1)
        try:
            tenant_recall = _fabric_recall(scorer.pipeline_for(1), tenant_stream)
        finally:
            scorer.close()
        records.append(
            make_record(
                "fabric_recall_isolation",
                learn_seconds,
                "float32",
                dim,
                len(tenant_stream),
                parity_ok=int(learned and isolated),
                tenant_updated=int(learned),
                others_untouched=int(isolated),
                tenant_recall=tenant_recall,
            )
        )
    finally:
        registry.close()
    return records


def run_fabric_benchmarks(
    tenants: int = 128,
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite fabric`` entry point.

    ``quick`` shrinks flows and swap repetitions for the CI smoke but keeps
    the tenant count -- the capacity record's whole point is demonstrating
    100+ tenants resident at once, and a smoke that publishes 8 would gate
    nothing.
    """
    tenants = max(tenants, 100)
    if quick:
        return bench_fabric(
            tenants=tenants,
            train_flows=80,
            mirror_flows=120,
            dim=dim if dim is not None else 64,
            epochs=2,
            swaps=24,
        )
    return bench_fabric(
        tenants=tenants, dim=dim if dim is not None else 128
    )


# ---------------------------------------------------------- cascade benchmark
BENCH_CASCADE_JSON_NAME = "BENCH_cascade.json"


def _benign_heavy_mix(dataset, benign_fraction: float, size: int, seed: int):
    """Resample a test split into a benign-dominated serving mix.

    Raw IDS test splits are attack-heavy by construction (NSL-KDD's is
    ~48% attacks), which is the opposite of deployment traffic; cascade
    throughput claims are only meaningful on the mix the pre-filter was
    built for, so the bench resamples the split to ``benign_fraction``
    (with replacement) before timing anything.
    """
    attack_mask = np.asarray(dataset.schema.attack_mask, dtype=bool)
    is_attack = attack_mask[dataset.y_test]
    benign_rows = np.flatnonzero(~is_attack)
    attack_rows = np.flatnonzero(is_attack)
    if benign_rows.size == 0 or attack_rows.size == 0:
        raise ValueError(
            "the test split needs both benign and attack rows to build a "
            "serving mix"
        )
    rng = np.random.default_rng(seed)
    n_attack = max(1, int(round(size * (1.0 - benign_fraction))))
    n_benign = max(0, size - n_attack)
    rows = np.concatenate(
        [
            rng.choice(benign_rows, size=n_benign, replace=True),
            rng.choice(attack_rows, size=n_attack, replace=True),
        ]
    )
    rng.shuffle(rows)
    return dataset.X_test[rows], dataset.y_test[rows]


def bench_cascade(
    dataset: str = "nsl_kdd",
    n_train: int = 8000,
    n_test: int = 1000,
    dim: int = 4096,
    prefilter_dim: int = 512,
    epochs: int = 5,
    escalation_margin: float = 0.0,
    margin_sweep: Sequence[float] = (0.0005, 0.002, 0.01),
    benign_fraction: float = 0.99,
    mix_size: int = 8192,
    window: int = 512,
    repeats: int = 5,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """The cascade suite: throughput vs the float32-only head + parity.

    * **cascade_throughput** -- both paths classify the same benign-heavy
      mix in one batch call: the full float32 multiclass head against the
      cascade (packed binary pre-filter at ``prefilter_dim``, float32 head
      only on the escalated slice).  ``speedup`` is the wall-time ratio;
      the acceptance floor is >= 5x.
    * **cascade_windowed_throughput** -- the same comparison chunked into
      serving-sized windows.  Small float batches are cache-friendlier, so
      this regime narrows the gap; it is recorded un-gated precisely so the
      batch-path headline cannot be mistaken for a serving-path claim.
    * **cascade_escalation** -- ``speedup`` is ``1/escalation_fraction``,
      so an explicit floor on this op gates an escalation *ceiling*.
    * **cascade_margin_tradeoff** -- escalation/detection/false-alarm at
      each margin in ``margin_sweep`` (the ``docs/cascade.md`` table).
    * **cascade_escalated_recall** -- on the raw test split, the escalated
      slice's predictions must bit-match the standalone float32 head
      (``parity_ok``), which pins every per-attack-type recall delta to
      zero; ``speedup`` carries the slice's attack detection rate so a
      floor gates absolute recall.
    * **cascade_int8_throughput / cascade_int8_escalated_recall** -- the
      same two measurements for a cascade whose escalation head runs 8-bit
      quantized inference (the second head-precision operating point);
      throughput is against the *same* float32-only batch path, so the
      int8 and float32 speedups are directly comparable.
    """
    from repro.cascade import (
        CascadeConfig,
        cascade_with_margin,
        train_cascade_dataset,
    )
    from repro.cascade.stage import classifier_scores
    from repro.datasets.loaders import load_dataset
    from repro.nids.metrics import detection_report

    records: List[Dict[str, Any]] = []
    ds = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=seed)
    config = CascadeConfig(
        escalation_margin=escalation_margin,
        prefilter_dim=prefilter_dim,
        prefilter_bits=1,
    )
    start = time.perf_counter()
    cascade = train_cascade_dataset(
        ds, config=config, dim=dim, epochs=epochs, seed=seed
    )
    train_seconds = time.perf_counter() - start
    head = cascade.multiclass.classifier
    attack_mask = np.asarray(ds.schema.attack_mask, dtype=bool)
    X_mix, y_mix = _benign_heavy_mix(ds, benign_fraction, mix_size, seed)

    # ---- batch-path throughput: cascade vs float32-only -------------------
    def float_batch():
        return np.argmax(classifier_scores(head, X_mix), axis=1)

    def cascade_batch():
        return cascade.classify_matrix(X_mix)

    float_batch(), cascade_batch()  # warm both paths before timing
    float_seconds = _best_of(float_batch, repeats)
    cascade_seconds = _best_of(cascade_batch, repeats)
    predictions, escalated = cascade.classify_matrix(X_mix)
    fraction = float(np.mean(escalated))
    truth_attack = attack_mask[y_mix]
    served_attack = attack_mask[predictions]
    records.append(
        make_record(
            "cascade_throughput",
            cascade_seconds,
            "uint64",
            dim,
            mix_size,
            dataset=dataset,
            prefilter_dim=prefilter_dim,
            speedup=float_seconds / cascade_seconds,
            float32_wall_time_s=float_seconds,
            flows_per_second=mix_size / cascade_seconds,
            float32_flows_per_second=mix_size / float_seconds,
            escalation_fraction=fraction,
            escalation_margin=cascade.escalation_margin,
            benign_fraction=benign_fraction,
            detection_rate=float(np.mean(served_attack[truth_attack])),
            false_alarm_rate=float(np.mean(served_attack[~truth_attack])),
            train_seconds=train_seconds,
            note="one batch call per path over the same benign-heavy mix",
        )
    )

    # ---- serving-window twin (recorded, not floored) ----------------------
    def float_windowed():
        for i in range(0, mix_size, window):
            np.argmax(classifier_scores(head, X_mix[i : i + window]), axis=1)

    def cascade_windowed():
        for i in range(0, mix_size, window):
            cascade.classify_matrix(X_mix[i : i + window])

    float_window_seconds = _best_of(float_windowed, repeats)
    cascade_window_seconds = _best_of(cascade_windowed, repeats)
    records.append(
        make_record(
            "cascade_windowed_throughput",
            cascade_window_seconds,
            "uint64",
            dim,
            mix_size,
            dataset=dataset,
            window=window,
            speedup=float_window_seconds / cascade_window_seconds,
            flows_per_second=mix_size / cascade_window_seconds,
            float32_flows_per_second=mix_size / float_window_seconds,
            escalation_margin=cascade.escalation_margin,
        )
    )

    # ---- escalation ceiling (speedup = 1/fraction) ------------------------
    records.append(
        make_record(
            "cascade_escalation",
            cascade_seconds,
            "uint64",
            prefilter_dim,
            mix_size,
            dataset=dataset,
            speedup=1.0 / max(fraction, 1e-9),
            escalation_fraction=fraction,
            escalation_margin=cascade.escalation_margin,
            note="speedup is 1/escalation_fraction; a floor gates a ceiling",
        )
    )

    # ---- margin sweep (the tuning table) ----------------------------------
    for margin in margin_sweep:
        swept = cascade_with_margin(cascade, float(margin))
        start = time.perf_counter()
        swept_predictions, swept_escalated = swept.classify_matrix(X_mix)
        sweep_seconds = time.perf_counter() - start
        swept_attack = attack_mask[swept_predictions]
        records.append(
            make_record(
                "cascade_margin_tradeoff",
                sweep_seconds,
                "uint64",
                dim,
                mix_size,
                dataset=dataset,
                escalation_margin=float(margin),
                escalation_fraction=float(np.mean(swept_escalated)),
                detection_rate=float(np.mean(swept_attack[truth_attack])),
                false_alarm_rate=float(np.mean(swept_attack[~truth_attack])),
            )
        )

    # ---- escalated-slice parity + per-attack-type recall ------------------
    test_predictions, test_escalated = cascade.classify_matrix(ds.X_test)
    head_predictions = np.argmax(classifier_scores(head, ds.X_test), axis=1)
    slice_truth = ds.y_test[test_escalated]
    cascade_report = detection_report(
        slice_truth,
        test_predictions[test_escalated],
        ds.class_names,
        attack_mask=ds.schema.attack_mask,
    )
    head_report = detection_report(
        slice_truth,
        head_predictions[test_escalated],
        ds.class_names,
        attack_mask=ds.schema.attack_mask,
    )
    bit_match = bool(
        np.array_equal(
            test_predictions[test_escalated], head_predictions[test_escalated]
        )
    )
    recall_delta = max(
        (
            abs(
                cascade_report.per_class[name]["recall"]
                - head_report.per_class[name]["recall"]
            )
            for name in ds.class_names
        ),
        default=0.0,
    )
    records.append(
        make_record(
            "cascade_escalated_recall",
            0.0,
            "uint64",
            dim,
            int(np.sum(test_escalated)),
            dataset=dataset,
            parity_ok=int(bit_match and recall_delta <= 0.01),
            speedup=float(cascade_report.detection_rate or 0.0),
            max_recall_delta=recall_delta,
            escalation_fraction=float(np.mean(test_escalated)),
            per_class_recall={
                name: cascade_report.per_class[name]["recall"]
                for name in ds.class_names
            },
            per_class_precision={
                name: cascade_report.per_class[name]["precision"]
                for name in ds.class_names
            },
            note="escalated-slice predictions vs the standalone float32 head",
        )
    )

    # ---- int8 escalation-head operating point -----------------------------
    # The second point on the head-precision axis: the same packed 1-bit
    # pre-filter, but the escalation head quantized to 8-bit inference.
    # Throughput is measured against the *same* float32-only batch path as
    # cascade_throughput, so the two speedups are directly comparable (the
    # matrix's int8-vs-float32 significance comparison rides on that).
    int8_config = CascadeConfig(
        escalation_margin=escalation_margin,
        prefilter_dim=prefilter_dim,
        prefilter_bits=1,
        multiclass_bits=8,
    )
    start = time.perf_counter()
    int8_cascade = train_cascade_dataset(
        ds, config=int8_config, dim=dim, epochs=epochs, seed=seed
    )
    int8_train_seconds = time.perf_counter() - start
    int8_head = int8_cascade.multiclass.classifier

    def int8_batch():
        return int8_cascade.classify_matrix(X_mix)

    int8_batch()  # warm
    int8_seconds = _best_of(int8_batch, repeats)
    int8_predictions, int8_escalated = int8_cascade.classify_matrix(X_mix)
    int8_fraction = float(np.mean(int8_escalated))
    int8_served_attack = attack_mask[int8_predictions]
    records.append(
        make_record(
            "cascade_int8_throughput",
            int8_seconds,
            "uint64",
            dim,
            mix_size,
            dataset=dataset,
            prefilter_dim=prefilter_dim,
            multiclass_bits=8,
            speedup=float_seconds / int8_seconds,
            flows_per_second=mix_size / int8_seconds,
            float32_flows_per_second=mix_size / float_seconds,
            escalation_fraction=int8_fraction,
            escalation_margin=int8_cascade.escalation_margin,
            benign_fraction=benign_fraction,
            detection_rate=float(np.mean(int8_served_attack[truth_attack])),
            false_alarm_rate=float(np.mean(int8_served_attack[~truth_attack])),
            train_seconds=int8_train_seconds,
            note="int8 escalation head vs the same float32-only batch path",
        )
    )

    int8_test_predictions, int8_test_escalated = int8_cascade.classify_matrix(ds.X_test)
    int8_head_predictions = np.argmax(classifier_scores(int8_head, ds.X_test), axis=1)
    int8_slice_truth = ds.y_test[int8_test_escalated]
    int8_report = detection_report(
        int8_slice_truth,
        int8_test_predictions[int8_test_escalated],
        ds.class_names,
        attack_mask=ds.schema.attack_mask,
    )
    int8_standalone_report = detection_report(
        int8_slice_truth,
        int8_head_predictions[int8_test_escalated],
        ds.class_names,
        attack_mask=ds.schema.attack_mask,
    )
    int8_bit_match = bool(
        np.array_equal(
            int8_test_predictions[int8_test_escalated],
            int8_head_predictions[int8_test_escalated],
        )
    )
    int8_recall_delta = max(
        (
            abs(
                int8_report.per_class[name]["recall"]
                - int8_standalone_report.per_class[name]["recall"]
            )
            for name in ds.class_names
        ),
        default=0.0,
    )
    records.append(
        make_record(
            "cascade_int8_escalated_recall",
            0.0,
            "uint64",
            dim,
            int(np.sum(int8_test_escalated)),
            dataset=dataset,
            multiclass_bits=8,
            parity_ok=int(int8_bit_match and int8_recall_delta <= 0.01),
            speedup=float(int8_report.detection_rate or 0.0),
            max_recall_delta=int8_recall_delta,
            escalation_fraction=float(np.mean(int8_test_escalated)),
            per_class_recall={
                name: int8_report.per_class[name]["recall"]
                for name in ds.class_names
            },
            note="escalated-slice predictions vs the standalone int8 head",
        )
    )
    return records


def run_cascade_benchmarks(
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite cascade`` entry point.

    ``quick`` shrinks training and the serving mix for the CI smoke but
    keeps the head/pre-filter dimensionalities -- the >= 5x floor is
    defined at the 4096/512 operating point, so the smoke must measure
    the same one.
    """
    if quick:
        return bench_cascade(
            n_train=2000,
            n_test=300,
            dim=dim if dim is not None else 4096,
            epochs=3,
            margin_sweep=(0.0005,),
            mix_size=2048,
            repeats=3,
        )
    return bench_cascade(dim=dim if dim is not None else 4096)


# ----------------------------------------------- loadgen scenario grading
BENCH_LOADGEN_JSON_NAME = "BENCH_loadgen.json"


def bench_loadgen(
    scenarios: Sequence[str] = (
        "ddos_burst",
        "port_scan_sweep",
        "low_and_slow_exfiltration",
    ),
    flows_scale: float = 1.0,
    rates: Sequence[float] = (4_000.0, 20_000.0, 120_000.0),
    dim: int = 256,
    epochs: int = 5,
    train_flows: int = 400,
    window: int = 512,
    recall_tolerance: float = 0.05,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Loadgen scenario grading: per-attack-type recall across load points.

    Each scenario's packet stream is compiled into a ground-truth trace
    (:func:`repro.cluster.loadgen.compile_scenario_trace`), then replayed
    through a pipeline trained on the default profile mix:

    * **loadgen_closed_loop** -- the deterministic every-flow-served
      baseline; carries aggregate recall/precision and the per-attack-type
      recall breakdown the load points are graded against.
    * **loadgen_load_point** -- open-loop replay at each rate in ``rates``
      (packets/second, ``drop_oldest`` shedding), with the same per-type
      breakdown: the recall-vs-load *curve per attack class*.
    * **loadgen_recall_parity** -- the gate: at the gentlest load point
      (an offered rate the detector can sustain) no attack type may lose
      more than ``recall_tolerance`` of its closed-loop recall.
      ``parity_ok`` carries the verdict; ``speedup`` carries the worst
      per-type retention ratio, so an explicit floor gates retention.
    """
    from repro.cluster.loadgen import compile_scenario_trace, get_scenario
    from repro.core.cyberhd import CyberHD
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import ReplayConfig, TraceReplayer
    from repro.replay.replayer import per_attack_type_recall

    records: List[Dict[str, Any]] = []
    for name in scenarios:
        scenario = get_scenario(name)
        pipeline = DetectionPipeline(
            classifier=CyberHD(dim=dim, epochs=epochs, seed=seed)
        )
        start = time.perf_counter()
        pipeline.fit_packets(scenario.training_packets(n_flows=train_flows, seed=seed))
        train_seconds = time.perf_counter() - start
        trace = compile_scenario_trace(scenario, flows_scale=flows_scale, seed=seed + 1)

        closed = TraceReplayer(
            pipeline, ReplayConfig(mode="closed", window_size=window)
        ).replay(trace)
        closed_types = per_attack_type_recall(trace, closed.predictions)
        records.append(
            make_record(
                "loadgen_closed_loop",
                closed.wall_seconds,
                "float32",
                dim,
                closed.n_packets_served,
                dataset=name,
                flows=closed.n_flows_served,
                attack_flows=trace.n_attack_flows,
                packets_per_second=closed.packets_per_second,
                recall=closed.metrics["recall"],
                precision=closed.metrics["precision"],
                served_fraction=closed.metrics["served_fraction"],
                per_attack_recall={
                    label: entry["recall"]
                    for label, entry in sorted(closed_types.items())
                },
                train_seconds=train_seconds,
            )
        )

        curve: Dict[float, Dict[str, Dict[str, float]]] = {}
        for rate in rates:
            result = TraceReplayer(
                pipeline,
                ReplayConfig(
                    mode="open",
                    rate=float(rate),
                    window_size=window,
                    queue_capacity=2 * window,
                ),
            ).replay(trace)
            types = per_attack_type_recall(trace, result.predictions)
            curve[float(rate)] = types
            records.append(
                make_record(
                    "loadgen_load_point",
                    result.wall_seconds,
                    "float32",
                    dim,
                    result.n_packets_submitted,
                    dataset=name,
                    offered_rate=float(rate),
                    achieved_rate=result.packets_per_second,
                    dropped_packets=result.dropped_packets,
                    served_fraction=result.metrics["served_fraction"],
                    recall=result.metrics["recall"],
                    precision=result.metrics["precision"],
                    per_attack_recall={
                        label: entry["recall"]
                        for label, entry in sorted(types.items())
                    },
                )
            )

        # ---- the gate: gentlest load point vs the closed loop -------------
        gate_rate = min(curve)
        gate_types = curve[gate_rate]
        deltas: Dict[str, float] = {}
        retention = 1.0
        for label, entry in sorted(closed_types.items()):
            open_recall = gate_types.get(label, {}).get("recall", 0.0)
            deltas[label] = entry["recall"] - open_recall
            if entry["recall"] > 0:
                retention = min(retention, open_recall / entry["recall"])
        max_delta = max((max(0.0, d) for d in deltas.values()), default=0.0)
        records.append(
            make_record(
                "loadgen_recall_parity",
                0.0,
                "float32",
                dim,
                trace.n_flows,
                dataset=name,
                offered_rate=gate_rate,
                parity_ok=int(max_delta <= recall_tolerance),
                speedup=retention,
                max_recall_delta=max_delta,
                recall_delta_tolerance=recall_tolerance,
                per_attack_recall_delta=deltas,
                note=(
                    "per-type recall at the gentlest load point vs closed "
                    "loop; speedup carries the worst per-type retention"
                ),
            )
        )
    return records


def run_loadgen_benchmarks(
    scenario: Optional[str] = None,
    flows_scale: Optional[float] = None,
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite loadgen`` entry point.

    ``quick`` shrinks flow counts and drops the middle load point but keeps
    *every scenario*: the per-type parity gate is keyed per scenario, and a
    smoke that skipped one would silently stop gating it.  An explicit
    ``scenario`` narrows the run (exploration, not the gate).
    """
    scenarios: Sequence[str] = (
        (scenario,)
        if scenario is not None
        else ("ddos_burst", "port_scan_sweep", "low_and_slow_exfiltration")
    )
    if quick:
        return bench_loadgen(
            scenarios=scenarios,
            flows_scale=flows_scale if flows_scale is not None else 0.3,
            rates=(4_000.0, 150_000.0),
            dim=dim if dim is not None else 128,
            epochs=3,
            train_flows=250,
            window=256,
        )
    return bench_loadgen(
        scenarios=scenarios,
        flows_scale=flows_scale if flows_scale is not None else 1.0,
        dim=dim if dim is not None else 256,
    )


# -------------------------------------------------- SVM/MLP model baselines
BENCH_BASELINES_JSON_NAME = "BENCH_baselines.json"


def bench_model_baselines(
    dataset: str = "nsl_kdd",
    n_train: int = 4000,
    n_test: int = 1000,
    dim: int = 2048,
    epochs: int = 5,
    mlp_epochs: int = 30,
    svm_epochs: int = 30,
    accuracy_margin: float = 0.05,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """HDC vs the SVM/MLP baselines on one tabular dataset.

    The paper's efficiency pitch as a regression gate: the HDC model must
    train faster than each baseline (``baseline_train_speedup_*`` --
    machine-relative ratios, so they transfer across hosts) while staying
    within ``accuracy_margin`` of the best baseline's test accuracy
    (``baseline_accuracy_parity``; its ``speedup`` carries the HDC/best
    accuracy ratio).  Per-model ``baseline_model`` records are informative
    only.  Everything is deterministic given the seed -- all three learners
    are seeded numpy implementations -- so the parity bit is stable.
    """
    from repro.baselines.mlp import MLPClassifier
    from repro.baselines.svm import LinearSVM
    from repro.datasets.loaders import load_dataset

    ds = load_dataset(dataset, n_train=n_train, n_test=n_test, seed=seed)
    models = {
        "hdc": CyberHD(dim=dim, epochs=epochs, seed=seed),
        "svm": LinearSVM(epochs=svm_epochs, seed=seed),
        "mlp": MLPClassifier(hidden_layers=(128, 64), epochs=mlp_epochs, seed=seed),
    }
    fit_seconds: Dict[str, float] = {}
    predict_seconds: Dict[str, float] = {}
    accuracy: Dict[str, float] = {}
    records: List[Dict[str, Any]] = []
    for name, model in models.items():
        start = time.perf_counter()
        model.fit(ds.X_train, ds.y_train)
        fit_seconds[name] = time.perf_counter() - start
        model.predict(ds.X_test)  # warm any lazy encode paths
        start = time.perf_counter()
        predictions = model.predict(ds.X_test)
        predict_seconds[name] = max(time.perf_counter() - start, 1e-9)
        accuracy[name] = float(np.mean(predictions == ds.y_test))
        records.append(
            make_record(
                "baseline_model",
                fit_seconds[name],
                "float32",
                dim if name == "hdc" else 0,
                n_train,
                dataset=dataset,
                model=name,
                accuracy=accuracy[name],
                fit_seconds=fit_seconds[name],
                predict_seconds=predict_seconds[name],
                predict_flows_per_second=n_test / predict_seconds[name],
            )
        )
    for name in ("svm", "mlp"):
        records.append(
            make_record(
                f"baseline_train_speedup_{name}",
                fit_seconds["hdc"],
                "float32",
                dim,
                n_train,
                dataset=dataset,
                speedup=fit_seconds[name] / fit_seconds["hdc"],
                baseline_fit_seconds=fit_seconds[name],
                hdc_fit_seconds=fit_seconds["hdc"],
            )
        )
    best_baseline = max(accuracy["svm"], accuracy["mlp"])
    records.append(
        make_record(
            "baseline_accuracy_parity",
            0.0,
            "float32",
            dim,
            n_test,
            dataset=dataset,
            parity_ok=int(accuracy["hdc"] >= best_baseline - accuracy_margin),
            speedup=accuracy["hdc"] / max(best_baseline, 1e-9),
            hdc_accuracy=accuracy["hdc"],
            svm_accuracy=accuracy["svm"],
            mlp_accuracy=accuracy["mlp"],
            accuracy_margin=accuracy_margin,
            note="HDC test accuracy vs the best SVM/MLP baseline",
        )
    )
    return records


def run_baseline_benchmarks(
    dataset: str = "nsl_kdd",
    dim: Optional[int] = None,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """The ``bench --suite baselines`` entry point."""
    if quick:
        return bench_model_baselines(
            dataset=dataset,
            n_train=1200,
            n_test=400,
            dim=dim if dim is not None else 1024,
            epochs=5,
            mlp_epochs=10,
            svm_epochs=10,
        )
    return bench_model_baselines(
        dataset=dataset, dim=dim if dim is not None else 2048
    )


# ------------------------------------------------------- baseline regression
def diff_bench_payloads(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.2,
    floors: Optional[Dict[str, float]] = None,
) -> "tuple[bool, List[str]]":
    """Diff a fresh bench payload against a checked-in baseline.

    The comparison is deliberately machine-portable: absolute wall times are
    never compared (the baseline was produced on different hardware), only

    * **parity gates** -- every fresh record carrying a ``parity_ok`` field
      must report 1, unconditionally;
    * **relative speedups** -- for every op appearing exactly once in both
      payloads with a ``speedup`` field, the fresh ratio must reach
      ``tolerance * baseline`` (both sides measure current-vs-reference on
      *their own* machine, so the ratio transfers across hosts up to noise
      and workload-scale differences -- ``tolerance`` absorbs both);
    * **explicit floors** -- ``floors[op]`` requires the fresh ``speedup``
      of ``op`` to reach an absolute value (the bitpack smoke's
      packed-throughput floor).  The special key ``wall_speedup`` floors the
      ``wall_speedup`` field of records carrying one (the cluster suite's
      wall-clock gate) and is skipped with a logged reason when the fresh
      run's ``provenance.cpu_count`` is below the record's worker count --
      a time-sliced host cannot express the parallelism being gated.

    Returns ``(ok, report_lines)``.
    """

    def label(record: Dict[str, Any]) -> str:
        suffix = f" (D={record['D']})" if record.get("D") else ""
        return f"{record['op']}{suffix}"

    def speedup_records(records: Sequence[Dict[str, Any]]):
        return [r for r in records if "speedup" in r]

    def match(
        candidates: Sequence[Dict[str, Any]],
        reference: Dict[str, Any],
        reference_pool: Sequence[Dict[str, Any]],
    ):
        """The fresh record measuring the same operating point, if exactly one.

        Records are keyed by op.  When an op is measured at several
        dimensionalities (the bitpack kernel suite), only an exact-``D``
        fresh record may answer for a given baseline record -- comparing a
        D=4096 smoke against a D=8192 baseline would gate the wrong
        operating point.  A cross-``D`` match is allowed only when the op
        appears once on *both* sides: that is the quick-mode case where the
        whole workload legitimately shrinks (streaming at D=128 vs the
        D=256 baseline) and the loose tolerance absorbs the scale change.
        """
        same_op = [r for r in candidates if r["op"] == reference["op"]]
        exact = [r for r in same_op if r.get("D") == reference.get("D")]
        if len(exact) == 1:
            return exact[0]
        baseline_same_op = [r for r in reference_pool if r["op"] == reference["op"]]
        if len(same_op) == 1 and len(baseline_same_op) == 1:
            return same_op[0]
        return None

    fresh_records = list(fresh.get("records", []))
    baseline_records = list(baseline.get("records", []))
    lines: List[str] = []
    ok = True

    parity = [r for r in fresh_records if "parity_ok" in r]
    for record in parity:
        passed = int(record["parity_ok"]) == 1
        ok &= passed
        lines.append(
            f"[{'ok' if passed else 'FAIL'}] parity {record['op']} "
            f"{record.get('dataset', '')}: parity_ok={record['parity_ok']}"
        )
    # A parity op the baseline carries but the fresh run never emitted is a
    # silent loss of the correctness evidence, not a pass.
    fresh_parity_keys = {(r["op"], r.get("dataset")) for r in parity}
    for record in baseline_records:
        if "parity_ok" not in record:
            continue
        key = (record["op"], record.get("dataset"))
        if key not in fresh_parity_keys:
            ok = False
            lines.append(
                f"[FAIL] parity {record['op']} {record.get('dataset', '')}: "
                "record missing from fresh run"
            )

    fresh_speedups = speedup_records(fresh_records)
    compared = 0
    for base_record in speedup_records(baseline_records):
        fresh_record = match(fresh_speedups, base_record, baseline_records)
        if fresh_record is None:
            lines.append(f"[skip] speedup {label(base_record)}: not measured in fresh run")
            continue
        compared += 1
        required = float(base_record["speedup"]) * tolerance
        value = float(fresh_record["speedup"])
        passed = value >= required
        ok &= passed
        lines.append(
            f"[{'ok' if passed else 'FAIL'}] speedup {label(fresh_record)}: {value:.2f}x "
            f"(baseline {float(base_record['speedup']):.2f}x, "
            f"floor {required:.2f}x at tolerance {tolerance})"
        )
    cpu_count = (fresh.get("provenance") or {}).get("cpu_count")
    for op, floor in (floors or {}).items():
        if op == "wall_speedup":
            # Floor on the *wall-clock* cluster speedup rather than an op's
            # ``speedup`` field.  Wall speedup is host-bounded: with fewer
            # cores than workers the replicas time-slice one another and no
            # transport can beat the baseline, so the gate only binds where
            # the hardware can express the parallelism.
            matching = [r for r in fresh_speedups if "wall_speedup" in r]
            if not matching:
                ok = False
                lines.append(f"[FAIL] floor {op}: record missing from fresh run")
                continue
            for fresh_record in matching:
                workers = int(fresh_record.get("workers") or 0)
                if cpu_count is not None and workers and int(cpu_count) < workers:
                    lines.append(
                        f"[skip] floor {label(fresh_record)}: wall_speedup gate "
                        f"skipped, host has {cpu_count} cores < {workers} workers"
                    )
                    continue
                value = float(fresh_record["wall_speedup"])
                passed = value >= float(floor)
                ok &= passed
                lines.append(
                    f"[{'ok' if passed else 'FAIL'}] floor {label(fresh_record)} "
                    f"wall_speedup: {value:.2f}x (required {float(floor):.2f}x)"
                )
            continue
        matching = [r for r in fresh_speedups if r["op"] == op]
        if not matching:
            ok = False
            lines.append(f"[FAIL] floor {op}: record missing from fresh run")
            continue
        for fresh_record in matching:
            value = float(fresh_record["speedup"])
            passed = value >= float(floor)
            ok &= passed
            lines.append(
                f"[{'ok' if passed else 'FAIL'}] floor {label(fresh_record)}: "
                f"{value:.2f}x (required {float(floor):.2f}x)"
            )
    if not parity and compared == 0 and not floors:
        ok = False
        lines.append(
            "[FAIL] nothing compared: no parity records in the fresh run and "
            "no shared speedup ops with the baseline"
        )
    return ok, lines
