"""Performance benchmark harness for the HDC compute backend.

This module is the perf-regression baseline for the repository: it times the
hot-path primitives (encoding, scatter aggregation, similarity scoring, one
adaptive epoch) across dtypes, plus the end-to-end ``CyberHD.fit`` at the
paper-scale setting (``D = 500``, NSL-KDD-sized synthetic data), and emits a
machine-readable record list that gets written to ``BENCH_hdc_primitives.json``.

Two ways to run it:

* ``python -m repro bench`` -- the CLI entry point; prints a table and writes
  the JSON baseline.
* ``benchmarks/bench_hdc_primitives.py`` -- the pytest-benchmark suite, which
  reuses the same record format.

To keep the speedup claims honest the module carries *seed-equivalent*
reference implementations of the original float64 pipeline (``np.add.at``
scatters, per-batch norm recomputation with normalized operand copies, and a
full training-set re-encode after every regeneration step).  The
``fit_cyberhd`` records therefore measure the current pipeline against the
exact algorithm the repository started from, on the same machine and the
same workload.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro._version import __version__
from repro.core.config import CyberHDConfig
from repro.core.cyberhd import CyberHD
from repro.core.regeneration import (
    apply_regeneration,
    select_drop_dimensions,
    warm_start_regenerated,
)
from repro.hdc.backend import resolve_dtype, row_norms, segment_sum
from repro.hdc.encoders import RBFEncoder, LevelIDEncoder, make_encoder
from repro.hdc.similarity import cosine_similarity_matrix
from repro.core.trainer import adaptive_epoch, adaptive_one_pass_fit
from repro.utils.rng import ensure_rng

BENCH_JSON_NAME = "BENCH_hdc_primitives.json"


# ------------------------------------------------------------------ recording
def make_record(
    op: str,
    wall_time_s: float,
    dtype: str = "float64",
    D: int = 0,
    n: int = 0,
    **extra: Any,
) -> Dict[str, Any]:
    """One benchmark measurement in the shared schema."""
    record = {
        "op": op,
        "dtype": dtype,
        "D": int(D),
        "n": int(n),
        "wall_time_s": float(wall_time_s),
    }
    record.update(extra)
    return record


def write_bench_json(
    records: Sequence[Dict[str, Any]], path: Union[str, Path]
) -> Path:
    """Write benchmark records (plus environment metadata) as JSON."""
    path = Path(path)
    payload = {
        "schema": "repro-bench/1",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "records": list(records),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def _best_of(fn: Callable[[], Any], repeats: int) -> float:
    """Minimum wall time over ``repeats`` calls (minimum is the standard
    noise-robust estimator for microbenchmarks)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------- seed-equivalent reference path
def _legacy_cosine_matrix(queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """The original kernel: normalized float64 copies of both operands."""
    q = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    c = np.atleast_2d(np.asarray(classes, dtype=np.float64))
    qn = np.linalg.norm(q, axis=1, keepdims=True)
    cn = np.linalg.norm(c, axis=1, keepdims=True)
    qn = np.where(qn < 1e-12, 1.0, qn)
    cn = np.where(cn < 1e-12, 1.0, cn)
    return (q / qn) @ (c / cn).T


def _legacy_adaptive_one_pass_fit(H, y, n_classes, batch_size=256, rng=None):
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    classes = np.zeros((n_classes, H.shape[1]))
    gen = ensure_rng(rng)
    order = gen.permutation(H.shape[0])
    for start in range(0, H.shape[0], batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = _legacy_cosine_matrix(Hb, classes)
        pred = np.argmax(sims, axis=1)
        sim_true = sims[np.arange(idx.size), yb]
        np.add.at(classes, yb, (1.0 - sim_true)[:, None] * Hb)
        wrong = pred != yb
        if np.any(wrong):
            sim_pred = sims[wrong, pred[wrong]]
            np.add.at(classes, pred[wrong], -(1.0 - sim_pred)[:, None] * Hb[wrong])
    return classes


def _legacy_adaptive_epoch(classes, H, y, learning_rate, batch_size=256, rng=None):
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    n = H.shape[0]
    gen = ensure_rng(rng)
    order = gen.permutation(n)
    errors = 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = _legacy_cosine_matrix(Hb, classes)
        pred = np.argmax(sims, axis=1)
        wrong = pred != yb
        n_wrong = int(np.count_nonzero(wrong))
        errors += n_wrong
        if n_wrong == 0:
            continue
        Hw = Hb[wrong]
        yw = yb[wrong]
        pw = pred[wrong]
        sim_true = sims[wrong, yw]
        sim_pred = sims[wrong, pw]
        np.add.at(classes, yw, (learning_rate * (1.0 - sim_true))[:, None] * Hw)
        np.add.at(classes, pw, -(learning_rate * (1.0 - sim_pred))[:, None] * Hw)
    return errors, 1.0 - errors / n


def _legacy_level_id_encode(encoder: LevelIDEncoder, X: np.ndarray) -> np.ndarray:
    """The original per-feature Python loop over bound (ID * LEVEL) pairs."""
    level_idx = encoder._quantize_levels(np.asarray(X, dtype=np.float64))
    H = np.zeros((X.shape[0], encoder.dim))
    for f in range(encoder.in_features):
        H += np.asarray(encoder.id_vectors[f], dtype=np.float64) * np.asarray(
            encoder.level_vectors, dtype=np.float64
        )[level_idx[:, f]]
    return H


def legacy_fit_cyberhd(X: np.ndarray, y: np.ndarray, config: CyberHDConfig) -> np.ndarray:
    """Seed-equivalent ``CyberHD.fit``: float64, ``np.add.at`` scatters, and a
    **full** training-set re-encode after every regeneration step.

    Returns the trained class matrix (used to sanity-check the run did real
    work; callers time the call itself).
    """
    cfg = config.validate()
    rng = ensure_rng(cfg.seed)
    n_classes = int(np.max(y)) + 1
    encoder = make_encoder(
        cfg.encoder,
        in_features=X.shape[1],
        dim=cfg.dim,
        rng=rng,
        dtype=np.float64,
        **cfg.encoder_kwargs,
    )
    H = encoder.encode(X)
    classes = _legacy_adaptive_one_pass_fit(H, y, n_classes, cfg.batch_size, rng)
    for epoch in range(1, cfg.epochs + 1):
        _legacy_adaptive_epoch(classes, H, y, cfg.learning_rate, cfg.batch_size, rng)
        should_regen = (
            cfg.regeneration_rate > 0.0
            and epoch % cfg.regeneration_interval == 0
            and epoch < cfg.epochs
        )
        if should_regen:
            dims, _ = select_drop_dimensions(classes, cfg.regeneration_rate)
            if dims.size:
                apply_regeneration(classes, encoder, dims)
                H = encoder.encode(X)  # the full re-encode this PR eliminated
                warm_start_regenerated(classes, H, y, dims)
    return classes


# ----------------------------------------------------------------- workloads
def _primitive_workload(n: int, features: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(0.0, 1.0, size=(n, features))
    y = rng.integers(0, 5, size=n)
    return X, y


def _fit_workload(n: int, seed: int = 0):
    """NSL-KDD-sized synthetic training split (41 flow features)."""
    from repro.datasets.loaders import load_dataset

    ds = load_dataset("nsl_kdd", n_train=n, n_test=32, seed=seed)
    return ds.X_train, ds.y_train


# ---------------------------------------------------------------- benchmarks
def bench_primitives(
    dim: int = 500,
    n: int = 2000,
    features: int = 64,
    repeats: int = 3,
    dtypes: Sequence[str] = ("float32", "float64"),
) -> List[Dict[str, Any]]:
    """Time the HDC primitives across dtypes; returns benchmark records."""
    X, y = _primitive_workload(n, features)
    records: List[Dict[str, Any]] = []

    for dtype_name in dtypes:
        dtype = resolve_dtype(dtype_name)
        rbf = RBFEncoder(in_features=features, dim=dim, rng=0, dtype=dtype)
        records.append(
            make_record(
                "encode_rbf",
                _best_of(lambda: rbf.encode(X), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        level = LevelIDEncoder(in_features=features, dim=dim, rng=0, dtype=dtype)
        records.append(
            make_record(
                "encode_level_id",
                _best_of(lambda: level.encode(X), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        if dtype == np.float64:
            records.append(
                make_record(
                    "encode_level_id_loop",
                    _best_of(lambda: _legacy_level_id_encode(level, X), repeats),
                    "float64",
                    dim,
                    n,
                    note="seed-equivalent per-feature Python loop",
                )
            )

        H = rbf.encode(X)
        classes = adaptive_one_pass_fit(H, y, n_classes=5, rng=0)
        class_norms = row_norms(classes)
        query_norms = row_norms(H)
        records.append(
            make_record(
                "cosine_scores",
                _best_of(lambda: cosine_similarity_matrix(H, classes), repeats),
                dtype_name,
                dim,
                n,
            )
        )
        records.append(
            make_record(
                "cosine_scores_cached_norms",
                _best_of(
                    lambda: cosine_similarity_matrix(
                        H, classes, query_norms=query_norms, class_norms=class_norms
                    ),
                    repeats,
                ),
                dtype_name,
                dim,
                n,
            )
        )

        rows = H[:512]
        ids = y[:512].astype(np.int64)
        for method in ("add_at", "bincount", "matmul"):
            records.append(
                make_record(
                    f"scatter_{method}",
                    _best_of(lambda: segment_sum(rows, ids, 5, method=method), repeats),
                    dtype_name,
                    dim,
                    512,
                )
            )

        records.append(
            make_record(
                "adaptive_epoch",
                _best_of(
                    lambda: adaptive_epoch(
                        classes.copy(),
                        H,
                        y,
                        learning_rate=1.0,
                        rng=0,
                        query_norms=query_norms,
                        class_norms=class_norms.copy(),
                    ),
                    repeats,
                ),
                dtype_name,
                dim,
                n,
            )
        )
        if dtype == np.float64:
            records.append(
                make_record(
                    "adaptive_epoch_legacy",
                    _best_of(
                        lambda: _legacy_adaptive_epoch(
                            classes.copy(), H, y, learning_rate=1.0, rng=0
                        ),
                        repeats,
                    ),
                    "float64",
                    dim,
                    n,
                    note="seed-equivalent np.add.at + per-batch norms",
                )
            )
    return records


def bench_fit(
    dim: int = 500,
    n: int = 4000,
    epochs: int = 8,
    repeats: int = 2,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """End-to-end ``CyberHD.fit`` at paper scale: current backend vs seed.

    The two measurements run the same algorithm on the same synthetic
    NSL-KDD-sized workload; the ``fit_speedup`` record carries the ratio the
    acceptance gate reads.
    """
    X, y = _fit_workload(n, seed)
    base = dict(
        dim=dim,
        epochs=epochs,
        regeneration_rate=0.10,
        regeneration_interval=1,
        seed=seed,
    )

    def run_current():
        CyberHD(CyberHDConfig(dtype="float32", **base)).fit(X, y)

    def run_legacy():
        legacy_fit_cyberhd(
            np.asarray(X, dtype=np.float64),
            np.asarray(y, dtype=np.int64),
            CyberHDConfig(dtype="float64", **base),
        )

    current = _best_of(run_current, repeats)
    legacy = _best_of(run_legacy, repeats)
    records = [
        make_record("fit_cyberhd", current, "float32", dim, n, epochs=epochs),
        make_record(
            "fit_cyberhd_seed_equivalent",
            legacy,
            "float64",
            dim,
            n,
            epochs=epochs,
            note="float64 + np.add.at + full re-encode per regeneration",
        ),
        make_record(
            "fit_speedup",
            current,
            "float32",
            dim,
            n,
            speedup=legacy / current if current > 0 else float("inf"),
            baseline_wall_time_s=legacy,
        ),
    ]
    return records


def run_benchmarks(
    dim: int = 500,
    n_primitives: int = 2000,
    n_fit: int = 4000,
    epochs: int = 8,
    repeats: int = 3,
    quick: bool = False,
) -> List[Dict[str, Any]]:
    """Run the full harness (primitives + end-to-end fit)."""
    if quick:
        n_primitives, n_fit, epochs, repeats = 500, 800, 3, 1
    records = bench_primitives(dim=dim, n=n_primitives, repeats=repeats)
    records += bench_fit(dim=dim, n=n_fit, epochs=epochs, repeats=max(1, repeats - 1))
    return records


def format_table(records: Sequence[Dict[str, Any]]) -> str:
    """Plain-text table of benchmark records."""
    lines = [f"{'op':<32} {'dtype':<8} {'D':>6} {'n':>7} {'wall_time_s':>12}  extra"]
    lines.append("-" * len(lines[0]))
    for r in records:
        extra = ", ".join(
            f"{k}={v:.2f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in r.items()
            if k not in ("op", "dtype", "D", "n", "wall_time_s")
        )
        lines.append(
            f"{r['op']:<32} {r['dtype']:<8} {r['D']:>6} {r['n']:>7} "
            f"{r['wall_time_s']:>12.6f}  {extra}"
        )
    return "\n".join(lines)


__all__ = [
    "BENCH_JSON_NAME",
    "make_record",
    "write_bench_json",
    "bench_primitives",
    "bench_fit",
    "run_benchmarks",
    "format_table",
    "legacy_fit_cyberhd",
]
