"""Lightweight wall-clock timing used by the efficiency experiments."""

from __future__ import annotations

import time
from typing import Optional


class Timer:
    """Context-manager stopwatch.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self._elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self._elapsed = time.perf_counter() - self._start
            self._start = None

    def start(self) -> None:
        """Start (or restart) the stopwatch."""
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop the stopwatch and return the elapsed seconds."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = time.perf_counter() - self._start
        self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recent timed interval."""
        return self._elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timer(elapsed={self._elapsed:.6f}s)"
