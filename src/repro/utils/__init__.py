"""Shared utilities: RNG handling, validation and timing helpers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timing import Timer
from repro.utils.validation import (
    check_feature_count,
    check_fitted,
    check_labels,
    check_matrix,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rng",
    "Timer",
    "check_matrix",
    "check_labels",
    "check_fitted",
    "check_probability",
    "check_feature_count",
]
