"""Input validation helpers shared by every estimator in the package."""

from __future__ import annotations

from typing import Any, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError


def check_matrix(X: Any, name: str = "X") -> np.ndarray:
    """Validate and convert ``X`` to a 2-D float64 array.

    Raises
    ------
    ConfigurationError
        If ``X`` is not 2-D, is empty, or contains NaN/inf values.
    """
    arr = np.asarray(X, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    if not np.all(np.isfinite(arr)):
        raise ConfigurationError(f"{name} contains NaN or infinite values")
    return arr


def check_labels(y: Any, n_samples: int, name: str = "y") -> np.ndarray:
    """Validate ``y`` as a 1-D integer label vector of length ``n_samples``."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ConfigurationError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.shape[0] != n_samples:
        raise ConfigurationError(
            f"{name} has {arr.shape[0]} entries but X has {n_samples} rows"
        )
    if arr.dtype.kind not in "iu":
        if not np.all(np.equal(np.mod(arr.astype(np.float64), 1), 0)):
            raise ConfigurationError(f"{name} must contain integer class labels")
        arr = arr.astype(np.int64)
    return arr.astype(np.int64)


def check_fitted(obj: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``obj.attribute`` exists and is set."""
    if getattr(obj, attribute, None) is None:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted yet; call fit() before predicting"
        )


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]``."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_feature_count(X: np.ndarray, expected: int, name: str = "X") -> None:
    """Check that ``X`` has ``expected`` columns."""
    if X.shape[1] != expected:
        raise ConfigurationError(
            f"{name} has {X.shape[1]} features but the model was fitted with {expected}"
        )


def train_test_indices(
    n_samples: int,
    test_fraction: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return shuffled (train, test) index arrays for an ``n_samples`` dataset."""
    check_probability(test_fraction, "test_fraction")
    order = rng.permutation(n_samples)
    n_test = int(round(n_samples * test_fraction))
    return order[n_test:], order[:n_test]
