"""Random-number-generator helpers.

Every stochastic component in the package accepts either an integer seed, an
existing :class:`numpy.random.Generator` or ``None``.  ``ensure_rng``
normalizes all three into a ``Generator`` so that experiments are exactly
reproducible when a seed is supplied while still being convenient to call
ad hoc.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS-entropy generator), an ``int`` seed, or an existing
        ``Generator`` which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(f"seed must be None, int or numpy Generator, got {type(seed)!r}")


def spawn_rng(rng: np.random.Generator, count: int) -> list:
    """Split ``rng`` into ``count`` statistically independent child generators.

    Used by components that need several independent random streams (for
    example, one per dataset in a sweep) without consuming each other's state.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
