"""Flow assembly: grouping packets into bidirectional flows.

A *flow* is identified by the canonical 5-tuple (both directions map to the
same flow).  The :class:`FlowTable` ingests time-ordered packets, keeps active
flows, and expires them on an idle timeout -- the same mechanism CICFlowMeter
uses to produce the flow records behind the CIC datasets.

Two ingestion paths share identical semantics:

``FlowTable.add_packet``
    The scalar path: one packet at a time, used by interactive pushes.

``FlowTable.add_packets``
    The columnar path: a time-ordered batch is factorized into per-flow
    packet groups in a single Python pass, then every per-flow statistic
    (byte/packet counters, length moments, inter-arrival moments, TCP flag
    counts, port diversity) is filled with array reductions -- no per-packet
    Python dict churn on the hot path.  Flow records store *running
    aggregates* (sums, sums of squares, extrema) rather than per-packet
    ``List[int]`` buffers, so a record costs O(1) memory regardless of flow
    length and batch aggregation is a handful of ``bincount`` calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hdc.backend import segment_min_max
from repro.nids.packets import Packet, TCP_FLAGS

#: Batches smaller than this are cheaper through the scalar path (array
#: setup costs more than it saves).
_COLUMNAR_MIN_BATCH = 32


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional flow identifier.

    The canonical form orders the two endpoints so that packets of both
    directions hash to the same key.
    """

    ip_a: str
    port_a: int
    ip_b: str
    port_b: int
    protocol: str

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Build the canonical key for ``packet``."""
        forward = (packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port)
        backward = (packet.dst_ip, packet.dst_port, packet.src_ip, packet.src_port)
        a, b = (forward, backward) if forward <= backward else (backward, forward)
        return cls(ip_a=a[0], port_a=a[1], ip_b=a[2], port_b=a[3], protocol=packet.protocol)

    @property
    def token(self) -> str:
        """Canonical string form of the key (direction-independent).

        The same token identifies a flow everywhere it travels: the shard
        router hashes it, the replay subsystem joins serving-path
        predictions against golden offline predictions on it, and worker
        processes ship it back across the cluster wire format.
        """
        return f"{self.ip_a}:{self.port_a}|{self.ip_b}:{self.port_b}|{self.protocol}"


@dataclass
class FlowRecord:
    """Aggregated statistics of one bidirectional flow.

    The *forward* direction is defined by the first packet seen.  All
    statistics are running aggregates (counts, sums, sums of squares,
    extrema), so folding a packet -- or a whole pre-reduced packet batch --
    into the record is O(1); the feature extractor derives means and standard
    deviations from the moments.  Packets are assumed to arrive in time
    order (the :class:`FlowTable` contract), which is what makes the
    inter-arrival aggregates equal to the sorted-timestamp differences the
    original list-based implementation computed.
    """

    key: FlowKey
    initiator_ip: str
    initiator_port: int
    start_time: float
    end_time: float
    label: str = "benign"
    fwd_packets: int = 0
    bwd_packets: int = 0
    fwd_bytes: int = 0
    bwd_bytes: int = 0
    fwd_len_sumsq: float = 0.0
    fwd_len_min: float = math.inf
    fwd_len_max: float = -math.inf
    bwd_len_sumsq: float = 0.0
    iat_count: int = 0
    iat_sum: float = 0.0
    iat_sumsq: float = 0.0
    iat_min: float = math.inf
    iat_max: float = -math.inf
    last_packet_time: float = 0.0
    syn_count: int = 0
    fin_count: int = 0
    rst_count: int = 0
    psh_count: int = 0
    ack_count: int = 0
    urg_count: int = 0
    distinct_dst_ports: Set[int] = field(default_factory=set)

    # ------------------------------------------------------------------- API
    def add_packet(self, packet: Packet) -> None:
        """Fold ``packet`` into the flow statistics."""
        is_forward = (
            packet.src_ip == self.initiator_ip and packet.src_port == self.initiator_port
        )
        if self.total_packets > 0:
            iat = packet.timestamp - self.last_packet_time
            self.iat_count += 1
            self.iat_sum += iat
            self.iat_sumsq += iat * iat
            if iat < self.iat_min:
                self.iat_min = iat
            if iat > self.iat_max:
                self.iat_max = iat
        self.last_packet_time = packet.timestamp
        self.end_time = max(self.end_time, packet.timestamp)
        length = packet.length
        if is_forward:
            self.fwd_packets += 1
            self.fwd_bytes += length
            self.fwd_len_sumsq += float(length) * length
            if length < self.fwd_len_min:
                self.fwd_len_min = length
            if length > self.fwd_len_max:
                self.fwd_len_max = length
            self.distinct_dst_ports.add(packet.dst_port)
        else:
            self.bwd_packets += 1
            self.bwd_bytes += length
            self.bwd_len_sumsq += float(length) * length
        if packet.protocol == "tcp":
            flags = packet.tcp_flags
            self.syn_count += bool(flags & TCP_FLAGS["SYN"])
            self.fin_count += bool(flags & TCP_FLAGS["FIN"])
            self.rst_count += bool(flags & TCP_FLAGS["RST"])
            self.psh_count += bool(flags & TCP_FLAGS["PSH"])
            self.ack_count += bool(flags & TCP_FLAGS["ACK"])
            self.urg_count += bool(flags & TCP_FLAGS["URG"])
        # A flow carrying any attack packet is labeled with that attack.
        if packet.label != "benign" and self.label == "benign":
            self.label = packet.label

    @property
    def duration(self) -> float:
        """Flow duration in seconds (0 for single-packet flows)."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def total_packets(self) -> int:
        """Total packets in both directions."""
        return self.fwd_packets + self.bwd_packets

    @property
    def total_bytes(self) -> int:
        """Total bytes in both directions."""
        return self.fwd_bytes + self.bwd_bytes

    @classmethod
    def from_first_packet(cls, packet: Packet) -> "FlowRecord":
        """Start a new flow record from its first packet."""
        record = cls(
            key=FlowKey.from_packet(packet),
            initiator_ip=packet.src_ip,
            initiator_port=packet.src_port,
            start_time=packet.timestamp,
            end_time=packet.timestamp,
        )
        record.add_packet(packet)
        return record


class FlowTable:
    """Assembles packets into flows with an idle-timeout expiry policy.

    Parameters
    ----------
    idle_timeout:
        A flow is expired (emitted) once no packet has been seen for this many
        seconds.
    max_flow_duration:
        Long-lived flows are force-expired after this duration so streaming
        detection does not wait forever.
    shard_guard:
        Optional ownership predicate ``FlowKey -> bool``.  In sharded cluster
        serving each flow's state must live on exactly one worker (the
        router's invariant); a table owned by one shard installs its guard
        here and a misrouted packet -- which would silently split one flow's
        state across two replicas -- raises :class:`ConfigurationError`
        instead.  Checked once per flow key, not per packet.
    """

    def __init__(
        self,
        idle_timeout: float = 5.0,
        max_flow_duration: float = 120.0,
        shard_guard: Optional[Callable[["FlowKey"], bool]] = None,
    ):
        if idle_timeout <= 0 or max_flow_duration <= 0:
            raise ConfigurationError("timeouts must be positive")
        self.idle_timeout = float(idle_timeout)
        self.max_flow_duration = float(max_flow_duration)
        self.shard_guard = shard_guard
        self._active: Dict[FlowKey, FlowRecord] = {}

    # ------------------------------------------------------------------- API
    @property
    def active_flows(self) -> int:
        """Number of currently active (unexpired) flows."""
        return len(self._active)

    def active_keys(self) -> List[FlowKey]:
        """Keys of the currently active flows (for liveness watermarks)."""
        return list(self._active.keys())

    def add_packet(self, packet: Packet) -> List[FlowRecord]:
        """Ingest one packet; returns any flows expired by the packet's timestamp."""
        expired = self._expire(packet.timestamp)
        key = FlowKey.from_packet(packet)
        record = self._active.get(key)
        if record is None:
            self._check_ownership(key)
            self._active[key] = FlowRecord.from_first_packet(packet)
        else:
            record.add_packet(packet)
        return expired

    def add_packets(self, packets: Sequence[Packet]) -> List[FlowRecord]:
        """Ingest a time-ordered packet batch; returns flows expired along the way.

        Large batches take the columnar path: per-flow statistics are filled
        with array reductions over the whole batch instead of per-packet
        Python updates.  The returned flow set is identical to feeding the
        packets one at a time through :meth:`add_packet` (ordering of the
        returned list may differ).
        """
        packets = list(packets)
        if len(packets) < _COLUMNAR_MIN_BATCH:
            return self._add_packets_scalar(packets)
        return self._add_packets_columnar(packets)

    def flush(self) -> List[FlowRecord]:
        """Expire and return all remaining active flows (end of capture)."""
        flows = list(self._active.values())
        self._active.clear()
        return flows

    # ------------------------------------------------------------- internals
    def _check_ownership(self, key: FlowKey) -> None:
        if self.shard_guard is not None and not self.shard_guard(key):
            raise ConfigurationError(
                f"flow {key} does not belong to this table's shard; a misrouted "
                "packet would split one flow's state across worker replicas"
            )

    def _add_packets_scalar(self, packets: List[Packet]) -> List[FlowRecord]:
        completed: List[FlowRecord] = []
        for packet in packets:
            completed.extend(self.add_packet(packet))
        return completed

    def _expire(self, now: float) -> List[FlowRecord]:
        expired: List[FlowRecord] = []
        stale_keys = [
            key
            for key, record in self._active.items()
            if (now - record.end_time) > self.idle_timeout
            or (now - record.start_time) > self.max_flow_duration
        ]
        for key in stale_keys:
            expired.append(self._active.pop(key))
        return expired

    def _fold_key_scalar(self, key: FlowKey, packets: List[Packet]) -> List[FlowRecord]:
        """Scalar fold of one key's packets, without touching other flows.

        Used by the columnar path for the rare keys that need sequential
        duration splitting (a segment overrunning ``max_flow_duration``
        restarts the flow mid-stream, which has a loop-carried dependency).
        """
        completed: List[FlowRecord] = []
        record = self._active.pop(key, None)
        for packet in packets:
            if record is not None and (
                (packet.timestamp - record.end_time) > self.idle_timeout
                or (packet.timestamp - record.start_time) > self.max_flow_duration
            ):
                completed.append(record)
                record = None
            if record is None:
                record = FlowRecord.from_first_packet(packet)
            else:
                record.add_packet(packet)
        if record is not None:
            self._active[key] = record
        return completed

    def _add_packets_columnar(self, packets: List[Packet]) -> List[FlowRecord]:
        n = len(packets)

        # ---- pass 1: columnarize fields and factorize flow keys -----------
        slot_of: Dict[Tuple[str, int, str, int, str], int] = {}
        keys: List[Tuple[str, int, str, int, str]] = []
        slots = np.empty(n, dtype=np.int64)
        ts = np.empty(n, dtype=np.float64)
        lengths = np.empty(n, dtype=np.float64)
        flags = np.empty(n, dtype=np.int64)
        dports = np.empty(n, dtype=np.int64)
        sports = np.empty(n, dtype=np.int64)
        sips: List[str] = []
        labels: List[str] = []
        for i, p in enumerate(packets):
            forward = (p.src_ip, p.src_port, p.dst_ip, p.dst_port)
            backward = (p.dst_ip, p.dst_port, p.src_ip, p.src_port)
            a = forward if forward <= backward else backward
            kt = (a[0], a[1], a[2], a[3], p.protocol)
            slot = slot_of.setdefault(kt, len(keys))
            if slot == len(keys):
                keys.append(kt)
            slots[i] = slot
            ts[i] = p.timestamp
            lengths[i] = p.length
            flags[i] = p.tcp_flags if p.protocol == "tcp" else 0
            dports[i] = p.dst_port
            sports[i] = p.src_port
            sips.append(p.src_ip)
            labels.append(p.label)

        flow_keys = [FlowKey(*kt) for kt in keys]
        return self._ingest_columns(
            slots=slots,
            ts=ts,
            lengths=lengths,
            flags=flags,
            dports=dports,
            sports=sports,
            sips=sips,
            labels=labels,
            flow_keys=flow_keys,
            packets_provider=lambda: packets,
        )

    def add_frame(self, frame) -> List[FlowRecord]:
        """Ingest a columnar transport frame (``repro.cluster.ring``).

        The frame already carries the exact column set pass 1 of the
        columnar path would build from ``Packet`` objects -- the whole
        per-packet Python loop the cluster worker used to pay per batch
        disappears.  ``frame`` is duck-typed (``columns()``/``to_packets()``
        /``n_packets``) so this module stays import-free of the transport.
        The result is identical to ``add_packets(frame.to_packets())``.
        """
        if frame.n_packets < _COLUMNAR_MIN_BATCH:
            return self._add_packets_scalar(frame.to_packets())
        cols = frame.columns()
        return self._ingest_columns(
            slots=cols["slots"],
            ts=cols["ts"],
            lengths=cols["lengths"],
            flags=cols["flags"],
            dports=cols["dports"],
            sports=cols["sports"],
            sips=cols["sips"],
            labels=cols["labels"],
            flow_keys=cols["flow_keys"],
            packets_provider=frame.to_packets,
        )

    def _ingest_columns(
        self,
        slots: np.ndarray,
        ts: np.ndarray,
        lengths: np.ndarray,
        flags: np.ndarray,
        dports: np.ndarray,
        sports: np.ndarray,
        sips,
        labels,
        flow_keys: List[FlowKey],
        packets_provider,
    ) -> List[FlowRecord]:
        """The vectorized ingestion core shared by packets and frames.

        ``slots`` factorizes packets onto ``flow_keys`` (first-seen order);
        ``packets_provider`` materializes the batch as ``Packet`` objects
        only for the rare fallbacks (non-monotonic timestamps, duration
        overrun) that need the sequential reference path.
        """
        n = int(ts.size)
        idle = self.idle_timeout
        max_dur = self.max_flow_duration

        # The columnar semantics rely on time-ordered input (the documented
        # FlowTable contract); fall back to the scalar path otherwise.
        if np.any(np.diff(ts) < 0):
            return self._add_packets_scalar(packets_provider())

        n_slots = len(flow_keys)
        if self.shard_guard is not None:
            # Keys already active were validated when their flow was created;
            # only new keys pay the ownership check (once per flow, as the
            # class docstring promises -- not once per batch).
            for flow_key in flow_keys:
                if flow_key not in self._active:
                    self._check_ownership(flow_key)

        # ---- group by flow, preserving time order within each flow --------
        order = np.argsort(slots, kind="stable")
        g_slot = slots[order]
        g_ts = ts[order]
        slot_first = np.r_[True, g_slot[1:] != g_slot[:-1]]
        gap = np.empty(n, dtype=np.float64)
        gap[0] = np.inf
        gap[1:] = g_ts[1:] - g_ts[:-1]
        gap[slot_first] = np.inf

        # ---- merge-with-active decisions ----------------------------------
        slot_start_pos = np.flatnonzero(slot_first)
        merged_record: List[Optional[FlowRecord]] = [None] * n_slots
        completed: List[FlowRecord] = []
        for pos in slot_start_pos:
            j = int(g_slot[pos])
            record = self._active.get(flow_keys[j])
            if record is None:
                continue
            t0 = g_ts[pos]
            if (t0 - record.end_time) <= idle and (t0 - record.start_time) <= max_dur:
                merged_record[j] = record
                gap[pos] = t0 - record.last_packet_time
            else:
                # The active flow is superseded by this batch's first packet.
                completed.append(self._active.pop(flow_keys[j]))

        # ---- candidate segments (gap splits) ------------------------------
        def derive_segments(g_slot, g_ts, gap):
            """Segment structure for grouped arrays whose ``gap`` already
            carries merge-bridge values at merged slot firsts.  Segment 0 of
            a slot whose active record merges continues that record (its
            start time is the record's, and it is flagged in ``seg_merge``)."""
            slot_first = np.r_[True, g_slot[1:] != g_slot[:-1]]
            seg_break = slot_first | (gap > idle)
            seg = np.cumsum(seg_break) - 1
            seg_start_pos = np.flatnonzero(seg_break)
            seg_end_pos = np.r_[seg_start_pos[1:] - 1, g_ts.size - 1]
            seg_slot = g_slot[seg_start_pos]
            seg_merge = np.zeros(seg_start_pos.size, dtype=bool)
            seg_start_time = g_ts[seg_start_pos].copy()
            for s in np.flatnonzero(slot_first[seg_start_pos]):
                record = merged_record[int(seg_slot[s])]
                if record is not None:
                    seg_merge[s] = True
                    seg_start_time[s] = record.start_time
            return seg_break, seg, seg_start_pos, seg_end_pos, seg_slot, seg_merge, seg_start_time

        seg_break, seg, seg_start_pos, seg_end_pos, seg_slot, seg_merge, seg_start_time = (
            derive_segments(g_slot, g_ts, gap)
        )
        seg_t0 = g_ts[seg_start_pos]
        seg_t1 = g_ts[seg_end_pos]
        n_seg = seg_start_pos.size

        # ---- duration-overrun slots take the scalar fold ------------------
        overrun = (seg_t1 - seg_start_time) > max_dur
        if np.any(overrun):
            packets = packets_provider()
            bad_slots = set(int(j) for j in np.unique(seg_slot[overrun]))
            keep = ~np.isin(g_slot, list(bad_slots))
            for j in sorted(bad_slots):
                key = flow_keys[j]
                record = merged_record[j]
                if record is not None:
                    # _fold_key_scalar resumes from the active record.
                    self._active[key] = record
                slot_packets = [packets[i] for i in order[g_slot == j]]
                completed.extend(self._fold_key_scalar(key, slot_packets))
            if not np.any(keep):
                completed.extend(self._expire(float(ts[-1])))
                return completed
            # Restrict the columnar arrays to the surviving slots and
            # re-derive.  Whole slots are removed together, so gaps
            # (including merge-bridge values at slot firsts) survive the
            # masking unchanged.
            g_slot = g_slot[keep]
            g_ts = g_ts[keep]
            order = order[keep]
            gap = gap[keep]
            seg_break, seg, seg_start_pos, seg_end_pos, seg_slot, seg_merge, _ = (
                derive_segments(g_slot, g_ts, gap)
            )
            seg_t0 = g_ts[seg_start_pos]
            seg_t1 = g_ts[seg_end_pos]
            n_seg = seg_start_pos.size

        n_kept = g_ts.size

        # ---- per-packet derived arrays ------------------------------------
        g_len = lengths[order]
        g_flags = flags[order]
        g_dport = dports[order]
        g_sport = sports[order]
        g_sip = np.asarray(sips, dtype=object)[order]
        g_label = np.asarray(labels, dtype=object)[order]

        # Direction: forward packets match the segment initiator.
        init_ip = np.empty(n_seg, dtype=object)
        init_port = np.empty(n_seg, dtype=np.int64)
        for s in range(n_seg):
            if seg_merge[s]:
                record = merged_record[int(seg_slot[s])]
                init_ip[s] = record.initiator_ip
                init_port[s] = record.initiator_port
            else:
                pos = seg_start_pos[s]
                init_ip[s] = g_sip[pos]
                init_port[s] = g_sport[pos]
        seg_sizes = np.r_[seg_start_pos[1:], n_kept] - seg_start_pos
        fwd = (g_sip == np.repeat(init_ip, seg_sizes)) & (
            g_sport == np.repeat(init_port, seg_sizes)
        )

        # Inter-arrival times: every non-first packet of a segment, plus the
        # bridge from a merged record's last packet to the segment's first.
        iat = gap.copy()
        iat_valid = ~seg_break
        for s in np.flatnonzero(seg_merge):
            pos = seg_start_pos[s]
            iat_valid[pos] = True
            # gap[pos] already holds t0 - last_packet_time from the merge pass

        # ---- array reductions into per-segment aggregates -----------------
        fwd_seg = seg[fwd]
        bwd_seg = seg[~fwd]
        fwd_len = g_len[fwd]
        bwd_len = g_len[~fwd]
        agg_fwd_packets = np.bincount(fwd_seg, minlength=n_seg).astype(np.int64)
        agg_bwd_packets = np.bincount(bwd_seg, minlength=n_seg).astype(np.int64)
        agg_fwd_bytes = np.bincount(fwd_seg, weights=fwd_len, minlength=n_seg)
        agg_bwd_bytes = np.bincount(bwd_seg, weights=bwd_len, minlength=n_seg)
        agg_fwd_sumsq = np.bincount(fwd_seg, weights=fwd_len * fwd_len, minlength=n_seg)
        agg_bwd_sumsq = np.bincount(bwd_seg, weights=bwd_len * bwd_len, minlength=n_seg)
        agg_fwd_min, agg_fwd_max = segment_min_max(fwd_len, fwd_seg, n_seg)

        iat_seg = seg[iat_valid]
        iat_vals = iat[iat_valid]
        agg_iat_count = np.bincount(iat_seg, minlength=n_seg).astype(np.int64)
        agg_iat_sum = np.bincount(iat_seg, weights=iat_vals, minlength=n_seg)
        agg_iat_sumsq = np.bincount(iat_seg, weights=iat_vals * iat_vals, minlength=n_seg)
        agg_iat_min, agg_iat_max = segment_min_max(iat_vals, iat_seg, n_seg)

        flag_counts = {}
        for name, bit in TCP_FLAGS.items():
            flag_counts[name] = np.bincount(
                seg, weights=((g_flags & bit) != 0).astype(np.float64), minlength=n_seg
            ).astype(np.int64)

        # Distinct destination ports of forward packets, per segment (ports
        # fit in 16 bits, so (segment, port) pairs pack into one integer).
        port_pairs = np.unique(fwd_seg * (1 << 17) + g_dport[fwd])
        ports_per_seg: Dict[int, np.ndarray] = {}
        if port_pairs.size:
            pair_seg = port_pairs >> 17
            pair_port = port_pairs & ((1 << 17) - 1)
            splits = np.flatnonzero(np.diff(pair_seg)) + 1
            for sid, arr in zip(pair_seg[np.r_[0, splits]], np.split(pair_port, splits)):
                ports_per_seg[int(sid)] = arr

        # First attack label per segment (if any).
        attack_pos = np.flatnonzero(g_label != "benign")
        first_attack = np.full(n_seg, n_kept, dtype=np.int64)
        if attack_pos.size:
            np.minimum.at(first_attack, seg[attack_pos], attack_pos)

        # ---- build / update flow records ----------------------------------
        slot_last_seg = {}
        for s in range(n_seg):
            slot_last_seg[int(seg_slot[s])] = s
        for s in range(n_seg):
            j = int(seg_slot[s])
            label = "benign"
            if first_attack[s] < n_kept:
                label = str(g_label[first_attack[s]])
            ports = ports_per_seg.get(s)
            if seg_merge[s]:
                record = merged_record[j]
                record.end_time = max(record.end_time, float(seg_t1[s]))
                record.last_packet_time = float(seg_t1[s])
                record.fwd_packets += int(agg_fwd_packets[s])
                record.bwd_packets += int(agg_bwd_packets[s])
                record.fwd_bytes += int(agg_fwd_bytes[s])
                record.bwd_bytes += int(agg_bwd_bytes[s])
                record.fwd_len_sumsq += float(agg_fwd_sumsq[s])
                record.bwd_len_sumsq += float(agg_bwd_sumsq[s])
                record.fwd_len_min = min(record.fwd_len_min, float(agg_fwd_min[s]))
                record.fwd_len_max = max(record.fwd_len_max, float(agg_fwd_max[s]))
                record.iat_count += int(agg_iat_count[s])
                record.iat_sum += float(agg_iat_sum[s])
                record.iat_sumsq += float(agg_iat_sumsq[s])
                record.iat_min = min(record.iat_min, float(agg_iat_min[s]))
                record.iat_max = max(record.iat_max, float(agg_iat_max[s]))
                record.syn_count += int(flag_counts["SYN"][s])
                record.fin_count += int(flag_counts["FIN"][s])
                record.rst_count += int(flag_counts["RST"][s])
                record.psh_count += int(flag_counts["PSH"][s])
                record.ack_count += int(flag_counts["ACK"][s])
                record.urg_count += int(flag_counts["URG"][s])
                if ports is not None:
                    record.distinct_dst_ports.update(int(p) for p in ports)
                if label != "benign" and record.label == "benign":
                    record.label = label
            else:
                record = FlowRecord(
                    key=flow_keys[j],
                    initiator_ip=str(init_ip[s]),
                    initiator_port=int(init_port[s]),
                    start_time=float(seg_t0[s]),
                    end_time=float(seg_t1[s]),
                    label=label,
                    fwd_packets=int(agg_fwd_packets[s]),
                    bwd_packets=int(agg_bwd_packets[s]),
                    fwd_bytes=int(agg_fwd_bytes[s]),
                    bwd_bytes=int(agg_bwd_bytes[s]),
                    fwd_len_sumsq=float(agg_fwd_sumsq[s]),
                    fwd_len_min=float(agg_fwd_min[s]),
                    fwd_len_max=float(agg_fwd_max[s]),
                    bwd_len_sumsq=float(agg_bwd_sumsq[s]),
                    iat_count=int(agg_iat_count[s]),
                    iat_sum=float(agg_iat_sum[s]),
                    iat_sumsq=float(agg_iat_sumsq[s]),
                    iat_min=float(agg_iat_min[s]),
                    iat_max=float(agg_iat_max[s]),
                    last_packet_time=float(seg_t1[s]),
                    syn_count=int(flag_counts["SYN"][s]),
                    fin_count=int(flag_counts["FIN"][s]),
                    rst_count=int(flag_counts["RST"][s]),
                    psh_count=int(flag_counts["PSH"][s]),
                    ack_count=int(flag_counts["ACK"][s]),
                    urg_count=int(flag_counts["URG"][s]),
                    distinct_dst_ports=set(int(p) for p in ports) if ports is not None else set(),
                )
            if slot_last_seg[j] == s:
                self._active[flow_keys[j]] = record
            else:
                # A later packet of the same key superseded this segment.
                completed.append(record)

        # ---- batch-end expiry (the last packet's arrival time) ------------
        completed.extend(self._expire(float(ts[-1])))
        return completed
