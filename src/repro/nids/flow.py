"""Flow assembly: grouping packets into bidirectional flows.

A *flow* is identified by the canonical 5-tuple (both directions map to the
same flow).  The :class:`FlowTable` ingests time-ordered packets, keeps active
flows, and expires them on an idle timeout -- the same mechanism CICFlowMeter
uses to produce the flow records behind the CIC datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.nids.packets import Packet, TCP_FLAGS


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional flow identifier.

    The canonical form orders the two endpoints so that packets of both
    directions hash to the same key.
    """

    ip_a: str
    port_a: int
    ip_b: str
    port_b: int
    protocol: str

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        """Build the canonical key for ``packet``."""
        forward = (packet.src_ip, packet.src_port, packet.dst_ip, packet.dst_port)
        backward = (packet.dst_ip, packet.dst_port, packet.src_ip, packet.src_port)
        a, b = (forward, backward) if forward <= backward else (backward, forward)
        return cls(ip_a=a[0], port_a=a[1], ip_b=a[2], port_b=a[3], protocol=packet.protocol)


@dataclass
class FlowRecord:
    """Aggregated statistics of one bidirectional flow.

    The *forward* direction is defined by the first packet seen.
    """

    key: FlowKey
    initiator_ip: str
    initiator_port: int
    start_time: float
    end_time: float
    label: str = "benign"
    fwd_packets: int = 0
    bwd_packets: int = 0
    fwd_bytes: int = 0
    bwd_bytes: int = 0
    fwd_lengths: List[int] = field(default_factory=list)
    bwd_lengths: List[int] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)
    syn_count: int = 0
    fin_count: int = 0
    rst_count: int = 0
    psh_count: int = 0
    ack_count: int = 0
    urg_count: int = 0
    distinct_dst_ports: set = field(default_factory=set)

    # ------------------------------------------------------------------- API
    def add_packet(self, packet: Packet) -> None:
        """Fold ``packet`` into the flow statistics."""
        is_forward = (
            packet.src_ip == self.initiator_ip and packet.src_port == self.initiator_port
        )
        self.end_time = max(self.end_time, packet.timestamp)
        self.timestamps.append(packet.timestamp)
        if is_forward:
            self.fwd_packets += 1
            self.fwd_bytes += packet.length
            self.fwd_lengths.append(packet.length)
            self.distinct_dst_ports.add(packet.dst_port)
        else:
            self.bwd_packets += 1
            self.bwd_bytes += packet.length
            self.bwd_lengths.append(packet.length)
        if packet.protocol == "tcp":
            self.syn_count += bool(packet.tcp_flags & TCP_FLAGS["SYN"])
            self.fin_count += bool(packet.tcp_flags & TCP_FLAGS["FIN"])
            self.rst_count += bool(packet.tcp_flags & TCP_FLAGS["RST"])
            self.psh_count += bool(packet.tcp_flags & TCP_FLAGS["PSH"])
            self.ack_count += bool(packet.tcp_flags & TCP_FLAGS["ACK"])
            self.urg_count += bool(packet.tcp_flags & TCP_FLAGS["URG"])
        # A flow carrying any attack packet is labeled with that attack.
        if packet.label != "benign" and self.label == "benign":
            self.label = packet.label

    @property
    def duration(self) -> float:
        """Flow duration in seconds (0 for single-packet flows)."""
        return max(0.0, self.end_time - self.start_time)

    @property
    def total_packets(self) -> int:
        """Total packets in both directions."""
        return self.fwd_packets + self.bwd_packets

    @property
    def total_bytes(self) -> int:
        """Total bytes in both directions."""
        return self.fwd_bytes + self.bwd_bytes

    @classmethod
    def from_first_packet(cls, packet: Packet) -> "FlowRecord":
        """Start a new flow record from its first packet."""
        record = cls(
            key=FlowKey.from_packet(packet),
            initiator_ip=packet.src_ip,
            initiator_port=packet.src_port,
            start_time=packet.timestamp,
            end_time=packet.timestamp,
        )
        record.add_packet(packet)
        return record


class FlowTable:
    """Assembles packets into flows with an idle-timeout expiry policy.

    Parameters
    ----------
    idle_timeout:
        A flow is expired (emitted) once no packet has been seen for this many
        seconds.
    max_flow_duration:
        Long-lived flows are force-expired after this duration so streaming
        detection does not wait forever.
    """

    def __init__(self, idle_timeout: float = 5.0, max_flow_duration: float = 120.0):
        if idle_timeout <= 0 or max_flow_duration <= 0:
            raise ConfigurationError("timeouts must be positive")
        self.idle_timeout = float(idle_timeout)
        self.max_flow_duration = float(max_flow_duration)
        self._active: Dict[FlowKey, FlowRecord] = {}

    # ------------------------------------------------------------------- API
    @property
    def active_flows(self) -> int:
        """Number of currently active (unexpired) flows."""
        return len(self._active)

    def add_packet(self, packet: Packet) -> List[FlowRecord]:
        """Ingest one packet; returns any flows expired by the packet's timestamp."""
        expired = self._expire(packet.timestamp)
        key = FlowKey.from_packet(packet)
        record = self._active.get(key)
        if record is None:
            self._active[key] = FlowRecord.from_first_packet(packet)
        else:
            record.add_packet(packet)
        return expired

    def add_packets(self, packets: List[Packet]) -> List[FlowRecord]:
        """Ingest a time-ordered packet batch; returns flows expired along the way."""
        completed: List[FlowRecord] = []
        for packet in packets:
            completed.extend(self.add_packet(packet))
        return completed

    def flush(self) -> List[FlowRecord]:
        """Expire and return all remaining active flows (end of capture)."""
        flows = list(self._active.values())
        self._active.clear()
        return flows

    # ------------------------------------------------------------- internals
    def _expire(self, now: float) -> List[FlowRecord]:
        expired: List[FlowRecord] = []
        stale_keys = [
            key
            for key, record in self._active.items()
            if (now - record.end_time) > self.idle_timeout
            or (now - record.start_time) > self.max_flow_duration
        ]
        for key in stale_keys:
            expired.append(self._active.pop(key))
        return expired
