"""Alert records and the alert manager."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.nids.flow import FlowRecord


class Severity(enum.IntEnum):
    """Alert severity levels, ordered so comparisons work (CRITICAL > LOW)."""

    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


#: Default mapping from attack-class keywords to severities.
_SEVERITY_KEYWORDS: Tuple[Tuple[str, Severity], ...] = (
    ("u2r", Severity.CRITICAL),
    ("backdoor", Severity.CRITICAL),
    ("shellcode", Severity.CRITICAL),
    ("exfiltration", Severity.CRITICAL),
    ("infilt", Severity.CRITICAL),
    ("r2l", Severity.HIGH),
    ("bruteforce", Severity.HIGH),
    ("brute_force", Severity.HIGH),
    ("patator", Severity.HIGH),
    ("exploit", Severity.HIGH),
    ("worm", Severity.HIGH),
    ("bot", Severity.HIGH),
    ("dos", Severity.MEDIUM),
    ("ddos", Severity.MEDIUM),
    ("flood", Severity.MEDIUM),
    ("scan", Severity.LOW),
    ("probe", Severity.LOW),
    ("recon", Severity.LOW),
    ("fuzzer", Severity.LOW),
    ("analysis", Severity.LOW),
    ("generic", Severity.MEDIUM),
)


def classify_severity(attack_class: str) -> Severity:
    """Map an attack class name to a default severity."""
    lowered = attack_class.lower()
    for keyword, severity in _SEVERITY_KEYWORDS:
        if keyword in lowered:
            return severity
    return Severity.MEDIUM


@dataclass(frozen=True)
class Alert:
    """A single intrusion alert raised by the detection pipeline."""

    timestamp: float
    attack_class: str
    severity: Severity
    source_ip: str
    destination_ip: str
    confidence: float
    description: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        return (
            f"[{self.severity.name}] {self.attack_class} "
            f"{self.source_ip} -> {self.destination_ip} "
            f"(confidence {self.confidence:.2f})"
        )


class AlertManager:
    """Collects alerts, de-duplicates repeats and tracks per-class counts.

    Parameters
    ----------
    dedup_window:
        Alerts for the same (source, destination, attack class) within this
        many seconds of a previous alert are suppressed as duplicates.
    min_confidence:
        Alerts below this confidence are dropped.
    """

    def __init__(self, dedup_window: float = 10.0, min_confidence: float = 0.0):
        self.dedup_window = float(dedup_window)
        self.min_confidence = float(min_confidence)
        self._alerts: List[Alert] = []
        self._last_seen: Dict[Tuple[str, str, str], float] = {}
        self.suppressed = 0

    # ------------------------------------------------------------------- API
    def raise_alert(
        self,
        flow: FlowRecord,
        attack_class: str,
        confidence: float,
        timestamp: Optional[float] = None,
    ) -> Optional[Alert]:
        """Create (or suppress) an alert for ``flow``; returns the alert if raised."""
        if confidence < self.min_confidence:
            self.suppressed += 1
            return None
        ts = flow.end_time if timestamp is None else timestamp
        dedup_key = (flow.initiator_ip, flow.key.ip_b, attack_class)
        last = self._last_seen.get(dedup_key)
        if last is not None and (ts - last) < self.dedup_window:
            self.suppressed += 1
            return None
        self._last_seen[dedup_key] = ts
        alert = Alert(
            timestamp=ts,
            attack_class=attack_class,
            severity=classify_severity(attack_class),
            source_ip=flow.initiator_ip,
            destination_ip=flow.key.ip_b if flow.initiator_ip == flow.key.ip_a else flow.key.ip_a,
            confidence=float(confidence),
            description=f"flow of {flow.total_packets} packets / {flow.total_bytes} bytes",
        )
        self._alerts.append(alert)
        return alert

    @property
    def alerts(self) -> List[Alert]:
        """All raised (non-suppressed) alerts."""
        return list(self._alerts)

    def count_by_class(self) -> Dict[str, int]:
        """Number of alerts per attack class."""
        counts: Dict[str, int] = {}
        for alert in self._alerts:
            counts[alert.attack_class] = counts.get(alert.attack_class, 0) + 1
        return counts

    def count_by_severity(self) -> Dict[str, int]:
        """Number of alerts per severity level name."""
        counts: Dict[str, int] = {}
        for alert in self._alerts:
            counts[alert.severity.name] = counts.get(alert.severity.name, 0) + 1
        return counts

    def highest_severity(self) -> Optional[Severity]:
        """The most severe alert raised so far (None if no alerts)."""
        if not self._alerts:
            return None
        return max(alert.severity for alert in self._alerts)

    def clear(self) -> None:
        """Drop all stored alerts and de-duplication state."""
        self._alerts.clear()
        self._last_seen.clear()
        self.suppressed = 0
