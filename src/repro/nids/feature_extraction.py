"""Flow feature extraction (a compact CICFlowMeter-style feature set)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nids.flow import FlowRecord

#: Names (and order) of the extracted flow features.
FLOW_FEATURE_NAMES: Tuple[str, ...] = (
    "duration",
    "total_packets",
    "total_bytes",
    "fwd_packets",
    "bwd_packets",
    "fwd_bytes",
    "bwd_bytes",
    "bytes_per_second",
    "packets_per_second",
    "down_up_ratio",
    "fwd_packet_length_mean",
    "fwd_packet_length_std",
    "fwd_packet_length_max",
    "fwd_packet_length_min",
    "bwd_packet_length_mean",
    "bwd_packet_length_std",
    "iat_mean",
    "iat_std",
    "iat_max",
    "iat_min",
    "syn_count",
    "fin_count",
    "rst_count",
    "psh_count",
    "ack_count",
    "urg_count",
    "syn_ratio",
    "distinct_dst_ports",
    "is_tcp",
    "is_udp",
)


class FlowFeatureExtractor:
    """Converts :class:`FlowRecord` objects into fixed-length feature vectors.

    The feature set is a compact subset of the CICFlowMeter statistics: volume
    counters, packet-length statistics, inter-arrival-time statistics, TCP
    flag counts and port-diversity -- enough for the detection pipeline to
    separate the synthetic attack behaviours from benign traffic.
    """

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Names of the extracted features, in output order."""
        return FLOW_FEATURE_NAMES

    @property
    def n_features(self) -> int:
        """Number of extracted features."""
        return len(FLOW_FEATURE_NAMES)

    # ------------------------------------------------------------------- API
    def extract(self, flow: FlowRecord) -> np.ndarray:
        """Extract the feature vector of a single flow."""
        duration = flow.duration
        safe_duration = max(duration, 1e-6)
        fwd_lengths = np.asarray(flow.fwd_lengths, dtype=np.float64)
        bwd_lengths = np.asarray(flow.bwd_lengths, dtype=np.float64)
        timestamps = np.sort(np.asarray(flow.timestamps, dtype=np.float64))
        iats = np.diff(timestamps) if timestamps.size > 1 else np.zeros(1)

        def stats(values: np.ndarray) -> Tuple[float, float, float, float]:
            if values.size == 0:
                return 0.0, 0.0, 0.0, 0.0
            return (
                float(values.mean()),
                float(values.std()),
                float(values.max()),
                float(values.min()),
            )

        fwd_mean, fwd_std, fwd_max, fwd_min = stats(fwd_lengths)
        bwd_mean, bwd_std, _, _ = stats(bwd_lengths)
        iat_mean, iat_std, iat_max, iat_min = stats(iats)
        total_packets = flow.total_packets

        features = [
            duration,
            float(total_packets),
            float(flow.total_bytes),
            float(flow.fwd_packets),
            float(flow.bwd_packets),
            float(flow.fwd_bytes),
            float(flow.bwd_bytes),
            flow.total_bytes / safe_duration,
            total_packets / safe_duration,
            flow.bwd_packets / max(flow.fwd_packets, 1),
            fwd_mean,
            fwd_std,
            fwd_max,
            fwd_min,
            bwd_mean,
            bwd_std,
            iat_mean,
            iat_std,
            iat_max,
            iat_min,
            float(flow.syn_count),
            float(flow.fin_count),
            float(flow.rst_count),
            float(flow.psh_count),
            float(flow.ack_count),
            float(flow.urg_count),
            flow.syn_count / max(total_packets, 1),
            float(len(flow.distinct_dst_ports)),
            1.0 if flow.key.protocol == "tcp" else 0.0,
            1.0 if flow.key.protocol == "udp" else 0.0,
        ]
        return np.asarray(features, dtype=np.float64)

    def extract_batch(self, flows: Sequence[FlowRecord]) -> Tuple[np.ndarray, List[str]]:
        """Extract features for many flows.

        Returns
        -------
        (X, labels):
            ``(n_flows, n_features)`` feature matrix and the ground-truth
            label string of each flow.
        """
        if not flows:
            return np.zeros((0, self.n_features)), []
        X = np.stack([self.extract(flow) for flow in flows])
        labels = [flow.label for flow in flows]
        return X, labels
