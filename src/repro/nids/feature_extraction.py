"""Flow feature extraction (a compact CICFlowMeter-style feature set).

The extractor works from the running aggregates kept on
:class:`repro.nids.flow.FlowRecord` (counts, sums, sums of squares,
extrema), so a batch of flows becomes a single ``(n_flows, F)`` matrix via
column-wise array arithmetic -- one Python pass to gather the aggregates,
then vectorized math.  The serving path consumes the float32 output directly
(the HDC encoders run float32 under the default backend policy); pass
``dtype`` to opt out.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.nids.flow import FlowRecord

#: Names (and order) of the extracted flow features.
FLOW_FEATURE_NAMES: Tuple[str, ...] = (
    "duration",
    "total_packets",
    "total_bytes",
    "fwd_packets",
    "bwd_packets",
    "fwd_bytes",
    "bwd_bytes",
    "bytes_per_second",
    "packets_per_second",
    "down_up_ratio",
    "fwd_packet_length_mean",
    "fwd_packet_length_std",
    "fwd_packet_length_max",
    "fwd_packet_length_min",
    "bwd_packet_length_mean",
    "bwd_packet_length_std",
    "iat_mean",
    "iat_std",
    "iat_max",
    "iat_min",
    "syn_count",
    "fin_count",
    "rst_count",
    "psh_count",
    "ack_count",
    "urg_count",
    "syn_ratio",
    "distinct_dst_ports",
    "is_tcp",
    "is_udp",
)

#: Aggregate fields gathered from each record before the vectorized math.
_AGG_FIELDS: Tuple[str, ...] = (
    "fwd_packets",
    "bwd_packets",
    "fwd_bytes",
    "bwd_bytes",
    "fwd_len_sumsq",
    "fwd_len_min",
    "fwd_len_max",
    "bwd_len_sumsq",
    "iat_count",
    "iat_sum",
    "iat_sumsq",
    "iat_min",
    "iat_max",
    "syn_count",
    "fin_count",
    "rst_count",
    "psh_count",
    "ack_count",
    "urg_count",
)


def _moment_stats(count, total, sumsq, vmin, vmax):
    """Mean/std/max/min from running moments; empty groups report zeros."""
    present = count > 0
    safe = np.maximum(count, 1)
    mean = np.where(present, total / safe, 0.0)
    var = np.maximum(sumsq / safe - mean * mean, 0.0)
    std = np.where(present, np.sqrt(var), 0.0)
    vmax = np.where(present, vmax, 0.0)
    vmin = np.where(present, vmin, 0.0)
    return mean, std, vmax, vmin


class FlowFeatureExtractor:
    """Converts :class:`FlowRecord` objects into fixed-length feature vectors.

    The feature set is a compact subset of the CICFlowMeter statistics: volume
    counters, packet-length statistics, inter-arrival-time statistics, TCP
    flag counts and port-diversity -- enough for the detection pipeline to
    separate the synthetic attack behaviours from benign traffic.
    """

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """Names of the extracted features, in output order."""
        return FLOW_FEATURE_NAMES

    @property
    def n_features(self) -> int:
        """Number of extracted features."""
        return len(FLOW_FEATURE_NAMES)

    # ------------------------------------------------------------------- API
    def extract(self, flow: FlowRecord) -> np.ndarray:
        """Extract the feature vector of a single flow (float64)."""
        X, _ = self.extract_batch([flow], dtype=np.float64)
        return X[0]

    def extract_batch(
        self,
        flows: Sequence[FlowRecord],
        dtype: np.dtype = np.float32,
    ) -> Tuple[np.ndarray, List[str]]:
        """Extract features for many flows in one vectorized pass.

        Parameters
        ----------
        flows:
            Flow records to featurize.
        dtype:
            Output dtype; float32 by default (the serving path's working
            precision).

        Returns
        -------
        (X, labels):
            ``(n_flows, n_features)`` feature matrix and the ground-truth
            label string of each flow.
        """
        n = len(flows)
        if n == 0:
            return np.zeros((0, self.n_features), dtype=dtype), []

        # One Python pass gathering scalar aggregates; everything after this
        # is column arithmetic.
        agg = np.empty((n, len(_AGG_FIELDS)), dtype=np.float64)
        duration = np.empty(n, dtype=np.float64)
        is_tcp = np.empty(n, dtype=np.float64)
        is_udp = np.empty(n, dtype=np.float64)
        n_ports = np.empty(n, dtype=np.float64)
        labels: List[str] = []
        for i, flow in enumerate(flows):
            agg[i] = (
                flow.fwd_packets,
                flow.bwd_packets,
                flow.fwd_bytes,
                flow.bwd_bytes,
                flow.fwd_len_sumsq,
                flow.fwd_len_min,
                flow.fwd_len_max,
                flow.bwd_len_sumsq,
                flow.iat_count,
                flow.iat_sum,
                flow.iat_sumsq,
                flow.iat_min,
                flow.iat_max,
                flow.syn_count,
                flow.fin_count,
                flow.rst_count,
                flow.psh_count,
                flow.ack_count,
                flow.urg_count,
            )
            duration[i] = flow.end_time - flow.start_time
            protocol = flow.key.protocol
            is_tcp[i] = 1.0 if protocol == "tcp" else 0.0
            is_udp[i] = 1.0 if protocol == "udp" else 0.0
            n_ports[i] = len(flow.distinct_dst_ports)
            labels.append(flow.label)

        (
            fwd_packets,
            bwd_packets,
            fwd_bytes,
            bwd_bytes,
            fwd_sumsq,
            fwd_min,
            fwd_max,
            bwd_sumsq,
            iat_count,
            iat_sum,
            iat_sumsq,
            iat_min,
            iat_max,
            syn,
            fin,
            rst,
            psh,
            ack,
            urg,
        ) = agg.T

        duration = np.maximum(duration, 0.0)
        safe_duration = np.maximum(duration, 1e-6)
        total_packets = fwd_packets + bwd_packets
        total_bytes = fwd_bytes + bwd_bytes

        fwd_mean, fwd_std, fwd_pl_max, fwd_pl_min = _moment_stats(
            fwd_packets, fwd_bytes, fwd_sumsq, fwd_min, fwd_max
        )
        bwd_mean, bwd_std, _, _ = _moment_stats(
            bwd_packets, bwd_bytes, bwd_sumsq, np.zeros(n), np.zeros(n)
        )
        iat_mean, iat_std, iat_hi, iat_lo = _moment_stats(
            iat_count, iat_sum, iat_sumsq, iat_min, iat_max
        )

        X = np.column_stack(
            [
                duration,
                total_packets,
                total_bytes,
                fwd_packets,
                bwd_packets,
                fwd_bytes,
                bwd_bytes,
                total_bytes / safe_duration,
                total_packets / safe_duration,
                bwd_packets / np.maximum(fwd_packets, 1),
                fwd_mean,
                fwd_std,
                fwd_pl_max,
                fwd_pl_min,
                bwd_mean,
                bwd_std,
                iat_mean,
                iat_std,
                iat_hi,
                iat_lo,
                syn,
                fin,
                rst,
                psh,
                ack,
                urg,
                syn / np.maximum(total_packets, 1),
                n_ports,
                is_tcp,
                is_udp,
            ]
        )
        return X.astype(dtype, copy=False), labels
