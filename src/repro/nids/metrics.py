"""Detection metrics for NIDS evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = samples of true class ``i`` predicted as ``j``."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ConfigurationError("y_true and y_pred must have the same shape")
    if n_classes < 1:
        raise ConfigurationError("n_classes must be >= 1")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


@dataclass
class DetectionReport:
    """Per-class and aggregate detection metrics.

    Attributes
    ----------
    accuracy:
        Overall classification accuracy.
    macro_precision, macro_recall, macro_f1:
        Unweighted means of the per-class metrics.
    detection_rate:
        Fraction of attack samples assigned to *some* attack class (binary
        attack-vs-benign recall), if an ``attack_mask`` was provided.
    false_alarm_rate:
        Fraction of benign samples flagged as an attack, if an ``attack_mask``
        was provided.
    per_class:
        Mapping class name -> ``{"precision", "recall", "f1", "support"}``.
    matrix:
        The confusion matrix.
    """

    accuracy: float
    macro_precision: float
    macro_recall: float
    macro_f1: float
    detection_rate: Optional[float]
    false_alarm_rate: Optional[float]
    per_class: Dict[str, Dict[str, float]] = field(default_factory=dict)
    matrix: Optional[np.ndarray] = None

    def summary(self) -> str:
        """Short human-readable summary (used by the examples)."""
        lines = [
            f"accuracy          : {self.accuracy:.4f}",
            f"macro precision   : {self.macro_precision:.4f}",
            f"macro recall      : {self.macro_recall:.4f}",
            f"macro F1          : {self.macro_f1:.4f}",
        ]
        if self.detection_rate is not None:
            lines.append(f"detection rate    : {self.detection_rate:.4f}")
        if self.false_alarm_rate is not None:
            lines.append(f"false alarm rate  : {self.false_alarm_rate:.4f}")
        return "\n".join(lines)


def detection_report(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    class_names: Sequence[str],
    attack_mask: Optional[Sequence[bool]] = None,
) -> DetectionReport:
    """Compute the full detection report.

    Parameters
    ----------
    y_true, y_pred:
        Integer labels (indices into ``class_names``).
    class_names:
        Names of the classes, index-aligned with the labels.
    attack_mask:
        Optional per-class attack flag; enables detection-rate and
        false-alarm-rate computation.
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    n_classes = len(class_names)
    matrix = confusion_matrix(y_true, y_pred, n_classes)

    per_class: Dict[str, Dict[str, float]] = {}
    precisions, recalls, f1s = [], [], []
    for i, name in enumerate(class_names):
        tp = float(matrix[i, i])
        fp = float(matrix[:, i].sum() - matrix[i, i])
        fn = float(matrix[i, :].sum() - matrix[i, i])
        support = float(matrix[i, :].sum())
        precision = tp / (tp + fp) if tp + fp > 0 else 0.0
        recall = tp / (tp + fn) if tp + fn > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
        per_class[name] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": support,
        }
        # Classes absent from the evaluation split do not drag the macro
        # averages to zero.
        if support > 0:
            precisions.append(precision)
            recalls.append(recall)
            f1s.append(f1)

    accuracy = float(np.trace(matrix)) / max(float(matrix.sum()), 1.0)

    detection_rate = None
    false_alarm_rate = None
    if attack_mask is not None:
        mask = np.asarray(attack_mask, dtype=bool)
        if mask.shape[0] != n_classes:
            raise ConfigurationError("attack_mask must have one entry per class")
        true_attack = mask[y_true]
        pred_attack = mask[y_pred]
        if true_attack.any():
            detection_rate = float(np.mean(pred_attack[true_attack]))
        if (~true_attack).any():
            false_alarm_rate = float(np.mean(pred_attack[~true_attack]))

    return DetectionReport(
        accuracy=accuracy,
        macro_precision=float(np.mean(precisions)) if precisions else 0.0,
        macro_recall=float(np.mean(recalls)) if recalls else 0.0,
        macro_f1=float(np.mean(f1s)) if f1s else 0.0,
        detection_rate=detection_rate,
        false_alarm_rate=false_alarm_rate,
        per_class=per_class,
        matrix=matrix,
    )
