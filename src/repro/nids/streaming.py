"""Windowed streaming detection.

Wraps a trained :class:`repro.nids.pipeline.DetectionPipeline` so packets can
be pushed continuously: packets are folded into the flow table, expired flows
are classified in micro-batches, and each processed window reports its
detection latency -- the quantity the paper argues HDC keeps low enough for
real-time edge deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.exceptions import ConfigurationError, NotFittedError
from repro.nids.alerts import Alert
from repro.nids.flow import FlowRecord, FlowTable
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline


@dataclass
class WindowResult:
    """Result of processing one micro-batch window.

    Attributes
    ----------
    window_index:
        Sequential index of the window.
    n_packets:
        Packets ingested in this window.
    n_flows:
        Flows that expired (and were classified) during this window.
    n_alerts:
        Alerts raised in this window.
    latency_seconds:
        Classification latency for the window's flows.
    alerts:
        The raised alerts.
    """

    window_index: int
    n_packets: int
    n_flows: int
    n_alerts: int
    latency_seconds: float
    alerts: List[Alert] = field(default_factory=list)


class StreamingDetector:
    """Micro-batch streaming wrapper around a trained detection pipeline.

    Parameters
    ----------
    pipeline:
        A trained :class:`DetectionPipeline`.
    window_size:
        Number of packets per micro-batch.
    idle_timeout:
        Flow-table idle timeout in seconds.
    """

    def __init__(
        self,
        pipeline: DetectionPipeline,
        window_size: int = 500,
        idle_timeout: float = 5.0,
    ):
        if not pipeline.is_fitted:
            raise NotFittedError("StreamingDetector requires a trained pipeline")
        if window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        self.pipeline = pipeline
        self.window_size = int(window_size)
        self._table = FlowTable(idle_timeout=idle_timeout)
        self._buffer: List[Packet] = []
        self._window_index = 0
        self.results: List[WindowResult] = []

    # ------------------------------------------------------------------- API
    def push(self, packet: Packet) -> Optional[WindowResult]:
        """Ingest one packet; returns a window result when a window completes."""
        self._buffer.append(packet)
        if len(self._buffer) >= self.window_size:
            return self._process_window()
        return None

    def push_many(self, packets: Iterable[Packet]) -> List[WindowResult]:
        """Ingest many packets; returns all completed window results."""
        completed: List[WindowResult] = []
        for packet in packets:
            result = self.push(packet)
            if result is not None:
                completed.append(result)
        return completed

    def flush(self) -> WindowResult:
        """Process any buffered packets and all still-active flows."""
        pending = self._table.add_packets(self._buffer)
        self._buffer = []
        pending.extend(self._table.flush())
        return self._finalize_window(pending, n_packets=0)

    # ------------------------------------------------------------- internals
    def _process_window(self) -> WindowResult:
        packets = self._buffer
        self._buffer = []
        expired = self._table.add_packets(packets)
        return self._finalize_window(expired, n_packets=len(packets))

    def _finalize_window(self, flows: List[FlowRecord], n_packets: int) -> WindowResult:
        detection = self.pipeline.detect_flows(flows)
        result = WindowResult(
            window_index=self._window_index,
            n_packets=n_packets,
            n_flows=len(flows),
            n_alerts=len(detection.alerts),
            latency_seconds=detection.latency_seconds,
            alerts=detection.alerts,
        )
        self._window_index += 1
        self.results.append(result)
        return result

    # ------------------------------------------------------------ statistics
    @property
    def total_alerts(self) -> int:
        """Total alerts raised across all processed windows."""
        return sum(r.n_alerts for r in self.results)

    @property
    def total_flows(self) -> int:
        """Total flows classified across all processed windows."""
        return sum(r.n_flows for r in self.results)

    @property
    def mean_latency(self) -> float:
        """Mean per-window classification latency in seconds."""
        if not self.results:
            return 0.0
        return float(sum(r.latency_seconds for r in self.results) / len(self.results))
