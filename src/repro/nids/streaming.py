"""Windowed streaming detection on top of the serving engine.

Wraps a trained :class:`repro.nids.pipeline.DetectionPipeline` so packets can
be pushed continuously.  Internally the detector is a thin orchestration of
the production serving subsystem: packets enter a bounded
:class:`repro.serving.InferenceEngine` whose stage chain is the pipeline's
own components prefixed with flow assembly, micro-batches dispatch at the
window size, and each window reports per-stage detection latency -- the
quantity the paper argues HDC keeps low enough for real-time edge
deployment.

With an :class:`repro.serving.OnlineLearner` attached, each window also
feeds the model online: prequential confidence/accuracy go to the drift
monitor, labeled flows are folded in through ``partial_fit``, and detected
drift triggers CyberHD's dimension regeneration without taking the detector
offline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError
from repro.nids.alerts import Alert
from repro.nids.flow import FlowTable
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline, DetectionResult
from repro.serving.engine import InferenceEngine
from repro.serving.online import OnlineLearner
from repro.serving.stages import FlowAssemblyStage, ServingBatch
from repro.serving.telemetry import TelemetryRecorder


@dataclass
class WindowResult:
    """Result of processing one micro-batch window.

    Attributes
    ----------
    window_index:
        Sequential index of the window.
    n_packets:
        Packets ingested in this window.
    n_flows:
        Flows that expired (and were classified) during this window.
    n_alerts:
        Alerts raised in this window.
    latency_seconds:
        Detection latency for the window's flows (sum of the detection
        stage latencies).
    alerts:
        The raised alerts.
    stage_latencies:
        Per-stage wall-clock seconds for this window (assemble / extract /
        encode / classify / alert).
    """

    window_index: int
    n_packets: int
    n_flows: int
    n_alerts: int
    latency_seconds: float
    alerts: List[Alert] = field(default_factory=list)
    stage_latencies: Dict[str, float] = field(default_factory=dict)


class StreamingDetector:
    """Micro-batch streaming wrapper around a trained detection pipeline.

    Parameters
    ----------
    pipeline:
        A trained :class:`DetectionPipeline`.
    window_size:
        Number of packets per micro-batch.
    idle_timeout:
        Flow-table idle timeout in seconds.
    queue_capacity:
        Bound of the ingest queue (defaults to four windows).
    backpressure:
        Overflow policy, ``"block"`` or ``"drop_oldest"``
        (see :mod:`repro.serving.backpressure`).  Note that the detector
        runs the engine synchronously (windows dispatch inline at
        ``window_size``), so the queue only overflows -- and
        ``drop_oldest`` only sheds -- when ``queue_capacity`` is set
        *below* ``window_size``, which simulates a producer outrunning the
        detector: packets are then silently shed (counted in
        :attr:`backpressure_stats`) and no window completes until
        :meth:`flush`.  In wall-clock deployments overload shedding comes
        from the threaded engine instead.
    online:
        Optional :class:`OnlineLearner`; when set, every window updates the
        model from its labeled flows and drift triggers regeneration.
    telemetry:
        Optional shared :class:`TelemetryRecorder` (a fresh one is created
        if omitted); exposes aggregate per-stage latency and throughput.
    history:
        How many full :class:`DetectionResult` objects (flows + feature
        matrices) to retain on :attr:`detections`; ``None`` keeps all.
        :attr:`results` (lightweight window summaries) is always complete.
    """

    def __init__(
        self,
        pipeline: DetectionPipeline,
        window_size: int = 500,
        idle_timeout: float = 5.0,
        queue_capacity: Optional[int] = None,
        backpressure: str = "block",
        online: Optional[OnlineLearner] = None,
        telemetry: Optional[TelemetryRecorder] = None,
        history: Optional[int] = 512,
    ):
        if not pipeline.is_fitted:
            raise NotFittedError("StreamingDetector requires a trained pipeline")
        if window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        self.pipeline = pipeline
        self.window_size = int(window_size)
        self.online = online
        self.telemetry = telemetry if telemetry is not None else TelemetryRecorder()
        stages = [
            FlowAssemblyStage(FlowTable(idle_timeout=idle_timeout)),
            *pipeline.stages,
        ]
        self.engine = InferenceEngine(
            stages,
            max_batch_size=self.window_size,
            max_wait_s=None,  # windows are packet-count driven (deterministic)
            queue_capacity=queue_capacity or 4 * self.window_size,
            backpressure=backpressure,
            telemetry=self.telemetry,
            on_batch=self._finalize_window,
            keep_batches=0,  # windows are consumed via on_batch; don't hold them twice
        )
        self._window_index = 0
        self.history = history
        self.results: List[WindowResult] = []
        self.detections: List[DetectionResult] = []

    # ------------------------------------------------------------------- API
    def push(self, packet: Packet) -> Optional[WindowResult]:
        """Ingest one packet; returns a window result when a window completes."""
        before = len(self.results)
        self.engine.submit(packet)
        return self.results[-1] if len(self.results) > before else None

    def push_many(self, packets: Iterable[Packet]) -> List[WindowResult]:
        """Ingest many packets; returns all completed window results."""
        before = len(self.results)
        for packet in packets:
            self.engine.submit(packet)
        return self.results[before:]

    def flush(self) -> WindowResult:
        """Process any buffered packets and all still-active flows.

        Always appends (and returns) a final window result; its
        ``n_packets`` counts the packets drained from the ingest buffer
        (the seed implementation erroneously reported 0 here).
        """
        self.engine.close()
        return self.results[-1]

    # ------------------------------------------------------------- internals
    def _finalize_window(self, batch: ServingBatch) -> WindowResult:
        detection = DetectionResult.from_batch(batch)
        stage_latencies = dict(detection.stage_latencies)
        if "assemble" in batch.stage_seconds:
            stage_latencies["assemble"] = batch.stage_seconds["assemble"]
        result = WindowResult(
            window_index=self._window_index,
            n_packets=len(batch.packets),
            n_flows=len(batch.flows),
            n_alerts=len(detection.alerts),
            latency_seconds=detection.latency_seconds,
            alerts=detection.alerts,
            stage_latencies=stage_latencies,
        )
        self._window_index += 1
        self.results.append(result)
        self.detections.append(detection)
        if self.history is not None and len(self.detections) > self.history:
            del self.detections[: len(self.detections) - self.history]
        if self.online is not None and batch.n_flows:
            self._learn_online(batch)
        return result

    def _learn_online(self, batch: ServingBatch) -> None:
        """Feed one processed window to the online learner (prequential)."""
        correct = np.asarray(
            [p == t for p, t in zip(batch.predictions, batch.labels)], dtype=bool
        )
        data = self.pipeline.batch_training_data(batch)
        if data is None:
            X, y = batch.features[:0], None
        else:
            X, y = data
        self.online.observe(X, y=y, confidences=batch.confidences, correct=correct)

    # ------------------------------------------------------------ statistics
    @property
    def total_alerts(self) -> int:
        """Total alerts raised across all processed windows."""
        return sum(r.n_alerts for r in self.results)

    @property
    def total_flows(self) -> int:
        """Total flows classified across all processed windows."""
        return sum(r.n_flows for r in self.results)

    @property
    def total_packets(self) -> int:
        """Total packets ingested across all processed windows."""
        return sum(r.n_packets for r in self.results)

    @property
    def mean_latency(self) -> float:
        """Window-weighted mean detection latency (seconds per window)."""
        if not self.results:
            return 0.0
        return float(sum(r.latency_seconds for r in self.results) / len(self.results))

    @property
    def mean_latency_per_flow(self) -> float:
        """Flow-weighted mean latency: seconds of detection work per flow.

        Unlike :attr:`mean_latency` (which weights every window equally,
        including empty ones), this divides total detection time by the
        number of flows actually served -- the per-item cost a capacity
        plan needs.
        """
        flows = self.total_flows
        if flows == 0:
            return 0.0
        return float(sum(r.latency_seconds for r in self.results) / flows)

    @property
    def backpressure_stats(self):
        """Ingest-queue counters (see :class:`BackpressureStats`)."""
        return self.engine.backpressure_stats
