"""Network-intrusion-detection substrate.

The paper motivates CyberHD with the NIDS deployment sketched in its Fig. 1:
traffic crosses a firewall, a NIDS watches the LAN, and alerts are raised when
flows look malicious.  This package provides that surrounding system so the
classifier can be exercised end to end:

``packets`` / ``flow`` / ``feature_extraction``
    A synthetic packet generator with benign and attack traffic profiles, a
    flow table that assembles packets into bidirectional flows, and a flow
    feature extractor producing the numeric statistics the classifiers
    consume.

``pipeline``
    The detection pipeline: train a classifier on a labeled dataset, then
    classify extracted flow features and raise alerts.

``alerts``
    Alert records plus an alert manager with de-duplication and severity.

``streaming``
    A windowed streaming detector that ingests packets continuously and emits
    alerts in micro-batches, reporting per-batch detection latency.

``metrics``
    Detection metrics (accuracy, per-class precision/recall/F1, detection
    rate, false-alarm rate, confusion matrix).
"""

from repro.nids.alerts import Alert, AlertManager, Severity
from repro.nids.feature_extraction import FLOW_FEATURE_NAMES, FlowFeatureExtractor
from repro.nids.flow import FlowKey, FlowRecord, FlowTable
from repro.nids.metrics import DetectionReport, confusion_matrix, detection_report
from repro.nids.packets import Packet, TrafficGenerator, TrafficProfile
from repro.nids.pipeline import DetectionPipeline, DetectionResult
from repro.nids.streaming import StreamingDetector, WindowResult

__all__ = [
    "Packet",
    "TrafficProfile",
    "TrafficGenerator",
    "FlowKey",
    "FlowRecord",
    "FlowTable",
    "FlowFeatureExtractor",
    "FLOW_FEATURE_NAMES",
    "DetectionPipeline",
    "DetectionResult",
    "Alert",
    "AlertManager",
    "Severity",
    "StreamingDetector",
    "WindowResult",
    "DetectionReport",
    "detection_report",
    "confusion_matrix",
]
