"""Network-intrusion-detection substrate.

The paper motivates CyberHD with the NIDS deployment sketched in its Fig. 1:
traffic crosses a firewall, a NIDS watches the LAN, and alerts are raised when
flows look malicious.  This package provides that surrounding system so the
classifier can be exercised end to end:

``packets`` / ``flow`` / ``feature_extraction``
    A synthetic packet generator with benign and attack traffic profiles, a
    flow table that assembles packets into bidirectional flows, and a flow
    feature extractor producing the numeric statistics the classifiers
    consume.

``pipeline``
    The detection pipeline: train a classifier on a labeled dataset, then
    classify extracted flow features and raise alerts.

``alerts``
    Alert records plus an alert manager with de-duplication and severity.

``streaming``
    A windowed streaming detector that ingests packets continuously and emits
    alerts in micro-batches, reporting per-batch detection latency.

``metrics``
    Detection metrics (accuracy, per-class precision/recall/F1, detection
    rate, false-alarm rate, confusion matrix).
"""

from repro.nids.alerts import Alert, AlertManager, Severity
from repro.nids.feature_extraction import FLOW_FEATURE_NAMES, FlowFeatureExtractor
from repro.nids.flow import FlowKey, FlowRecord, FlowTable
from repro.nids.metrics import DetectionReport, confusion_matrix, detection_report
from repro.nids.packets import Packet, TrafficGenerator, TrafficProfile

# The pipeline and streaming layers are composed from repro.serving stages,
# which in turn import the leaf modules above; importing them lazily (PEP
# 562) keeps `repro.serving` and `repro.nids` importable in either order.
_LAZY_IMPORTS = {
    "DetectionPipeline": ("repro.nids.pipeline", "DetectionPipeline"),
    "DetectionResult": ("repro.nids.pipeline", "DetectionResult"),
    "StreamingDetector": ("repro.nids.streaming", "StreamingDetector"),
    "WindowResult": ("repro.nids.streaming", "WindowResult"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_IMPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value

__all__ = [
    "Packet",
    "TrafficProfile",
    "TrafficGenerator",
    "FlowKey",
    "FlowRecord",
    "FlowTable",
    "FlowFeatureExtractor",
    "FLOW_FEATURE_NAMES",
    "DetectionPipeline",
    "DetectionResult",
    "Alert",
    "AlertManager",
    "Severity",
    "StreamingDetector",
    "WindowResult",
    "DetectionReport",
    "detection_report",
    "confusion_matrix",
]
