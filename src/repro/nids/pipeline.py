"""End-to-end detection pipeline.

Glues the substrate together: flow features are scaled with a training-time
scaler, classified by any :class:`repro.models.base.BaseClassifier` (CyberHD
by default), and predictions mapped to alerts.  The pipeline can be trained
either from a :class:`repro.datasets.NIDSDataset` (the paper's tabular
workloads) or directly from labeled packet traffic via the flow substrate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cyberhd import CyberHD
from repro.datasets.base import NIDSDataset
from repro.datasets.preprocessing import MinMaxScaler
from repro.exceptions import ConfigurationError, NotFittedError
from repro.models.base import BaseClassifier
from repro.nids.alerts import Alert, AlertManager
from repro.nids.feature_extraction import FlowFeatureExtractor
from repro.nids.flow import FlowRecord, FlowTable
from repro.nids.metrics import DetectionReport, detection_report
from repro.nids.packets import Packet


@dataclass
class DetectionResult:
    """Outcome of classifying a batch of flows.

    Attributes
    ----------
    predictions:
        Predicted class name per flow.
    confidences:
        Confidence (normalized score margin) per flow, in ``[0, 1]``.
    alerts:
        Alerts raised for flows predicted as attacks.
    latency_seconds:
        Wall-clock time spent on feature scaling + classification.
    flows:
        The classified flow records (same order as predictions).
    """

    predictions: List[str]
    confidences: List[float]
    alerts: List[Alert]
    latency_seconds: float
    flows: List[FlowRecord] = field(default_factory=list)


class DetectionPipeline:
    """Train-once, classify-many NIDS pipeline.

    Parameters
    ----------
    classifier:
        Any fitted-or-unfitted classifier following the package interface;
        defaults to a :class:`CyberHD` instance.
    benign_classes:
        Class names that must *not* raise alerts (default: common benign
        label spellings).
    alert_manager:
        Alert manager to use; a default one is created if omitted.
    """

    DEFAULT_BENIGN_NAMES = ("normal", "benign", "background")

    def __init__(
        self,
        classifier: Optional[BaseClassifier] = None,
        benign_classes: Optional[Sequence[str]] = None,
        alert_manager: Optional[AlertManager] = None,
    ):
        self.classifier = classifier if classifier is not None else CyberHD(dim=500, epochs=10, seed=0)
        self._benign = tuple(
            name.lower() for name in (benign_classes or self.DEFAULT_BENIGN_NAMES)
        )
        self.alert_manager = alert_manager or AlertManager()
        self.extractor = FlowFeatureExtractor()
        self._scaler: Optional[MinMaxScaler] = None
        self._class_names: Optional[Tuple[str, ...]] = None
        self._train_seconds: Optional[float] = None

    # ------------------------------------------------------------ properties
    @property
    def is_fitted(self) -> bool:
        """True once the pipeline has been trained."""
        return self._class_names is not None

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Class names the pipeline was trained on."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        return self._class_names

    @property
    def train_seconds(self) -> Optional[float]:
        """Wall-clock training time of the last ``fit`` call."""
        return self._train_seconds

    def is_attack_class(self, name: str) -> bool:
        """Whether class ``name`` should raise an alert."""
        return name.lower() not in self._benign

    # ------------------------------------------------------------------- fit
    def fit_dataset(self, dataset: NIDSDataset) -> "DetectionPipeline":
        """Train the pipeline on a tabular :class:`NIDSDataset` (already scaled)."""
        start = time.perf_counter()
        self.classifier.fit(dataset.X_train, dataset.y_train)
        self._train_seconds = time.perf_counter() - start
        self._scaler = None  # dataset features are already preprocessed
        self._class_names = tuple(dataset.class_names)
        return self

    def fit_flows(self, flows: Sequence[FlowRecord]) -> "DetectionPipeline":
        """Train the pipeline from labeled flow records (packet-level path)."""
        if not flows:
            raise ConfigurationError("cannot train on an empty flow list")
        X_raw, labels = self.extractor.extract_batch(list(flows))
        class_names = tuple(sorted(set(labels)))
        if len(class_names) < 2:
            raise ConfigurationError("training flows must contain at least two classes")
        name_to_index = {name: i for i, name in enumerate(class_names)}
        y = np.asarray([name_to_index[label] for label in labels], dtype=np.int64)

        start = time.perf_counter()
        self._scaler = MinMaxScaler().fit(X_raw)
        self.classifier.fit(self._scaler.transform(X_raw), y)
        self._train_seconds = time.perf_counter() - start
        self._class_names = class_names
        return self

    def fit_packets(
        self, packets: Sequence[Packet], idle_timeout: float = 5.0
    ) -> "DetectionPipeline":
        """Assemble labeled packets into flows and train on them."""
        table = FlowTable(idle_timeout=idle_timeout)
        flows = table.add_packets(list(packets)) + table.flush()
        return self.fit_flows(flows)

    # --------------------------------------------------------------- detect
    def detect_flows(self, flows: Sequence[FlowRecord]) -> DetectionResult:
        """Classify flow records and raise alerts for predicted attacks."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        flows = list(flows)
        if not flows:
            return DetectionResult([], [], [], 0.0, [])
        X_raw, _ = self.extractor.extract_batch(flows)
        start = time.perf_counter()
        X = self._scaler.transform(X_raw) if self._scaler is not None else X_raw
        scores = self.classifier.predict_scores(X)
        latency = time.perf_counter() - start

        pred_idx = np.argmax(scores, axis=1)
        confidences = self._confidences(scores)
        predictions = [self._class_names[self.classifier.classes_[i]] for i in pred_idx]

        alerts: List[Alert] = []
        for flow, prediction, confidence in zip(flows, predictions, confidences):
            if self.is_attack_class(prediction):
                alert = self.alert_manager.raise_alert(flow, prediction, confidence)
                if alert is not None:
                    alerts.append(alert)
        return DetectionResult(
            predictions=predictions,
            confidences=list(confidences),
            alerts=alerts,
            latency_seconds=latency,
            flows=flows,
        )

    def detect_packets(self, packets: Sequence[Packet], idle_timeout: float = 5.0) -> DetectionResult:
        """Assemble packets into flows and classify them."""
        table = FlowTable(idle_timeout=idle_timeout)
        flows = table.add_packets(list(packets)) + table.flush()
        return self.detect_flows(flows)

    def evaluate_dataset(self, dataset: NIDSDataset) -> DetectionReport:
        """Detection report of the trained classifier on a dataset's test split."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        predictions = self.classifier.predict(dataset.X_test)
        attack_mask = dataset.schema.attack_mask if dataset.schema is not None else None
        return detection_report(
            dataset.y_test, predictions, dataset.class_names, attack_mask=attack_mask
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _confidences(scores: np.ndarray) -> np.ndarray:
        """Normalized margin between the best and runner-up class scores."""
        if scores.shape[1] < 2:
            return np.ones(scores.shape[0])
        part = np.partition(scores, -2, axis=1)
        best = part[:, -1]
        second = part[:, -2]
        span = np.maximum(np.abs(best) + np.abs(second), 1e-12)
        return np.clip((best - second) / span, 0.0, 1.0)
