"""End-to-end detection pipeline.

The pipeline is a *composition of serving stages*
(:mod:`repro.serving.stages`): feature extraction (+ training-time scaling),
classification and alerting each live in a swappable component, and
``detect_flows`` simply runs the stage chain over a
:class:`~repro.serving.stages.ServingBatch`.  The streaming detector and the
batched inference engine reuse exactly the same stages, so behaviour and
telemetry are identical whether flows arrive from a file, a dataset or a
live micro-batched stream.

The pipeline can be trained either from a
:class:`repro.datasets.NIDSDataset` (the paper's tabular workloads) or
directly from labeled packet traffic via the flow substrate, and supports
online updates through :meth:`partial_fit_flows`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cyberhd import CyberHD
from repro.datasets.base import NIDSDataset
from repro.datasets.preprocessing import MinMaxScaler
from repro.exceptions import ConfigurationError, NotFittedError
from repro.models.base import BaseClassifier
from repro.nids.alerts import Alert, AlertManager
from repro.nids.feature_extraction import FlowFeatureExtractor
from repro.nids.flow import FlowRecord, FlowTable
from repro.nids.metrics import DetectionReport, detection_report
from repro.nids.packets import Packet
from repro.serving.stages import (
    AlertStage,
    ClassifyStage,
    FeatureExtractionStage,
    FlowAssemblyStage,
    ServingBatch,
    Stage,
    run_stages,
    score_confidences,
)
from repro.serving.telemetry import TelemetryRecorder

#: Stage names whose per-batch time constitutes the detection latency.
#: ``prefilter``/``escalate`` are the cascade's split classification stages.
_LATENCY_STAGES = ("extract", "encode", "classify", "prefilter", "escalate", "alert")


@dataclass
class DetectionResult:
    """Outcome of classifying a batch of flows.

    Attributes
    ----------
    predictions:
        Predicted class name per flow.
    confidences:
        Confidence (normalized score margin) per flow, in ``[0, 1]``.
    alerts:
        Alerts raised for flows predicted as attacks.
    latency_seconds:
        Wall-clock time spent on the detection stages (sum of
        ``stage_latencies``).
    flows:
        The classified flow records (same order as predictions).
    stage_latencies:
        Per-stage wall-clock seconds (extract / encode / classify / alert).
    features:
        The scaled feature matrix the classifier saw (used by the online
        learning path as its replay/input data).
    labels:
        Ground-truth label strings of the flows (from the packet labels).
    """

    predictions: List[str]
    confidences: List[float]
    alerts: List[Alert]
    latency_seconds: float
    flows: List[FlowRecord] = field(default_factory=list)
    stage_latencies: Dict[str, float] = field(default_factory=dict)
    features: Optional[np.ndarray] = None
    labels: List[str] = field(default_factory=list)

    @classmethod
    def from_batch(cls, batch: ServingBatch) -> "DetectionResult":
        """Build a result from a processed :class:`ServingBatch`."""
        stage_latencies = {
            name: batch.stage_seconds[name]
            for name in _LATENCY_STAGES
            if name in batch.stage_seconds
        }
        confidences = (
            [] if batch.confidences is None else [float(c) for c in batch.confidences]
        )
        return cls(
            predictions=list(batch.predictions),
            confidences=confidences,
            alerts=list(batch.alerts),
            latency_seconds=float(sum(stage_latencies.values())),
            flows=list(batch.flows),
            stage_latencies=stage_latencies,
            features=batch.features,
            labels=list(batch.labels),
        )


class DetectionPipeline:
    """Train-once, classify-many NIDS pipeline built from serving stages.

    Parameters
    ----------
    classifier:
        Any fitted-or-unfitted classifier following the package interface;
        defaults to a :class:`CyberHD` instance.
    benign_classes:
        Class names that must *not* raise alerts (default: common benign
        label spellings).
    alert_manager:
        Alert manager to use; a default one is created if omitted.
    telemetry:
        Optional :class:`TelemetryRecorder`; when provided, every
        ``detect_flows`` call feeds the aggregate per-stage telemetry.
    """

    DEFAULT_BENIGN_NAMES = ("normal", "benign", "background")

    def __init__(
        self,
        classifier: Optional[BaseClassifier] = None,
        benign_classes: Optional[Sequence[str]] = None,
        alert_manager: Optional[AlertManager] = None,
        telemetry: Optional[TelemetryRecorder] = None,
    ):
        self.classifier = classifier if classifier is not None else CyberHD(dim=500, epochs=10, seed=0)
        self._benign = tuple(
            name.lower() for name in (benign_classes or self.DEFAULT_BENIGN_NAMES)
        )
        self.alert_manager = alert_manager or AlertManager()
        self.extractor = FlowFeatureExtractor()
        self.telemetry = telemetry
        self._scaler: Optional[MinMaxScaler] = None
        self._class_names: Optional[Tuple[str, ...]] = None
        self._train_seconds: Optional[float] = None
        self._stages: Optional[List[Stage]] = None

    # ------------------------------------------------------------ properties
    @property
    def is_fitted(self) -> bool:
        """True once the pipeline has been trained."""
        return self._class_names is not None

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Class names the pipeline was trained on."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        return self._class_names

    @property
    def train_seconds(self) -> Optional[float]:
        """Wall-clock training time of the last ``fit`` call."""
        return self._train_seconds

    @property
    def stages(self) -> List[Stage]:
        """The detection stage chain (extract -> classify -> alert).

        The list is rebuilt lazily after (re)training; callers may replace
        entries (or the whole list via :meth:`set_stages`) to swap
        components in.
        """
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        if self._stages is None:
            self._stages = [
                FeatureExtractionStage(self.extractor, self._scaler),
                ClassifyStage(self.classifier, self._class_names),
                AlertStage(self.is_attack_class, self.alert_manager),
            ]
        return self._stages

    def set_stages(self, stages: Sequence[Stage]) -> "DetectionPipeline":
        """Replace the detection stage chain with a custom composition."""
        self._stages = list(stages)
        return self

    def build_serving_stages(
        self,
        flow_table: Optional[FlowTable] = None,
        idle_timeout: float = 5.0,
    ) -> List[Stage]:
        """The full packets->alerts chain (assembly prepended), for engines."""
        table = flow_table if flow_table is not None else FlowTable(idle_timeout=idle_timeout)
        return [FlowAssemblyStage(table), *self.stages]

    def is_attack_class(self, name: str) -> bool:
        """Whether class ``name`` should raise an alert."""
        return name.lower() not in self._benign

    # ------------------------------------------------------------------- fit
    def fit_dataset(self, dataset: NIDSDataset) -> "DetectionPipeline":
        """Train the pipeline on a tabular :class:`NIDSDataset` (already scaled)."""
        start = time.perf_counter()
        self.classifier.fit(dataset.X_train, dataset.y_train)
        self._train_seconds = time.perf_counter() - start
        self._scaler = None  # dataset features are already preprocessed
        self._class_names = tuple(dataset.class_names)
        self._stages = None
        return self

    def fit_flows(self, flows: Sequence[FlowRecord]) -> "DetectionPipeline":
        """Train the pipeline from labeled flow records (packet-level path)."""
        if not flows:
            raise ConfigurationError("cannot train on an empty flow list")
        X_raw, labels = self.extractor.extract_batch(list(flows))
        class_names = tuple(sorted(set(labels)))
        if len(class_names) < 2:
            raise ConfigurationError("training flows must contain at least two classes")
        name_to_index = {name: i for i, name in enumerate(class_names)}
        y = np.asarray([name_to_index[label] for label in labels], dtype=np.int64)

        start = time.perf_counter()
        self._scaler = MinMaxScaler().fit(X_raw)
        self.classifier.fit(self._scaler.transform(X_raw), y)
        self._train_seconds = time.perf_counter() - start
        self._class_names = class_names
        self._stages = None
        return self

    def fit_packets(
        self, packets: Sequence[Packet], idle_timeout: float = 5.0
    ) -> "DetectionPipeline":
        """Assemble labeled packets into flows and train on them."""
        table = FlowTable(idle_timeout=idle_timeout)
        flows = table.add_packets(list(packets)) + table.flush()
        return self.fit_flows(flows)

    # ------------------------------------------------------ online learning
    def partial_fit_flows(self, flows: Sequence[FlowRecord]) -> int:
        """Fold labeled flows into the classifier online (no retraining).

        Labels must belong to the training-time class set; returns the
        number of samples learned from.
        """
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        flows = list(flows)
        if not flows:
            return 0
        X_raw, labels = self.extractor.extract_batch(flows)
        name_to_index = {name: i for i, name in enumerate(self._class_names)}
        unknown = sorted(set(labels) - set(name_to_index))
        if unknown:
            raise ConfigurationError(
                f"partial_fit_flows received labels outside the trained class set: {unknown}"
            )
        y = np.asarray([name_to_index[label] for label in labels], dtype=np.int64)
        X = self._scaler.transform(X_raw) if self._scaler is not None else X_raw
        self.classifier.partial_fit(X, y)
        return len(flows)

    def batch_training_data(
        self, batch: ServingBatch
    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Known-label ``(X, y)`` rows of a processed batch, model-indexed.

        The single shared definition of "what can this batch teach the
        model": rows whose ground-truth label belongs to the trained class
        set, with labels mapped to the classifier's index space.  The
        streaming online learner and every cluster worker replica fold
        batches through this one helper, so single-process and sharded
        online learning stay update-for-update identical.  Returns ``None``
        when the batch carries nothing learnable.
        """
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        if batch.features is None or not batch.labels:
            return None
        name_to_index = {name: i for i, name in enumerate(self._class_names)}
        known = [i for i, label in enumerate(batch.labels) if label in name_to_index]
        if not known:
            return None
        y = np.asarray(
            [name_to_index[batch.labels[i]] for i in known], dtype=np.int64
        )
        return batch.features[known], y

    # --------------------------------------------------------------- detect
    def detect_flows(self, flows: Sequence[FlowRecord]) -> DetectionResult:
        """Classify flow records and raise alerts for predicted attacks."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        flows = list(flows)
        if not flows:
            return DetectionResult([], [], [], 0.0, [])
        batch = ServingBatch(flows=flows)
        run_stages(self.stages, batch, self.telemetry)
        return DetectionResult.from_batch(batch)

    def detect_packets(self, packets: Sequence[Packet], idle_timeout: float = 5.0) -> DetectionResult:
        """Assemble packets into flows and classify them."""
        table = FlowTable(idle_timeout=idle_timeout)
        flows = table.add_packets(list(packets)) + table.flush()
        return self.detect_flows(flows)

    def evaluate_dataset(self, dataset: NIDSDataset) -> DetectionReport:
        """Detection report of the trained classifier on a dataset's test split."""
        if self._class_names is None:
            raise NotFittedError("the detection pipeline is not trained yet")
        predictions = self.classifier.predict(dataset.X_test)
        attack_mask = dataset.schema.attack_mask if dataset.schema is not None else None
        return detection_report(
            dataset.y_test, predictions, dataset.class_names, attack_mask=attack_mask
        )

    # ------------------------------------------------------------- internals
    @staticmethod
    def _confidences(scores: np.ndarray) -> np.ndarray:
        """Normalized best-vs-runner-up margin (see ``score_confidences``)."""
        return score_confidences(scores)
