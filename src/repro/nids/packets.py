"""Synthetic packet-level traffic generation.

Generates packet streams with labeled benign and attack behaviour so the flow
assembly, feature extraction and detection pipeline can be exercised without
captured traffic.  Each :class:`TrafficProfile` describes one behaviour
(web browsing, port scanning, SYN flood, SSH brute force, data exfiltration)
in terms of how its flows look at the packet level: packet counts, sizes,
inter-arrival times, port selection and TCP flag usage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike, ensure_rng

#: TCP flag bit positions used in the synthetic packets.
TCP_FLAGS = {"FIN": 0x01, "SYN": 0x02, "RST": 0x04, "PSH": 0x08, "ACK": 0x10, "URG": 0x20}


@dataclass(frozen=True)
class Packet:
    """A single synthetic packet.

    Only the header fields the feature extractor needs are modeled.
    """

    timestamp: float
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    protocol: str
    length: int
    tcp_flags: int = 0
    #: Ground-truth label of the flow this packet belongs to (for evaluation).
    label: str = "benign"


@dataclass(frozen=True)
class TrafficProfile:
    """Statistical description of one traffic behaviour.

    Attributes
    ----------
    name:
        Behaviour label (also used as the ground-truth flow label).
    is_attack:
        Whether flows of this profile should trigger alerts.
    packets_per_flow:
        ``(mean, std)`` of the number of forward packets in a flow.
    packet_length:
        ``(mean, std)`` of packet payload sizes in bytes.
    inter_arrival:
        ``(mean, std)`` of intra-flow packet spacing in seconds.
    dst_ports:
        Candidate destination ports (one chosen per flow, except for port
        scans which walk many ports).
    protocol:
        ``"tcp"``, ``"udp"`` or ``"icmp"``.
    syn_only:
        If True, packets carry only SYN flags (scan / flood behaviour).
    reply_ratio:
        Average number of reverse-direction packets per forward packet.
    port_sweep:
        If True, each packet targets a different destination port.
    """

    name: str
    is_attack: bool
    packets_per_flow: Tuple[float, float] = (12.0, 4.0)
    packet_length: Tuple[float, float] = (560.0, 240.0)
    inter_arrival: Tuple[float, float] = (0.05, 0.02)
    dst_ports: Tuple[int, ...] = (80, 443)
    protocol: str = "tcp"
    syn_only: bool = False
    reply_ratio: float = 0.9
    port_sweep: bool = False


#: Built-in profiles used by the examples and the streaming tests.
DEFAULT_PROFILES: Tuple[TrafficProfile, ...] = (
    TrafficProfile(
        name="benign",
        is_attack=False,
        packets_per_flow=(18.0, 8.0),
        packet_length=(640.0, 320.0),
        inter_arrival=(0.08, 0.05),
        dst_ports=(80, 443, 22, 53, 8080),
        reply_ratio=0.95,
    ),
    TrafficProfile(
        name="port_scan",
        is_attack=True,
        packets_per_flow=(40.0, 10.0),
        packet_length=(60.0, 4.0),
        inter_arrival=(0.002, 0.001),
        dst_ports=tuple(range(1, 1024, 7)),
        syn_only=True,
        reply_ratio=0.05,
        port_sweep=True,
    ),
    TrafficProfile(
        name="syn_flood",
        is_attack=True,
        packets_per_flow=(120.0, 30.0),
        packet_length=(60.0, 2.0),
        inter_arrival=(0.0005, 0.0002),
        dst_ports=(80,),
        syn_only=True,
        reply_ratio=0.0,
    ),
    TrafficProfile(
        name="ssh_bruteforce",
        is_attack=True,
        packets_per_flow=(26.0, 6.0),
        packet_length=(120.0, 40.0),
        inter_arrival=(0.3, 0.1),
        dst_ports=(22,),
        reply_ratio=0.8,
    ),
    TrafficProfile(
        name="exfiltration",
        is_attack=True,
        packets_per_flow=(220.0, 60.0),
        packet_length=(1380.0, 80.0),
        inter_arrival=(0.01, 0.004),
        dst_ports=(8443, 4444),
        reply_ratio=0.1,
    ),
)


class TrafficGenerator:
    """Generates labeled packet streams from a mixture of traffic profiles.

    Parameters
    ----------
    profiles:
        Traffic profiles to mix (defaults to :data:`DEFAULT_PROFILES`).
    profile_weights:
        Relative frequency of each profile; defaults to 70% benign with the
        attack profiles sharing the remainder.
    n_hosts:
        Number of distinct internal hosts generating traffic.
    subnet:
        Dotted /24 prefix the internal hosts live in (``"10.0.0"`` by
        default).  The multi-tenant fabric keys flows to tenants by source
        subnet, so per-tenant generators use distinct prefixes
        (``"10.<tenant>.0"``) to produce attributable traffic.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        profiles: Sequence[TrafficProfile] = DEFAULT_PROFILES,
        profile_weights: Optional[Sequence[float]] = None,
        n_hosts: int = 32,
        subnet: str = "10.0.0",
        seed: SeedLike = None,
    ):
        if not profiles:
            raise ConfigurationError("at least one traffic profile is required")
        self.profiles = tuple(profiles)
        if profile_weights is None:
            benign_weight = 0.7
            n_attack = sum(1 for p in self.profiles if p.is_attack)
            n_benign = len(self.profiles) - n_attack
            if n_benign == 0 or n_attack == 0:
                profile_weights = [1.0] * len(self.profiles)
            else:
                profile_weights = [
                    benign_weight / n_benign if not p.is_attack else (1 - benign_weight) / n_attack
                    for p in self.profiles
                ]
        weights = np.asarray(profile_weights, dtype=np.float64)
        if weights.shape[0] != len(self.profiles) or np.any(weights <= 0):
            raise ConfigurationError("profile_weights must be positive, one per profile")
        self._weights = weights / weights.sum()
        if n_hosts < 2:
            raise ConfigurationError("n_hosts must be >= 2")
        self._n_hosts = int(n_hosts)
        subnet = str(subnet).rstrip(".")
        if not subnet or len(subnet.split(".")) != 3:
            raise ConfigurationError(
                f"subnet must be a dotted /24 prefix like '10.0.0', got {subnet!r}"
            )
        self.subnet = subnet
        self._rng = ensure_rng(seed)

    # ------------------------------------------------------------------- API
    def generate_flow_packets(self, profile: TrafficProfile, start_time: float) -> List[Packet]:
        """Generate the packets of a single flow following ``profile``."""
        rng = self._rng
        src_ip = f"{self.subnet}.{rng.integers(2, self._n_hosts + 2)}"
        dst_ip = f"192.168.1.{rng.integers(2, 250)}"
        src_port = int(rng.integers(1024, 65535))
        base_port = int(rng.choice(profile.dst_ports))
        n_packets = max(2, int(rng.normal(*profile.packets_per_flow)))

        packets: List[Packet] = []
        t = start_time
        for i in range(n_packets):
            t += max(1e-6, rng.normal(*profile.inter_arrival))
            length = max(40, int(rng.normal(*profile.packet_length)))
            if profile.port_sweep:
                dst_port = int(profile.dst_ports[i % len(profile.dst_ports)])
            else:
                dst_port = base_port
            if profile.protocol == "tcp":
                if profile.syn_only:
                    flags = TCP_FLAGS["SYN"]
                elif i == 0:
                    flags = TCP_FLAGS["SYN"]
                elif i == n_packets - 1:
                    flags = TCP_FLAGS["FIN"] | TCP_FLAGS["ACK"]
                else:
                    flags = TCP_FLAGS["ACK"] | (TCP_FLAGS["PSH"] if length > 100 else 0)
            else:
                flags = 0
            packets.append(
                Packet(
                    timestamp=t,
                    src_ip=src_ip,
                    dst_ip=dst_ip,
                    src_port=src_port,
                    dst_port=dst_port,
                    protocol=profile.protocol,
                    length=length,
                    tcp_flags=flags,
                    label=profile.name,
                )
            )
            # Reverse-direction packets (server replies).
            if rng.random() < profile.reply_ratio:
                t += max(1e-6, rng.normal(*profile.inter_arrival) * 0.5)
                packets.append(
                    Packet(
                        timestamp=t,
                        src_ip=dst_ip,
                        dst_ip=src_ip,
                        src_port=dst_port,
                        dst_port=src_port,
                        protocol=profile.protocol,
                        length=max(40, int(rng.normal(*profile.packet_length) * 0.6)),
                        tcp_flags=TCP_FLAGS["ACK"] if profile.protocol == "tcp" else 0,
                        label=profile.name,
                    )
                )
        return packets

    def generate(self, n_flows: int, start_time: float = 0.0) -> List[Packet]:
        """Generate ``n_flows`` flows' worth of packets, time-ordered."""
        if n_flows < 1:
            raise ConfigurationError("n_flows must be >= 1")
        packets: List[Packet] = []
        t = start_time
        for _ in range(n_flows):
            profile = self.profiles[int(self._rng.choice(len(self.profiles), p=self._weights))]
            flow_packets = self.generate_flow_packets(profile, t)
            packets.extend(flow_packets)
            # Flows overlap slightly, as on a real link.
            t += float(self._rng.exponential(0.05))
        packets.sort(key=lambda p: p.timestamp)
        return packets

    def stream(self, n_flows: int, start_time: float = 0.0) -> Iterator[Packet]:
        """Yield the same packets as :meth:`generate`, one at a time."""
        yield from self.generate(n_flows, start_time)

    def profile_names(self) -> List[str]:
        """Names of the configured profiles (the label space of the stream)."""
        return [p.name for p in self.profiles]
