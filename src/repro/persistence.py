"""Saving and loading trained HDC models.

Edge deployment (the paper's motivating scenario) needs the trained model to be
exported from the training machine and loaded on the device.  For an HDC model
the deployable state is small and simple: the encoder's base vectors/phases and
the class hypervector matrix.  This module serializes that state for
:class:`repro.core.CyberHD` and :class:`repro.models.BaselineHDC` into a single
NumPy ``.npz`` archive.

Only the RBF and linear encoders are supported for export (they are defined by
dense base matrices); the level-ID encoder stores per-feature codebooks and is
rarely the deployment choice for the flow workloads studied here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.config import CyberHDConfig
from repro.core.cyberhd import CyberHD
from repro.exceptions import ConfigurationError, NotFittedError
from repro.hdc.encoders.linear import LinearEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.models.hdc_classifier import BaselineHDC

HDCModel = Union[CyberHD, BaselineHDC]

_FORMAT_VERSION = 1


def save_model(model: HDCModel, path: Union[str, Path]) -> Path:
    """Serialize a fitted HDC model to ``path`` (``.npz`` archive).

    Raises
    ------
    NotFittedError
        If the model has not been fitted.
    ConfigurationError
        If the model uses an encoder that cannot be exported.
    """
    if model.class_hypervectors_ is None or model.encoder_ is None:
        raise NotFittedError("cannot save an unfitted model")
    encoder = model.encoder_
    if isinstance(encoder, RBFEncoder):
        encoder_kind = "rbf"
        encoder_arrays = {
            "encoder_bases": np.asarray(encoder.bases),
            "encoder_phases": np.asarray(encoder.phases),
        }
        encoder_params = np.array([encoder.gamma])
    elif isinstance(encoder, LinearEncoder):
        encoder_kind = "linear"
        encoder_arrays = {"encoder_bases": np.asarray(encoder.bases)}
        encoder_params = np.array([])
    else:
        raise ConfigurationError(
            f"persistence supports the rbf and linear encoders, not {type(encoder).__name__}"
        )

    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.array([_FORMAT_VERSION]),
        model_kind=np.array([type(model).__name__]),
        encoder_kind=np.array([encoder_kind]),
        encoder_params=encoder_params,
        encoder_activation=np.array(
            [encoder.activation if isinstance(encoder, LinearEncoder) else ""]
        ),
        class_hypervectors=model.class_hypervectors_,
        classes=model.classes_,
        n_features_in=np.array([model.n_features_in_]),
        regenerated_total=np.array([encoder.regenerated_total]),
        # 0 encodes "no quantized inference" (bitwidths are always >= 1).
        inference_bits=np.array(
            [
                model.config.inference_bits or 0
                if isinstance(model, CyberHD)
                else model.inference_bits or 0
            ]
        ),
        **encoder_arrays,
    )
    # np.savez appends .npz only when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_model(path: Union[str, Path]) -> HDCModel:
    """Load a model saved with :func:`save_model`.

    The returned model predicts identically to the saved one; training state
    that is irrelevant for inference (fit history, regeneration events) is not
    restored.
    """
    archive = np.load(Path(path), allow_pickle=False)
    version = int(archive["format_version"][0])
    if version != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported model file version {version}")

    model_kind = str(archive["model_kind"][0])
    encoder_kind = str(archive["encoder_kind"][0])
    class_hypervectors = archive["class_hypervectors"]
    n_classes, dim = class_hypervectors.shape
    n_features = int(archive["n_features_in"][0])

    # Restore the dtype policy the model was trained with, so the rebuilt
    # encoder casts inputs to the same precision as the saved base vectors.
    encoder_dtype = archive["encoder_bases"].dtype
    if encoder_kind == "rbf":
        encoder = RBFEncoder(
            in_features=n_features,
            dim=dim,
            gamma=float(archive["encoder_params"][0]),
            dtype=encoder_dtype,
        )
        encoder._bases = archive["encoder_bases"].copy()
        encoder._phases = archive["encoder_phases"].copy()
    elif encoder_kind == "linear":
        activation = str(archive["encoder_activation"][0]) or "tanh"
        encoder = LinearEncoder(
            in_features=n_features, dim=dim, activation=activation, dtype=encoder_dtype
        )
        encoder._bases = archive["encoder_bases"].copy()
    else:
        raise ConfigurationError(f"unknown encoder kind {encoder_kind!r} in model file")
    encoder._regenerated_total = int(archive["regenerated_total"][0])

    # Older archives predate the quantized-inference option.
    inference_bits = None
    if "inference_bits" in archive and int(archive["inference_bits"][0]) > 0:
        inference_bits = int(archive["inference_bits"][0])

    if model_kind == "CyberHD":
        model: HDCModel = CyberHD(
            CyberHDConfig(
                dim=dim,
                encoder=encoder_kind,
                dtype=encoder_dtype.name,
                inference_bits=inference_bits,
            )
        )
    elif model_kind == "BaselineHDC":
        model = BaselineHDC(
            dim=dim,
            encoder=encoder_kind,
            dtype=encoder_dtype.name,
            inference_bits=inference_bits,
        )
    else:
        raise ConfigurationError(f"unknown model kind {model_kind!r} in model file")

    model.encoder_ = encoder
    model.class_hypervectors_ = class_hypervectors.copy()
    model.classes_ = archive["classes"].copy()
    model.n_features_in_ = n_features
    return model
