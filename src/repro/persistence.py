"""Saving and loading trained HDC models and detection pipelines.

Edge deployment (the paper's motivating scenario) needs the trained model to be
exported from the training machine and loaded on the device.  For an HDC model
the deployable state is small and simple: the encoder's base vectors/phases and
the class hypervector matrix.  This module serializes that state for
:class:`repro.core.CyberHD` and :class:`repro.models.BaselineHDC` into a single
NumPy ``.npz`` archive.

For the serving path, :func:`save_pipeline` / :func:`load_pipeline` extend the
same archive with the pipeline-level deployment state -- the training-time
feature scaler, the class-name table and the benign class set -- so a
``DetectionPipeline`` restored on the edge device classifies (and keeps
learning online via ``partial_fit``) identically to the one that was trained.

Only the RBF and linear encoders are supported for export (they are defined by
dense base matrices); the level-ID encoder stores per-feature codebooks and is
rarely the deployment choice for the flow workloads studied here.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.config import CyberHDConfig
from repro.core.cyberhd import CyberHD
from repro.exceptions import ConfigurationError, NotFittedError
from repro.hdc.encoders.linear import LinearEncoder
from repro.hdc.encoders.rbf import RBFEncoder
from repro.models.hdc_classifier import BaselineHDC
from repro.nids.pipeline import DetectionPipeline

HDCModel = Union[CyberHD, BaselineHDC]

_FORMAT_VERSION = 1


def _model_payload(model: HDCModel) -> Dict[str, np.ndarray]:
    """The array payload describing a fitted model (shared by both savers)."""
    if model.class_hypervectors_ is None or model.encoder_ is None:
        raise NotFittedError("cannot save an unfitted model")
    encoder = model.encoder_
    if isinstance(encoder, RBFEncoder):
        encoder_kind = "rbf"
        encoder_arrays = {
            "encoder_bases": np.asarray(encoder.bases),
            "encoder_phases": np.asarray(encoder.phases),
        }
        encoder_params = np.array([encoder.gamma])
    elif isinstance(encoder, LinearEncoder):
        encoder_kind = "linear"
        encoder_arrays = {"encoder_bases": np.asarray(encoder.bases)}
        encoder_params = np.array([])
    else:
        raise ConfigurationError(
            f"persistence supports the rbf and linear encoders, not {type(encoder).__name__}"
        )
    payload = {
        "format_version": np.array([_FORMAT_VERSION]),
        "model_kind": np.array([type(model).__name__]),
        "encoder_kind": np.array([encoder_kind]),
        "encoder_params": encoder_params,
        "encoder_activation": np.array(
            [encoder.activation if isinstance(encoder, LinearEncoder) else ""]
        ),
        "class_hypervectors": model.class_hypervectors_,
        "classes": model.classes_,
        "n_features_in": np.array([model.n_features_in_]),
        "regenerated_total": np.array([encoder.regenerated_total]),
        # 0 encodes "no quantized inference" (bitwidths are always >= 1).
        "inference_bits": np.array(
            [
                model.config.inference_bits or 0
                if isinstance(model, CyberHD)
                else model.inference_bits or 0
            ]
        ),
    }
    payload.update(encoder_arrays)
    if getattr(model, "inference_bits", None) == 1:
        # The packed 1-bit serving artifact rides along: 64 dims per uint64
        # word plus [scale, norms...].  Restoring it verbatim (rather than
        # re-packing from the float matrix) keeps the deployed words
        # bit-exact -- including any deliberately injected faults a
        # robustness study wants to persist.
        packed = model.packed_class_matrix()
        payload["packed_words"] = packed.words
        payload["packed_state"] = np.concatenate(([packed.scale], packed.norms))
        payload["packed_dim"] = np.array([packed.dim])
    return payload


def _model_from_archive(archive, copy_arrays: bool = True) -> HDCModel:
    """Rebuild a model from its archive payload.

    ``copy_arrays=False`` assigns the archive's arrays directly instead of
    copying -- the zero-copy path the cluster subsystem uses to attach
    replicas to a shared-memory publication (the "archive" is then a dict of
    views over shared buffers).  Callers of the zero-copy path own the
    aliasing consequences: the encoder tensors are shared read-only, and the
    class matrix must be re-copied before any in-place training.
    """
    version = int(archive["format_version"][0])
    if version != _FORMAT_VERSION:
        raise ConfigurationError(f"unsupported model file version {version}")

    def arr(key: str) -> np.ndarray:
        return archive[key].copy() if copy_arrays else archive[key]

    model_kind = str(archive["model_kind"][0])
    encoder_kind = str(archive["encoder_kind"][0])
    class_hypervectors = arr("class_hypervectors")
    n_classes, dim = class_hypervectors.shape
    n_features = int(archive["n_features_in"][0])

    # Restore the dtype policy the model was trained with, so the rebuilt
    # encoder casts inputs to the same precision as the saved base vectors.
    encoder_dtype = archive["encoder_bases"].dtype
    if encoder_kind == "rbf":
        encoder = RBFEncoder(
            in_features=n_features,
            dim=dim,
            gamma=float(archive["encoder_params"][0]),
            dtype=encoder_dtype,
        )
        encoder._bases = arr("encoder_bases")
        encoder._phases = arr("encoder_phases")
    elif encoder_kind == "linear":
        activation = str(archive["encoder_activation"][0]) or "tanh"
        encoder = LinearEncoder(
            in_features=n_features, dim=dim, activation=activation, dtype=encoder_dtype
        )
        encoder._bases = arr("encoder_bases")
    else:
        raise ConfigurationError(f"unknown encoder kind {encoder_kind!r} in model file")
    encoder._regenerated_total = int(archive["regenerated_total"][0])

    # Older archives predate the quantized-inference option.
    inference_bits = None
    if "inference_bits" in archive and int(archive["inference_bits"][0]) > 0:
        inference_bits = int(archive["inference_bits"][0])

    if model_kind == "CyberHD":
        model: HDCModel = CyberHD(
            CyberHDConfig(
                dim=dim,
                encoder=encoder_kind,
                dtype=encoder_dtype.name,
                inference_bits=inference_bits,
            )
        )
    elif model_kind == "BaselineHDC":
        model = BaselineHDC(
            dim=dim,
            encoder=encoder_kind,
            dtype=encoder_dtype.name,
            inference_bits=inference_bits,
        )
    else:
        raise ConfigurationError(f"unknown model kind {model_kind!r} in model file")

    model.encoder_ = encoder
    model.class_hypervectors_ = class_hypervectors
    model.classes_ = archive["classes"].copy()
    model.n_features_in_ = n_features
    if inference_bits == 1 and "packed_words" in archive:
        from repro.hdc.bitpack import PackedClassMatrix

        state = np.asarray(archive["packed_state"], dtype=np.float64)
        model._packed_classes = PackedClassMatrix(
            words=np.array(archive["packed_words"], dtype=np.uint64, copy=True),
            dim=int(archive["packed_dim"][0]),
            scale=float(state[0]),
            norms=state[1:].copy(),
        )
    return model


def _normalized_npz_path(path: Path) -> Path:
    # np.savez appends .npz only when missing; normalize the returned path.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def save_model(model: HDCModel, path: Union[str, Path]) -> Path:
    """Serialize a fitted HDC model to ``path`` (``.npz`` archive).

    Raises
    ------
    NotFittedError
        If the model has not been fitted.
    ConfigurationError
        If the model uses an encoder that cannot be exported.
    """
    path = Path(path)
    np.savez_compressed(path, **_model_payload(model))
    return _normalized_npz_path(path)


def load_model(path: Union[str, Path]) -> HDCModel:
    """Load a model saved with :func:`save_model`.

    The returned model predicts identically to the saved one; training state
    that is irrelevant for inference (fit history, regeneration events) is not
    restored.
    """
    archive = np.load(Path(path), allow_pickle=False)
    if "artifact_kind" in archive and str(archive["artifact_kind"][0]) != "model":
        raise ConfigurationError(
            "this archive holds a detection pipeline; use load_pipeline()"
        )
    return _model_from_archive(archive)


def pipeline_state_dict(pipeline: DetectionPipeline) -> Dict[str, np.ndarray]:
    """The full deployment state of a trained pipeline as an array dict.

    This is exactly the payload :func:`save_pipeline` writes -- the
    classifier state (encoder tensors, class hypervectors), the fitted
    feature scaler, the class-name table and the benign class set -- exposed
    in memory so other transports can ship it: the cluster subsystem
    publishes these arrays in ``multiprocessing.shared_memory`` blocks and
    worker replicas rebuild the pipeline with :func:`pipeline_from_state`
    without any file round-trip of the heavy tensors.
    """
    if not pipeline.is_fitted:
        raise NotFittedError("cannot export an untrained pipeline")
    classifier = pipeline.classifier
    if not isinstance(classifier, (CyberHD, BaselineHDC)):
        raise ConfigurationError(
            f"pipeline persistence supports HDC classifiers, not {type(classifier).__name__}"
        )
    payload = _model_payload(classifier)
    payload["artifact_kind"] = np.array(["pipeline"])
    payload["class_names"] = np.array(list(pipeline.class_names))
    payload["benign_classes"] = np.array(list(pipeline._benign))
    scaler = pipeline._scaler
    if scaler is not None and scaler.min_ is not None:
        payload["scaler_min"] = np.asarray(scaler.min_)
        payload["scaler_max"] = np.asarray(scaler.max_)
    return payload


def pipeline_from_state(state, copy_arrays: bool = True) -> DetectionPipeline:
    """Rebuild a :class:`DetectionPipeline` from a state mapping.

    ``state`` is anything indexable like the dict from
    :func:`pipeline_state_dict` (including an ``np.load`` archive).  With
    ``copy_arrays=False`` the encoder tensors and class matrix are assigned
    as views of the provided arrays -- the zero-copy shared-memory attach
    path (see ``repro.cluster.shared_model``).
    """
    from repro.datasets.preprocessing import MinMaxScaler

    if "artifact_kind" not in state or str(state["artifact_kind"][0]) != "pipeline":
        raise ConfigurationError(
            "this archive holds a bare model; use load_model(), or re-save the "
            "pipeline with save_pipeline()"
        )
    model = _model_from_archive(state, copy_arrays=copy_arrays)
    pipeline = DetectionPipeline(
        classifier=model,
        benign_classes=[str(name) for name in state["benign_classes"]],
    )
    pipeline._class_names = tuple(str(name) for name in state["class_names"])
    if "scaler_min" in state:
        scaler = MinMaxScaler()
        scaler.min_ = np.asarray(state["scaler_min"]).copy()
        scaler.max_ = np.asarray(state["scaler_max"]).copy()
        pipeline._scaler = scaler
    pipeline._train_seconds = None
    return pipeline


#: Separator between a namespace tag and the state key inside one archive.
#: Chosen to never collide with state-dict keys (which are identifiers).
_NAMESPACE_SEP = "::"


def pack_namespaced_states(
    states: Dict[str, Dict[str, np.ndarray]]
) -> Dict[str, np.ndarray]:
    """Flatten many state dicts into one ``np.savez``-able payload.

    Each entry of ``states`` maps a namespace tag (e.g. the fabric
    registry's ``"t00003v00002"`` tenant/version slot) to a full pipeline
    state dict; keys come back as ``"<tag>::<key>"``.  Tags must not contain
    the separator.
    """
    payload: Dict[str, np.ndarray] = {}
    for tag, state in states.items():
        if _NAMESPACE_SEP in tag:
            raise ConfigurationError(
                f"namespace tag {tag!r} must not contain {_NAMESPACE_SEP!r}"
            )
        for key, value in state.items():
            payload[f"{tag}{_NAMESPACE_SEP}{key}"] = np.asarray(value)
    return payload


def unpack_namespaced_states(archive) -> Dict[str, Dict[str, np.ndarray]]:
    """Invert :func:`pack_namespaced_states` over an archive or array dict.

    Keys without the namespace separator are ignored, so namespaced states
    can ride in the same archive as flat metadata arrays.
    """
    states: Dict[str, Dict[str, np.ndarray]] = {}
    keys = archive.files if hasattr(archive, "files") else archive.keys()
    for full_key in keys:
        tag, sep, key = full_key.partition(_NAMESPACE_SEP)
        if not sep:
            continue
        states.setdefault(tag, {})[key] = archive[full_key]
    return states


def save_pipeline(pipeline: DetectionPipeline, path: Union[str, Path]) -> Path:
    """Serialize a trained :class:`DetectionPipeline` for serving deployment.

    The archive contains the classifier payload plus the pipeline state the
    serving path needs: the fitted feature scaler (when the pipeline was
    trained from flows), the ordered class-name table, and the benign class
    set.  Restore with :func:`load_pipeline`.
    """
    if hasattr(pipeline, "cascade_stage"):
        raise ConfigurationError(
            "this pipeline is a cascade (two heads); save_pipeline would "
            "silently drop the pre-filter -- use save_cascade()"
        )
    payload = pipeline_state_dict(pipeline)
    path = Path(path)
    np.savez_compressed(path, **payload)
    return _normalized_npz_path(path)


def load_pipeline(path: Union[str, Path]) -> DetectionPipeline:
    """Load a pipeline saved with :func:`save_pipeline`.

    The restored pipeline detects identically to the saved one and remains
    online-updatable (``partial_fit_flows``); alert-manager state (dedup
    history) is not carried over.
    """
    archive = np.load(Path(path), allow_pickle=False)
    if "artifact_kind" in archive and str(archive["artifact_kind"][0]) == "cascade":
        raise ConfigurationError(
            "this archive holds a cascaded detector; use load_cascade()"
        )
    return pipeline_from_state(archive)


def cascade_state_dict(cascade) -> Dict[str, np.ndarray]:
    """The deployment state of a cascaded detector as one flat array dict.

    Both heads' full pipeline states ride in the ``prefilter::`` and
    ``multiclass::`` namespaces (:func:`pack_namespaced_states`); the
    cascade-level knobs (escalation margin, benign naming) travel as flat
    metadata arrays, which :func:`unpack_namespaced_states` ignores by
    design.
    """
    if not hasattr(cascade, "cascade_stage"):
        raise ConfigurationError(
            f"cascade persistence expects a CascadePipeline, got "
            f"{type(cascade).__name__}"
        )
    payload = pack_namespaced_states(
        {
            "prefilter": pipeline_state_dict(cascade.prefilter),
            "multiclass": pipeline_state_dict(cascade.multiclass),
        }
    )
    payload["artifact_kind"] = np.array(["cascade"])
    payload["escalation_margin"] = np.array([cascade.escalation_margin])
    payload["benign_class"] = np.array([cascade.benign_class])
    return payload


def save_cascade(cascade, path: Union[str, Path]) -> Path:
    """Serialize a trained cascade (both heads + knobs) to one archive."""
    payload = cascade_state_dict(cascade)
    path = Path(path)
    np.savez_compressed(path, **payload)
    return _normalized_npz_path(path)


def load_cascade(path: Union[str, Path]):
    """Load a cascaded detector saved with :func:`save_cascade`.

    The restored :class:`~repro.cascade.pipeline.CascadePipeline` serves
    identically to the saved one: both heads' packed/quantized inference
    artifacts are restored verbatim, and the escalation margin and benign
    naming come back from the archive's flat metadata.
    """
    # Deferred import: the cascade package composes pipeline + persistence
    # machinery, so persistence must not import it at module level.
    from repro.cascade.pipeline import CascadeConfig, CascadePipeline

    archive = np.load(Path(path), allow_pickle=False)
    if "artifact_kind" not in archive or str(archive["artifact_kind"][0]) != "cascade":
        raise ConfigurationError(
            "this archive does not hold a cascaded detector; use "
            "load_pipeline() or load_model()"
        )
    states = unpack_namespaced_states(archive)
    missing = {"prefilter", "multiclass"} - set(states)
    if missing:
        raise ConfigurationError(
            f"cascade archive is missing the {sorted(missing)} head state"
        )
    prefilter = pipeline_from_state(states["prefilter"])
    multiclass = pipeline_from_state(states["multiclass"])
    return CascadePipeline(
        prefilter,
        multiclass,
        config=CascadeConfig(
            escalation_margin=float(archive["escalation_margin"][0]),
            benign_class=str(archive["benign_class"][0]),
        ),
    )
