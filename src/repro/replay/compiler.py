"""Compiling tabular NIDS datasets into replayable packet traces.

A :class:`~repro.datasets.NIDSDataset` row is an already-aggregated flow
record; the serving stack consumes packets.  :class:`DatasetTraceCompiler`
inverts the aggregation just enough to drive the serving path: every row
becomes one synthetic flow whose packet-level shape *honors the row's
features* -- scaled duration, byte-count and packet-count features (resolved
per dataset schema by name) set the flow's duration, packet counts and
payload sizes, and the row's one-hot protocol column picks the transport.
Rows the schema cannot describe fall back to seeded defaults.

Three properties make the compiled trace usable as a differential-testing
workload:

* **Determinism** -- every random draw comes from a generator seeded by
  ``(seed, row_index)``, so identical inputs compile to byte-identical
  traces (asserted by :meth:`CompiledTrace.digest`).
* **Row/flow bijection** -- each row gets a globally unique endpoint pair,
  intra-flow gaps stay below the serving flow table's idle timeout and the
  flow duration stays below its duration cap, so flow assembly reconstructs
  exactly one flow per row under every serving path.  The flow's canonical
  token (:attr:`repro.nids.flow.FlowKey.token`) is the join key between a
  dataset row and its serving-path prediction.
* **Realistic interleave** -- flow start times follow a seeded Poisson
  process whose rate is set by ``concurrency`` (mean flows in flight) and
  compressed by ``time_warp``, so flows overlap on the timeline the way
  connections overlap on a real link instead of replaying one flow at a
  time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import NIDSDataset
from repro.exceptions import ConfigurationError, DatasetError
from repro.nids.flow import FlowKey
from repro.nids.packets import Packet, TCP_FLAGS

#: Benign label spellings (mirrors ``DetectionPipeline.DEFAULT_BENIGN_NAMES``;
#: kept literal here so the compiler does not import the pipeline).
_BENIGN_NAMES = ("normal", "benign", "background")

#: Feature-name candidates (lowercased, exact match, priority order) for each
#: packet-level cue the compiler honors.  Covers the four paper schemas.
_CUE_CANDIDATES: Dict[str, Tuple[str, ...]] = {
    "duration": ("duration", "dur", "flow_duration"),
    "fwd_bytes": ("src_bytes", "sbytes", "totlen_fwd_pkts", "subflow_fwd_byts"),
    "bwd_bytes": ("dst_bytes", "dbytes", "totlen_bwd_pkts", "subflow_bwd_byts"),
    "fwd_packets": ("spkts", "tot_fwd_pkts", "count", "fwd_pkts"),
    "bwd_packets": ("dpkts", "tot_bwd_pkts", "srv_count", "bwd_pkts"),
}

#: Prefixes of one-hot protocol columns (``<feature>=<category>``).
_PROTOCOL_PREFIXES = ("protocol_type=", "proto=", "protocol=")

#: Transports the packet substrate models; anything else compiles as TCP.
_KNOWN_PROTOCOLS = ("tcp", "udp", "icmp")

#: Destination ports assigned round-robin per row when no service cue exists.
_COMMON_PORTS = (80, 443, 22, 53, 25, 8080, 3306, 8443)


@dataclass(frozen=True)
class TraceFlow:
    """Ground-truth metadata of one compiled flow (== one dataset row)."""

    token: str
    row_index: int
    label: str
    is_attack: bool
    protocol: str
    n_packets: int
    n_bytes: int
    start_time: float
    end_time: float


@dataclass
class CompiledTrace:
    """A replayable packet stream compiled from one dataset split.

    ``packets`` is time-ordered and ready for any serving path;``flows``
    carries the per-row ground truth (label, attack flag, flow token) the
    replay metrics and the golden-trace harness join against.
    """

    name: str
    dataset_name: str
    split: str
    seed: int
    class_names: Tuple[str, ...]
    attack_classes: frozenset
    packets: List[Packet] = field(default_factory=list)
    flows: List[TraceFlow] = field(default_factory=list)
    #: Which packet-level cues were resolved to dataset columns.
    resolved_cues: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------ properties
    @property
    def n_flows(self) -> int:
        """Number of compiled flows (== dataset rows compiled)."""
        return len(self.flows)

    @property
    def n_packets(self) -> int:
        """Total packets in the trace."""
        return len(self.packets)

    @property
    def n_attack_flows(self) -> int:
        """Flows whose ground-truth class is an attack."""
        return sum(1 for flow in self.flows if flow.is_attack)

    @property
    def duration_seconds(self) -> float:
        """Trace timeline length (first to last packet)."""
        if not self.packets:
            return 0.0
        return float(self.packets[-1].timestamp - self.packets[0].timestamp)

    # ------------------------------------------------------------------- API
    def flow_by_token(self) -> Dict[str, TraceFlow]:
        """Ground-truth flow metadata keyed by canonical flow token."""
        return {flow.token: flow for flow in self.flows}

    def digest(self) -> str:
        """Content hash of the packet stream (the determinism witness)."""
        h = blake2b(digest_size=16)
        for p in self.packets:
            h.update(
                (
                    f"{p.timestamp:.9f}|{p.src_ip}:{p.src_port}>"
                    f"{p.dst_ip}:{p.dst_port}|{p.protocol}|{p.length}|"
                    f"{p.tcp_flags}|{p.label}\n"
                ).encode()
            )
        return h.hexdigest()

    def summary(self) -> str:
        """One-line human description."""
        return (
            f"trace {self.name}: {self.n_flows} flows / {self.n_packets} packets "
            f"over {self.duration_seconds:.1f}s trace-time, "
            f"{self.n_attack_flows} attack flows"
        )


class DatasetTraceCompiler:
    """Per-row flow synthesis from a tabular dataset split.

    Parameters
    ----------
    duration_scale:
        A row whose (scaled) duration feature is 1.0 compiles to a flow this
        many seconds long.  Kept well under the flow table's
        ``max_flow_duration`` (120 s) so no flow is force-split.
    max_gap_seconds:
        Upper bound on intra-flow packet gaps.  Must stay below the serving
        idle timeout (5 s default) so a compiled flow can never be expired
        mid-life -- the row/flow bijection depends on it.
    max_fwd_packets, max_bwd_packets:
        Packet-count range the scaled packet-count cues map onto.
    concurrency:
        Target mean number of flows in flight; sets the Poisson start-time
        spacing so flows interleave.
    time_warp:
        Timeline compression factor (> 1 squeezes start gaps, raising
        overlap and packet rate without changing any flow's shape).
    start_time:
        Timestamp of the trace origin.
    """

    def __init__(
        self,
        duration_scale: float = 40.0,
        max_gap_seconds: float = 4.0,
        max_fwd_packets: int = 48,
        max_bwd_packets: int = 32,
        concurrency: float = 8.0,
        time_warp: float = 1.0,
        start_time: float = 0.0,
    ):
        if duration_scale <= 0:
            raise ConfigurationError("duration_scale must be positive")
        if max_gap_seconds <= 0:
            raise ConfigurationError("max_gap_seconds must be positive")
        if max_fwd_packets < 2:
            raise ConfigurationError("max_fwd_packets must be >= 2")
        if max_bwd_packets < 0:
            raise ConfigurationError("max_bwd_packets must be non-negative")
        if concurrency <= 0:
            raise ConfigurationError("concurrency must be positive")
        if time_warp <= 0:
            raise ConfigurationError("time_warp must be positive")
        self.duration_scale = float(duration_scale)
        self.max_gap_seconds = float(max_gap_seconds)
        self.max_fwd_packets = int(max_fwd_packets)
        self.max_bwd_packets = int(max_bwd_packets)
        self.concurrency = float(concurrency)
        self.time_warp = float(time_warp)
        self.start_time = float(start_time)

    # ------------------------------------------------------------------- API
    def compile(
        self,
        dataset: NIDSDataset,
        split: str = "test",
        seed: int = 0,
        limit: Optional[int] = None,
    ) -> CompiledTrace:
        """Compile one split of ``dataset`` into a packet trace.

        Parameters
        ----------
        dataset:
            The loaded (preprocessed) dataset.
        split:
            ``"test"`` (the serving workload) or ``"train"`` (the workload a
            pipeline is trained on before replay).
        seed:
            Trace seed; fully determines the output.
        limit:
            Compile only the first ``limit`` rows (small CI slices).
        """
        if split == "test":
            X, y = dataset.X_test, dataset.y_test
        elif split == "train":
            X, y = dataset.X_train, dataset.y_train
        else:
            raise DatasetError(f"split must be 'train' or 'test', got {split!r}")
        n_rows = X.shape[0] if limit is None else min(int(limit), X.shape[0])
        if n_rows < 1:
            raise DatasetError("cannot compile an empty split")

        cues = self._resolve_cues(dataset.feature_names)
        protocol_columns = self._protocol_columns(dataset.feature_names)
        attack_classes = self._attack_classes(dataset)

        # Seeded Poisson start times: mean spacing tuned so about
        # ``concurrency`` flows are in flight at the mean flow duration.
        start_rng = np.random.default_rng([int(seed), 104729])
        spacing = self.duration_scale / (2.0 * self.concurrency * self.time_warp)
        starts = self.start_time + np.cumsum(start_rng.exponential(spacing, size=n_rows))

        packets: List[Packet] = []
        flows: List[TraceFlow] = []
        for i in range(n_rows):
            label = str(dataset.class_names[int(y[i])])
            row = np.clip(np.asarray(X[i], dtype=np.float64), 0.0, 1.0)
            flow_packets = self._compile_row(
                i, row, label, cues, protocol_columns, float(starts[i]), seed
            )
            packets.extend(flow_packets)
            first, last = flow_packets[0], flow_packets[-1]
            flows.append(
                TraceFlow(
                    token=FlowKey.from_packet(first).token,
                    row_index=i,
                    label=label,
                    is_attack=label in attack_classes,
                    protocol=first.protocol,
                    n_packets=len(flow_packets),
                    n_bytes=sum(p.length for p in flow_packets),
                    start_time=first.timestamp,
                    end_time=last.timestamp,
                )
            )
        packets.sort(key=lambda p: p.timestamp)
        trace = CompiledTrace(
            name=f"{dataset.name}-{split}-s{seed}",
            dataset_name=dataset.name,
            split=split,
            seed=int(seed),
            class_names=tuple(dataset.class_names),
            attack_classes=attack_classes,
            packets=packets,
            flows=flows,
            resolved_cues={k: dataset.feature_names[v] for k, v in cues.items()},
        )
        if len({flow.token for flow in trace.flows}) != trace.n_flows:
            raise ConfigurationError(
                "trace compilation produced duplicate flow tokens"
            )  # pragma: no cover - defended by unique endpoint construction
        return trace

    # ------------------------------------------------------------- internals
    @staticmethod
    def _resolve_cues(feature_names: Sequence[str]) -> Dict[str, int]:
        """Map each packet-level cue to the first matching dataset column."""
        lowered = {name.lower(): idx for idx, name in enumerate(feature_names)}
        resolved: Dict[str, int] = {}
        for cue, candidates in _CUE_CANDIDATES.items():
            for candidate in candidates:
                if candidate in lowered:
                    resolved[cue] = lowered[candidate]
                    break
        return resolved

    @staticmethod
    def _protocol_columns(feature_names: Sequence[str]) -> List[Tuple[int, str]]:
        """One-hot protocol columns as ``(column_index, category)`` pairs."""
        columns: List[Tuple[int, str]] = []
        for idx, name in enumerate(feature_names):
            lowered = name.lower()
            for prefix in _PROTOCOL_PREFIXES:
                if lowered.startswith(prefix):
                    columns.append((idx, lowered[len(prefix) :]))
                    break
        return columns

    @staticmethod
    def _attack_classes(dataset: NIDSDataset) -> frozenset:
        if dataset.schema is not None:
            mask = dataset.schema.attack_mask
            return frozenset(
                name for name, attack in zip(dataset.class_names, mask) if attack
            )
        return frozenset(
            name for name in dataset.class_names if name.lower() not in _BENIGN_NAMES
        )

    def _cue(self, row: np.ndarray, cues: Dict[str, int], name: str, default: float) -> float:
        idx = cues.get(name)
        return float(row[idx]) if idx is not None else float(default)

    def _compile_row(
        self,
        row_index: int,
        row: np.ndarray,
        label: str,
        cues: Dict[str, int],
        protocol_columns: List[Tuple[int, str]],
        start: float,
        seed: int,
    ) -> List[Packet]:
        rng = np.random.default_rng([int(seed), 7919, int(row_index)])

        # ---- packet-level shape from the row's features -------------------
        duration = 0.05 + self._cue(row, cues, "duration", rng.random() * 0.3) * self.duration_scale
        n_fwd = 2 + int(round(self._cue(row, cues, "fwd_packets", rng.random() * 0.3) * (self.max_fwd_packets - 2)))
        n_bwd = int(round(self._cue(row, cues, "bwd_packets", rng.random() * 0.3) * self.max_bwd_packets))
        fwd_len = 40.0 + self._cue(row, cues, "fwd_bytes", rng.random() * 0.4) * 1420.0
        bwd_len = 40.0 + self._cue(row, cues, "bwd_bytes", rng.random() * 0.4) * 1420.0

        protocol = "tcp"
        if protocol_columns:
            best_idx, best_val = None, -1.0
            for col, category in protocol_columns:
                if row[col] > best_val:
                    best_idx, best_val = category, float(row[col])
            if best_idx in _KNOWN_PROTOCOLS:
                protocol = best_idx
            # Transports the packet substrate does not model stay TCP.

        # ---- unique endpoints: the row/flow bijection ---------------------
        src_ip = f"10.{(row_index >> 16) & 255}.{(row_index >> 8) & 255}.{row_index & 255}"
        dst_ip = f"172.16.{rng.integers(0, 16)}.{rng.integers(1, 255)}"
        src_port = 1024 + int(rng.integers(0, 60000))
        dst_port = int(_COMMON_PORTS[int(rng.integers(0, len(_COMMON_PORTS)))])

        # ---- timestamps: duration split into bounded gaps -----------------
        n = n_fwd + n_bwd
        if n > 1:
            weights = rng.random(n - 1) + 0.25
            gaps = duration * weights / weights.sum()
            gaps = np.minimum(gaps, self.max_gap_seconds)
            gaps = np.maximum(gaps, 1e-5)
            times = start + np.concatenate([[0.0], np.cumsum(gaps)])
        else:
            times = np.asarray([start])

        # ---- direction pattern (first packet is the initiator's) ----------
        directions = np.ones(n, dtype=bool)
        if n_bwd > 0:
            bwd_positions = rng.choice(np.arange(1, n), size=n_bwd, replace=False)
            directions[bwd_positions] = False

        # ---- payload sizes -------------------------------------------------
        fwd_sizes = np.clip(rng.normal(fwd_len, 0.15 * fwd_len + 4.0, size=n), 40, 1500)
        bwd_sizes = np.clip(rng.normal(bwd_len, 0.15 * bwd_len + 4.0, size=n), 40, 1500)

        packets: List[Packet] = []
        fwd_seen = 0
        for j in range(n):
            forward = bool(directions[j])
            length = int(fwd_sizes[j] if forward else bwd_sizes[j])
            flags = 0
            if protocol == "tcp":
                if forward and fwd_seen == 0:
                    flags = TCP_FLAGS["SYN"]
                elif j == n - 1:
                    flags = TCP_FLAGS["FIN"] | TCP_FLAGS["ACK"]
                else:
                    flags = TCP_FLAGS["ACK"] | (TCP_FLAGS["PSH"] if length > 100 else 0)
            fwd_seen += forward
            packets.append(
                Packet(
                    timestamp=float(times[j]),
                    src_ip=src_ip if forward else dst_ip,
                    dst_ip=dst_ip if forward else src_ip,
                    src_port=src_port if forward else dst_port,
                    dst_port=dst_port if forward else src_port,
                    protocol=protocol,
                    length=length,
                    tcp_flags=flags,
                    label=label,
                )
            )
        return packets


def compile_dataset_trace(
    dataset_name: str,
    split: str = "test",
    n_train: int = 600,
    n_test: int = 240,
    seed: int = 0,
    limit: Optional[int] = None,
    compiler: Optional[DatasetTraceCompiler] = None,
) -> CompiledTrace:
    """Convenience: load a dataset by name and compile one split."""
    from repro.datasets.loaders import load_dataset

    dataset = load_dataset(dataset_name, n_train=n_train, n_test=n_test, seed=seed)
    return (compiler or DatasetTraceCompiler()).compile(dataset, split=split, seed=seed)
