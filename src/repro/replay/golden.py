"""The golden-trace differential harness: serving-path alert parity.

The serving stack exists to produce the *same decisions* as offline batch
inference, only continuously and at scale.  This module makes that claim
testable:

1. :class:`GoldenTrace` records the offline batch predictions for a compiled
   trace -- one ``detect_packets`` call over the whole stream, the paper's
   evaluation path -- keyed by canonical flow token.
2. :class:`DifferentialHarness` replays the same trace through each serving
   architecture (single-process streaming, a smaller micro-batched window,
   an N-worker sharded cluster) and :func:`diff_against_golden` asserts
   flow-for-flow parity: the same flows flagged, the same class predicted,
   confidences within float32 tolerance.

Any divergence -- a flow lost by sharding, a prediction flipped by batch
composition, a confidence drifting past float32 noise -- surfaces as a named
flow token in the :class:`ParityReport`, which is what makes this harness
the repository's serving-correctness oracle: every future change to the
serving or cluster path has to keep these reports clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator
from repro.cluster.supervision import RetryPolicy
from repro.exceptions import ConfigurationError
from repro.nids.pipeline import DetectionPipeline
from repro.replay.compiler import CompiledTrace
from repro.replay.replayer import (
    ReplayConfig,
    TraceReplayer,
    predictions_from_detections,
)
from repro.serving.shutdown import GracefulShutdown
from repro.serving.stages import FlowPrediction

#: Default tolerance for confidence parity.  Confidences are float32 score
#: margins; different micro-batch compositions legitimately reorder the
#: BLAS reductions behind them, so exact equality is not a sound contract --
#: float32-noise-sized agreement is.
CONFIDENCE_RTOL = 1e-4
CONFIDENCE_ATOL = 1e-5


@dataclass
class GoldenTrace:
    """Offline batch predictions for a compiled trace (the reference)."""

    trace_name: str
    records: Dict[str, FlowPrediction]

    @classmethod
    def record(
        cls,
        pipeline: DetectionPipeline,
        trace: CompiledTrace,
        idle_timeout: float = 5.0,
    ) -> "GoldenTrace":
        """Run offline batch detection over the whole trace and keep the outcome."""
        pipeline.alert_manager.clear()
        result = pipeline.detect_packets(trace.packets, idle_timeout=idle_timeout)
        records = predictions_from_detections([result], pipeline)
        if len(records) != trace.n_flows:
            raise ConfigurationError(
                f"golden recording produced {len(records)} flows for a trace of "
                f"{trace.n_flows}; the compiled trace broke the row/flow bijection"
            )
        return cls(trace_name=trace.name, records=records)

    @property
    def n_flows(self) -> int:
        """Flows in the golden record."""
        return len(self.records)

    @property
    def n_flagged(self) -> int:
        """Flows the offline path flagged as attacks."""
        return sum(1 for record in self.records.values() if record.flagged)


@dataclass
class ParityReport:
    """Flow-for-flow comparison of one serving path against the golden record."""

    path: str
    trace_name: str
    n_golden: int
    n_observed: int
    #: The replay was cut short by a shutdown signal; the comparison covers
    #: only what was served and the path was NOT fully parity-verified.
    interrupted: bool = False
    #: Golden flows the path never served.
    missing_flows: List[str] = field(default_factory=list)
    #: Flows the path served that the golden record does not contain.
    extra_flows: List[str] = field(default_factory=list)
    #: Flows whose predicted class differs.
    prediction_mismatches: List[str] = field(default_factory=list)
    #: Flows flagged by exactly one of the two paths.
    flag_mismatches: List[str] = field(default_factory=list)
    #: Flows whose confidences differ beyond the float32 tolerance.
    confidence_mismatches: List[str] = field(default_factory=list)
    max_confidence_delta: float = 0.0

    @property
    def ok(self) -> bool:
        """True when the path is flow-for-flow equivalent to the golden record."""
        return not (
            self.missing_flows
            or self.extra_flows
            or self.prediction_mismatches
            or self.flag_mismatches
            or self.confidence_mismatches
        )

    def summary(self) -> str:
        """One-line verdict."""
        if self.interrupted:
            return (
                f"{self.path}: INTERRUPTED after {self.n_observed}/"
                f"{self.n_golden} flows (parity not evaluated)"
            )
        if self.ok:
            return (
                f"{self.path}: PARITY ({self.n_observed}/{self.n_golden} flows, "
                f"max confidence delta {self.max_confidence_delta:.2e})"
            )
        return (
            f"{self.path}: MISMATCH (missing={len(self.missing_flows)} "
            f"extra={len(self.extra_flows)} "
            f"prediction={len(self.prediction_mismatches)} "
            f"flag={len(self.flag_mismatches)} "
            f"confidence={len(self.confidence_mismatches)})"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view (token lists truncated to the first few)."""
        return {
            "path": self.path,
            "trace": self.trace_name,
            "ok": self.ok,
            "interrupted": self.interrupted,
            "n_golden": self.n_golden,
            "n_observed": self.n_observed,
            "missing": len(self.missing_flows),
            "extra": len(self.extra_flows),
            "prediction_mismatches": len(self.prediction_mismatches),
            "flag_mismatches": len(self.flag_mismatches),
            "confidence_mismatches": len(self.confidence_mismatches),
            "max_confidence_delta": self.max_confidence_delta,
            "examples": (
                self.missing_flows[:3]
                + self.prediction_mismatches[:3]
                + self.confidence_mismatches[:3]
            ),
        }


def diff_against_golden(
    golden: GoldenTrace,
    observed: Dict[str, FlowPrediction],
    path: str,
    rtol: float = CONFIDENCE_RTOL,
    atol: float = CONFIDENCE_ATOL,
) -> ParityReport:
    """Compare one serving path's per-flow records against the golden record."""
    report = ParityReport(
        path=path,
        trace_name=golden.trace_name,
        n_golden=len(golden.records),
        n_observed=len(observed),
    )
    for token in observed:
        if token not in golden.records:
            report.extra_flows.append(token)
    for token, reference in golden.records.items():
        record = observed.get(token)
        if record is None:
            report.missing_flows.append(token)
            continue
        if record.prediction != reference.prediction:
            report.prediction_mismatches.append(token)
        if record.flagged != reference.flagged:
            report.flag_mismatches.append(token)
        delta = abs(record.confidence - reference.confidence)
        report.max_confidence_delta = max(report.max_confidence_delta, delta)
        if delta > atol + rtol * abs(reference.confidence):
            report.confidence_mismatches.append(token)
    return report


class DifferentialHarness:
    """Runs one trace through every serving architecture and diffs each.

    Parameters
    ----------
    pipeline:
        The trained pipeline under test.  It is used read-only: every
        serving path runs with online learning off, so the model the last
        path sees is the model the first path saw.
    trace:
        The compiled trace to serve.
    window_size:
        Micro-batch window of the primary single-process path (also the
        cluster's dispatch batch size).
    micro_window_size:
        A deliberately different (smaller) window for the micro-batched
        path, so batch-composition effects are exercised rather than
        accidentally matched.
    cluster_workers:
        Worker processes of the cluster path.
    """

    def __init__(
        self,
        pipeline: DetectionPipeline,
        trace: CompiledTrace,
        window_size: int = 512,
        micro_window_size: int = 64,
        cluster_workers: int = 2,
        idle_timeout: float = 5.0,
        rtol: float = CONFIDENCE_RTOL,
        atol: float = CONFIDENCE_ATOL,
    ):
        if cluster_workers < 1:
            raise ConfigurationError("cluster_workers must be >= 1")
        self.pipeline = pipeline
        self.trace = trace
        self.window_size = int(window_size)
        self.micro_window_size = int(micro_window_size)
        self.cluster_workers = int(cluster_workers)
        self.idle_timeout = float(idle_timeout)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.golden = GoldenTrace.record(pipeline, trace, idle_timeout=idle_timeout)

    # ------------------------------------------------------------------- API
    def run_single_process(
        self, shutdown: Optional[GracefulShutdown] = None
    ) -> ParityReport:
        """Closed-loop streaming at the primary window size."""
        return self._replay_path(self.window_size, "single_process", shutdown)

    def run_microbatched(
        self, shutdown: Optional[GracefulShutdown] = None
    ) -> ParityReport:
        """Closed-loop streaming at the small micro-batch window."""
        return self._replay_path(self.micro_window_size, "microbatched", shutdown)

    def run_cluster(
        self,
        workers: Optional[int] = None,
        shutdown: Optional[GracefulShutdown] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> ParityReport:
        """N-worker sharded cluster serving with prediction capture.

        ``retry`` overrides the cluster's supervision policy -- the chaos
        harness passes a tightened one so fault detection latencies are
        measurable within a short replay.
        """
        n_workers = int(workers) if workers is not None else self.cluster_workers
        self.pipeline.alert_manager.clear()
        coordinator = ClusterCoordinator(
            self.pipeline,
            ClusterConfig(
                n_workers=n_workers,
                batch_size=self.window_size,
                online=False,
                idle_timeout=self.idle_timeout,
                capture_predictions=True,
                retry=retry,
            ),
        )
        report = coordinator.serve(self.trace.packets, shutdown=shutdown)
        observed = {
            record.token: record for record in (report.flow_predictions or [])
        }
        parity = diff_against_golden(
            self.golden,
            observed,
            path=f"cluster_{n_workers}w",
            rtol=self.rtol,
            atol=self.atol,
        )
        parity.interrupted = report.interrupted
        return parity

    def run_all(
        self,
        cluster: bool = True,
        shutdown: Optional[GracefulShutdown] = None,
    ) -> Dict[str, ParityReport]:
        """Every architecture; returns reports keyed by path name.

        A triggered ``shutdown`` stops the in-flight replay at its next
        chunk boundary (the report is marked ``interrupted``) and skips the
        remaining paths entirely.
        """
        reports: Dict[str, ParityReport] = {}
        paths = [
            ("single_process", self.run_single_process),
            ("microbatched", self.run_microbatched),
        ]
        if cluster:
            paths.append((f"cluster_{self.cluster_workers}w", self.run_cluster))
        for _, run in paths:
            if shutdown is not None and shutdown.triggered:
                break
            report = run(shutdown=shutdown)
            reports[report.path] = report
        return reports

    # ------------------------------------------------------------- internals
    def _replay_path(
        self,
        window_size: int,
        path: str,
        shutdown: Optional[GracefulShutdown] = None,
    ) -> ParityReport:
        replayer = TraceReplayer(
            self.pipeline,
            ReplayConfig(
                mode="closed",
                window_size=window_size,
                idle_timeout=self.idle_timeout,
            ),
        )
        result = replayer.replay(self.trace, shutdown=shutdown)
        report = diff_against_golden(
            self.golden, result.predictions, path=path, rtol=self.rtol, atol=self.atol
        )
        report.interrupted = result.interrupted
        return report
