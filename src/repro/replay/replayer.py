"""Replaying compiled traces through the streaming serving path.

Two replay modes cover the two questions the subsystem answers:

* **closed-loop** (default): packets are pushed as fast as the detector
  drains them (the producer pays on backpressure).  Fully deterministic --
  every compiled flow is served -- which is what the golden-trace
  differential harness needs for flow-for-flow parity checks.
* **open-loop**: packets are submitted on a wall clock at a target rate
  (``rate`` packets/second, or ``speed`` x trace time) against the engine's
  background dispatch thread with a bounded ``drop_oldest`` queue.  When the
  offered rate exceeds serving capacity the queue sheds load, flows arrive
  mutilated or not at all, and detection quality degrades -- the
  accuracy-under-load curve ``repro bench --suite replay`` reports.

Either way the result carries per-flow :class:`~repro.serving.FlowPrediction`
records joined against the trace's ground truth, yielding detection
recall/precision for the replayed workload.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import ConfigurationError
from repro.nids.pipeline import DetectionPipeline, DetectionResult
from repro.nids.streaming import StreamingDetector
from repro.replay.compiler import CompiledTrace
from repro.serving.shutdown import GracefulShutdown, chunked
from repro.serving.stages import FlowPrediction, batch_flow_predictions


def predictions_from_detections(
    detections: List[DetectionResult], pipeline: DetectionPipeline
) -> Dict[str, FlowPrediction]:
    """Flatten detection results into per-flow records keyed by flow token.

    ``DetectionResult`` exposes the same ``flows`` / ``predictions`` /
    ``confidences`` trio as a ``ServingBatch``, so the record construction
    is the one shared :func:`batch_flow_predictions` implementation (the
    same one cluster workers use to capture their shards' outcomes).
    """
    records: Dict[str, FlowPrediction] = {}
    for detection in detections:
        for record in batch_flow_predictions(detection, pipeline.is_attack_class):
            records[record.token] = record
    return records


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of one trace replay.

    Attributes
    ----------
    mode:
        ``"closed"`` (deterministic, producer-pays) or ``"open"``
        (wall-clock paced with load shedding).
    window_size:
        Packets per micro-batch window.
    rate:
        Open-loop target submission rate in packets/second; overrides
        ``speed``.
    speed:
        Open-loop timeline multiplier (``2.0`` replays the trace at twice
        trace time).
    queue_capacity:
        Ingest-queue bound; open-loop defaults to two windows so overload
        actually sheds.
    backpressure:
        Queue overflow policy; closed-loop defaults to ``"block"``,
        open-loop to ``"drop_oldest"``.
    idle_timeout:
        Flow-table idle timeout (must exceed the compiler's
        ``max_gap_seconds`` for the row/flow bijection to hold).
    chunk_size:
        Packets per ingest chunk (the shutdown-latency bound).
    """

    mode: str = "closed"
    window_size: int = 512
    rate: Optional[float] = None
    speed: Optional[float] = None
    queue_capacity: Optional[int] = None
    backpressure: Optional[str] = None
    idle_timeout: float = 5.0
    chunk_size: int = 256

    def validate(self) -> "ReplayConfig":
        """Check parameter ranges and return ``self``."""
        if self.mode not in ("closed", "open"):
            raise ConfigurationError(f"mode must be 'closed' or 'open', got {self.mode!r}")
        if self.window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        if self.rate is not None and self.rate <= 0:
            raise ConfigurationError("rate must be positive")
        if self.speed is not None and self.speed <= 0:
            raise ConfigurationError("speed must be positive")
        if self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        return self


@dataclass
class ReplayResult:
    """Outcome of one trace replay.

    ``predictions`` maps flow tokens to serving outcomes; flows of the trace
    absent from it were shed (open-loop drops) or cut off by an early
    shutdown, and count as misses in the recall metrics.
    """

    trace_name: str
    mode: str
    wall_seconds: float
    n_packets_submitted: int
    n_packets_served: int
    n_flows_served: int
    n_alerts: int
    dropped_packets: int
    interrupted: bool
    predictions: Dict[str, FlowPrediction] = field(default_factory=dict)
    #: Detection quality vs. the trace ground truth (see ``detection_metrics``).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def packets_per_second(self) -> float:
        """Achieved wall-clock packet throughput."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_packets_served / self.wall_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (without the per-flow records)."""
        return {
            "trace": self.trace_name,
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "packets_submitted": self.n_packets_submitted,
            "packets_served": self.n_packets_served,
            "flows_served": self.n_flows_served,
            "alerts": self.n_alerts,
            "dropped_packets": self.dropped_packets,
            "packets_per_second": self.packets_per_second,
            "interrupted": self.interrupted,
            "metrics": dict(self.metrics),
        }


def detection_metrics(
    trace: CompiledTrace, predictions: Dict[str, FlowPrediction]
) -> Dict[str, float]:
    """Recall / precision / accuracy of served predictions vs. ground truth.

    Flows of the trace that were never served (shed under load) count as
    missed attacks for recall -- overload hides intrusions, and the metric
    must say so rather than quietly scoring only the surviving flows.
    """
    n_attacks = trace.n_attack_flows
    true_positives = 0
    false_positives = 0
    flagged = 0
    correct = 0
    served = 0
    for flow in trace.flows:
        record = predictions.get(flow.token)
        if record is None:
            continue
        served += 1
        correct += record.prediction == flow.label
        if record.flagged:
            flagged += 1
            if flow.is_attack:
                true_positives += 1
            else:
                false_positives += 1
    return {
        "flows_total": float(trace.n_flows),
        "flows_served": float(served),
        "served_fraction": served / trace.n_flows if trace.n_flows else 0.0,
        "attack_flows": float(n_attacks),
        "flagged_flows": float(flagged),
        "recall": true_positives / n_attacks if n_attacks else 0.0,
        "precision": true_positives / flagged if flagged else 0.0,
        "false_positives": float(false_positives),
        "label_accuracy": correct / served if served else 0.0,
    }


def per_attack_type_recall(
    trace: CompiledTrace, predictions: Dict[str, FlowPrediction]
) -> Dict[str, Dict[str, float]]:
    """Detection recall broken out by ground-truth attack class.

    The aggregate recall of :func:`detection_metrics` can hide a shed
    attack class entirely — a loadgen scenario that drowns the queue in
    syn-flood packets may keep aggregate recall respectable while every
    low-and-slow exfiltration flow is dropped.  This breakdown makes the
    per-class story explicit; like the aggregate, flows never served count
    as missed (``detected`` requires a served *and flagged* prediction).
    """
    per_type: Dict[str, Dict[str, float]] = {}
    for flow in trace.flows:
        if not flow.is_attack:
            continue
        entry = per_type.setdefault(
            flow.label, {"flows": 0.0, "served": 0.0, "detected": 0.0}
        )
        entry["flows"] += 1
        record = predictions.get(flow.token)
        if record is None:
            continue
        entry["served"] += 1
        if record.flagged:
            entry["detected"] += 1
    for entry in per_type.values():
        entry["recall"] = entry["detected"] / entry["flows"] if entry["flows"] else 0.0
        entry["served_fraction"] = (
            entry["served"] / entry["flows"] if entry["flows"] else 0.0
        )
    return per_type


class TraceReplayer:
    """Replays compiled traces through a trained pipeline's serving path."""

    def __init__(self, pipeline: DetectionPipeline, config: Optional[ReplayConfig] = None):
        self.pipeline = pipeline
        self.config = (config or ReplayConfig()).validate()

    # ------------------------------------------------------------------- API
    def replay(
        self,
        trace: CompiledTrace,
        shutdown: Optional[GracefulShutdown] = None,
    ) -> ReplayResult:
        """Replay ``trace``; returns per-flow predictions and load metrics.

        A triggered ``shutdown`` stops ingest at the next chunk boundary;
        everything already accepted is drained and classified (the serve
        loops' drain contract), and the result is marked ``interrupted``.
        """
        cfg = self.config
        open_loop = cfg.mode == "open"
        backpressure = cfg.backpressure or ("drop_oldest" if open_loop else "block")
        queue_capacity = cfg.queue_capacity
        if queue_capacity is None:
            queue_capacity = 2 * cfg.window_size if open_loop else 4 * cfg.window_size
        # Fresh alert-manager state per replay: the dedup window would
        # otherwise suppress alerts for flows an earlier replay of the same
        # trace already flagged, breaking cross-path comparisons.
        self.pipeline.alert_manager.clear()
        detector = StreamingDetector(
            self.pipeline,
            window_size=cfg.window_size,
            idle_timeout=cfg.idle_timeout,
            queue_capacity=queue_capacity,
            backpressure=backpressure,
            history=None,  # parity needs every window's detections
        )

        start = time.perf_counter()
        submitted = 0
        interrupted = False
        if open_loop:
            submitted, interrupted = self._ingest_open_loop(detector, trace, shutdown)
        else:
            for chunk in chunked(trace.packets, cfg.chunk_size):
                if shutdown is not None and shutdown.triggered:
                    interrupted = True
                    break
                detector.push_many(chunk)
                submitted += len(chunk)
        detector.flush()
        wall = time.perf_counter() - start

        predictions = predictions_from_detections(detector.detections, self.pipeline)
        stats = detector.backpressure_stats
        result = ReplayResult(
            trace_name=trace.name,
            mode=cfg.mode,
            wall_seconds=wall,
            n_packets_submitted=submitted,
            n_packets_served=detector.total_packets,
            n_flows_served=detector.total_flows,
            n_alerts=detector.total_alerts,
            dropped_packets=stats.dropped_oldest,
            interrupted=interrupted,
            predictions=predictions,
        )
        result.metrics = detection_metrics(trace, predictions)
        return result

    # ------------------------------------------------------------- internals
    def _ingest_open_loop(
        self,
        detector: StreamingDetector,
        trace: CompiledTrace,
        shutdown: Optional[GracefulShutdown],
    ):
        """Wall-clock paced submission against the threaded engine."""
        cfg = self.config
        if cfg.rate is not None:
            # A rate in packets/second maps to a timeline multiplier.
            trace_rate = trace.n_packets / max(trace.duration_seconds, 1e-9)
            speed = cfg.rate / max(trace_rate, 1e-9)
        else:
            speed = cfg.speed if cfg.speed is not None else 1.0
        detector.engine.start()
        t0 = trace.packets[0].timestamp if trace.packets else 0.0
        wall0 = time.perf_counter()
        submitted = 0
        interrupted = False
        try:
            for chunk in chunked(trace.packets, cfg.chunk_size):
                if shutdown is not None and shutdown.triggered:
                    interrupted = True
                    break
                target = (chunk[0].timestamp - t0) / speed
                delay = target - (time.perf_counter() - wall0)
                if delay > 0:
                    time.sleep(delay)
                for packet in chunk:
                    detector.engine.submit(packet)
                submitted += len(chunk)
        finally:
            detector.engine.stop()
        return submitted, interrupted
