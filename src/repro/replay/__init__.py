"""Dataset-to-traffic replay: the bridge from tabular datasets to serving.

The paper's evaluation datasets (NSL-KDD, UNSW-NB15, CIC-IDS-*) are tabular
flow records, while the production serving stack consumes packets.  Before
this subsystem the two worlds never met: serving benchmarks ran on synthetic
load-generator profiles and nothing proved the streaming/cluster paths raise
the *same alerts* as offline batch inference.  ``repro.replay`` closes that
gap:

``compiler``
    :class:`DatasetTraceCompiler` -- turns any loaded
    :class:`~repro.datasets.NIDSDataset` split into a timestamped,
    5-tuple-keyed packet trace.  Each row becomes exactly one flow whose
    packet-level shape honors the row's duration/byte/packet-count
    features; flows are interleaved so they overlap like traffic on a real
    link; everything is deterministic from the seed.

``replayer``
    :class:`TraceReplayer` -- replays a compiled trace through the
    streaming detector, either closed-loop (as fast as the detector drains,
    the deterministic parity mode) or open-loop (wall-clock paced at a
    target packet rate with ``drop_oldest`` shedding, the
    accuracy-under-load mode), and reports per-flow predictions plus
    detection recall/precision against the trace's ground truth.

``golden``
    The golden-trace differential harness: record offline batch predictions
    for a trace once, then assert that single-process streaming,
    micro-batched, and N-worker cluster execution flag the same flows with
    confidences within float32 tolerance.  This is the serving-correctness
    oracle every future serving change is held to.

See ``docs/replay.md`` for the trace compilation model and the golden-trace
workflow.
"""

from repro.replay.compiler import CompiledTrace, DatasetTraceCompiler, TraceFlow, compile_dataset_trace
from repro.replay.golden import (
    DifferentialHarness,
    GoldenTrace,
    ParityReport,
    diff_against_golden,
)
from repro.replay.replayer import (
    ReplayConfig,
    ReplayResult,
    TraceReplayer,
    detection_metrics,
    per_attack_type_recall,
)

__all__ = [
    "CompiledTrace",
    "DatasetTraceCompiler",
    "TraceFlow",
    "compile_dataset_trace",
    "DifferentialHarness",
    "GoldenTrace",
    "ParityReport",
    "diff_against_golden",
    "ReplayConfig",
    "ReplayResult",
    "TraceReplayer",
    "detection_metrics",
    "per_attack_type_recall",
]
