"""Static-encoder baseline HDC classifier.

This is the "baselineHD" system the paper compares against: the same encoding
and adaptive-retraining machinery as CyberHD, but with a **pre-generated,
static encoder** -- no dimension dropping or regeneration.  To match the
paper's comparison it is typically instantiated at either the physical
dimensionality of CyberHD (``D = 0.5k``) or CyberHD's effective dimensionality
(``D* = 4k``).
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional

import numpy as np

from repro.core.trainer import (
    adaptive_epoch,
    adaptive_one_pass_fit,
    online_update,
    training_accuracy,
)
from repro.hdc.backend import QuantizedClassMatrix, resolve_dtype, row_norms
from repro.hdc.encoders import make_encoder
from repro.hdc.encoders.base import BaseEncoder
from repro.hdc.similarity import cosine_similarity_matrix
from repro.models.base import BaseClassifier, FitResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class BaselineHDC(BaseClassifier):
    """HDC classifier with a static (pre-generated) encoder.

    Parameters
    ----------
    dim:
        Hypervector dimensionality.
    encoder:
        Encoder registry name (``"rbf"``, ``"linear"`` or ``"level_id"``).
    encoder_kwargs:
        Extra keyword arguments for the encoder constructor.
    epochs:
        Number of adaptive retraining epochs after one-pass bundling.
    learning_rate:
        Adaptive update step ``eta``.
    batch_size:
        Mini-batch size of the vectorized adaptive update.
    early_stop_accuracy:
        Stop retraining once training accuracy reaches this threshold.
    seed:
        RNG seed.
    dtype:
        Backend dtype policy (``"float32"`` default, ``"float64"`` opt-in);
        see ``PERFORMANCE.md``.
    inference_bits:
        When set, predictions score against a quantized class matrix
        (:class:`repro.hdc.backend.QuantizedClassMatrix`).
    """

    def __init__(
        self,
        dim: int = 4000,
        encoder: str = "rbf",
        encoder_kwargs: Optional[Dict[str, Any]] = None,
        epochs: int = 20,
        learning_rate: float = 1.0,
        batch_size: int = 256,
        early_stop_accuracy: Optional[float] = None,
        seed: Optional[int] = None,
        dtype: str = "float32",
        inference_bits: Optional[int] = None,
    ):
        super().__init__()
        if dim <= 0:
            raise ValueError("dim must be positive")
        if epochs < 0:
            raise ValueError("epochs must be non-negative")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.dim = int(dim)
        self.encoder_name = encoder
        self.encoder_kwargs = dict(encoder_kwargs or {})
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.early_stop_accuracy = early_stop_accuracy
        self.dtype = resolve_dtype(dtype)
        self.inference_bits = inference_bits
        self._rng = ensure_rng(seed)
        self.encoder_: Optional[BaseEncoder] = None
        self.class_hypervectors_: Optional[np.ndarray] = None
        self._quantized_classes: Optional[QuantizedClassMatrix] = None
        self._packed_classes = None
        self._class_norms: Optional[np.ndarray] = None
        self.online_batches_ = 0
        self.online_samples_ = 0

    # ------------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        start = time.perf_counter()
        n_classes = int(y.max()) + 1
        self.encoder_ = make_encoder(
            self.encoder_name,
            in_features=X.shape[1],
            dim=self.dim,
            rng=self._rng,
            dtype=self.dtype,
            **self.encoder_kwargs,
        )
        self._invalidate_inference_caches()
        H = self.encoder_.encode(X)
        self.class_hypervectors_ = adaptive_one_pass_fit(
            H, y, n_classes, batch_size=self.batch_size, rng=self._rng
        )
        sample_norms = row_norms(H)
        class_norms = row_norms(self.class_hypervectors_)
        history = {
            "train_accuracy": [
                training_accuracy(self.class_hypervectors_, H, y, class_norms=class_norms)
            ],
        }
        epochs_run = 0
        for epoch in range(1, self.epochs + 1):
            _, accuracy = adaptive_epoch(
                self.class_hypervectors_,
                H,
                y,
                learning_rate=self.learning_rate,
                batch_size=self.batch_size,
                rng=self._rng,
                query_norms=sample_norms,
                class_norms=class_norms,
            )
            epochs_run = epoch
            history["train_accuracy"].append(accuracy)
            if self.early_stop_accuracy is not None and accuracy >= self.early_stop_accuracy:
                break
        if self.inference_bits is not None:
            self._quantized_classes = QuantizedClassMatrix.from_matrix(
                self.class_hypervectors_, bits=self.inference_bits
            )
        self._class_norms = class_norms
        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=epochs_run, history=history)

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One online pass: encode the batch and fold it into the class matrix.

        Cold-starting through ``partial_fit`` (no prior ``fit``) builds the
        static encoder and a zero class matrix on the first batch, so a
        streaming deployment can learn from scratch.
        """
        if self.encoder_ is None:
            self.encoder_ = make_encoder(
                self.encoder_name,
                in_features=X.shape[1],
                dim=self.dim,
                rng=self._rng,
                dtype=self.dtype,
                **self.encoder_kwargs,
            )
            n_classes = int(self.classes_.shape[0])
            self.class_hypervectors_ = np.zeros((n_classes, self.dim), dtype=self.dtype)
            self._class_norms = np.zeros(n_classes, dtype=self.dtype)
            self.fit_result_ = FitResult()
        if self._class_norms is None:
            self._class_norms = row_norms(self.class_hypervectors_)
        H = self.encoder_.encode(X)
        online_update(
            self.class_hypervectors_,
            H,
            y,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            class_norms=self._class_norms,
        )
        # The quantized/packed inference caches are stale after any online update.
        self._invalidate_inference_caches()
        self.online_batches_ += 1
        self.online_samples_ += int(X.shape[0])

    # --------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "class_hypervectors_")
        return self.scores_from_encoded(self.encoder_.encode(X))

    def scores_from_encoded(self, H: np.ndarray) -> np.ndarray:
        """Per-class scores for already-encoded queries.

        The serving path uses this to time encoding and classification as
        separate stages; ``predict_scores(X)`` is equivalent to
        ``scores_from_encoded(encode(X))``.
        """
        check_fitted(self, "class_hypervectors_")
        if self.uses_packed_inference:
            return self.packed_class_matrix().scores(H)
        if self.inference_bits is not None:
            if self._quantized_classes is None:
                self._quantized_classes = QuantizedClassMatrix.from_matrix(
                    self.class_hypervectors_, bits=self.inference_bits
                )
            return self._quantized_classes.scores(H)
        return cosine_similarity_matrix(H, self.class_hypervectors_)

    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode raw features into hyperspace with the trained encoder."""
        check_fitted(self, "encoder_")
        return self.encoder_.encode(X)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self.class_hypervectors_ is not None
        return (
            f"BaselineHDC(dim={self.dim}, encoder={self.encoder_name!r}, "
            f"epochs={self.epochs}, fitted={fitted})"
        )
