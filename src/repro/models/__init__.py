"""Classifier interfaces and the static-encoder baseline HDC model."""

from repro.models.base import BaseClassifier, FitResult
from repro.models.hdc_classifier import BaselineHDC

__all__ = ["BaseClassifier", "FitResult", "BaselineHDC"]
