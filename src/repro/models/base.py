"""Common classifier interface shared by CyberHD and every baseline.

Keeping every learner behind the same minimal ``fit`` / ``predict`` /
``predict_scores`` interface lets the evaluation harness treat CyberHD, the
baseline HDC, the MLP and the SVM uniformly when regenerating the paper's
figures.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_feature_count, check_fitted, check_labels, check_matrix


@dataclass
class FitResult:
    """Summary of a completed ``fit`` call.

    Attributes
    ----------
    train_seconds:
        Wall-clock seconds spent in ``fit``.
    epochs_run:
        Number of passes over the training data.
    history:
        Free-form per-epoch metrics (e.g. training accuracy, regenerated
        dimensions) keyed by metric name.
    """

    train_seconds: float = 0.0
    epochs_run: int = 0
    history: Dict[str, List[float]] = field(default_factory=dict)


class BaseClassifier(abc.ABC):
    """Abstract multi-class classifier.

    Subclasses implement :meth:`_fit` and :meth:`_predict_scores`; the public
    wrappers handle validation, label re-mapping (labels may be arbitrary
    integers) and the fitted-state checks.
    """

    def __init__(self) -> None:
        self.classes_: Optional[np.ndarray] = None
        self.n_features_in_: Optional[int] = None
        self.fit_result_: Optional[FitResult] = None

    # ------------------------------------------------------------------- API
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaseClassifier":
        """Fit the classifier on ``(X, y)`` and return ``self``."""
        X = check_matrix(X, "X")
        y = check_labels(y, X.shape[0], "y")
        self.classes_, y_indexed = np.unique(y, return_inverse=True)
        if self.classes_.shape[0] < 2:
            raise ValueError("training data must contain at least two classes")
        self.n_features_in_ = X.shape[1]
        self.fit_result_ = self._fit(X, y_indexed.astype(np.int64))
        return self

    def partial_fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        classes: Optional[Sequence] = None,
    ) -> "BaseClassifier":
        """Fold one labeled mini-batch into the model (online learning).

        Unlike :meth:`fit`, this does not reset the model: the batch updates
        the current state in place, which is what the streaming serving path
        uses to track concept drift without retraining from scratch.

        Parameters
        ----------
        X, y:
            The mini-batch, with labels in the original label space.
        classes:
            The full label set.  Required on the first call when the model
            has not been fitted yet (an online model must know its label
            space up front); ignored afterwards except for a consistency
            check.
        """
        X = check_matrix(X, "X")
        y = check_labels(y, X.shape[0], "y")
        if self.classes_ is None:
            if classes is None:
                raise ConfigurationError(
                    "partial_fit on an unfitted model requires the `classes` argument"
                )
            class_array = np.unique(np.asarray(classes))
            if class_array.shape[0] < 2:
                raise ValueError("classes must contain at least two labels")
            self.classes_ = class_array
            self.n_features_in_ = X.shape[1]
        else:
            check_feature_count(X, int(self.n_features_in_), "X")
            if classes is not None and not np.array_equal(
                np.unique(np.asarray(classes)), self.classes_
            ):
                raise ConfigurationError(
                    "partial_fit received a `classes` set that differs from the "
                    "label space the model was initialized with"
                )
        indices = np.searchsorted(self.classes_, y)
        indices = np.clip(indices, 0, self.classes_.shape[0] - 1)
        if not np.array_equal(self.classes_[indices], y):
            raise ValueError("partial_fit received labels outside the known class set")
        self._partial_fit(X, indices.astype(np.int64))
        return self

    def predict_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class decision scores, shape ``(n_samples, n_classes)``.

        Higher is better; the meaning of the score is model specific (cosine
        similarity for HDC models, logits for the MLP, margins for the SVM).
        """
        check_fitted(self, "classes_")
        X = check_matrix(X, "X")
        check_feature_count(X, int(self.n_features_in_), "X")
        return self._predict_scores(X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted class labels (in the original label space)."""
        scores = self.predict_scores(X)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on ``(X, y)``."""
        X = check_matrix(X, "X")
        y = check_labels(y, X.shape[0], "y")
        return float(np.mean(self.predict(X) == y))

    @property
    def n_classes_(self) -> int:
        """Number of classes seen during ``fit``."""
        check_fitted(self, "classes_")
        return int(self.classes_.shape[0])

    # --------------------------------------------------- packed 1-bit serving
    # The bit-packed inference fabric (repro.hdc.bitpack).  At
    # ``inference_bits == 1`` the model's production scoring path packs the
    # sign-binarized class matrix into uint64 words and scores queries by
    # XOR + popcount -- bit-for-bit the same decisions as the quantized
    # float-GEMM path, at a fraction of the memory traffic.  Models that do
    # not carry HDC class-vector state simply never report the capability.

    #: Serve 1-bit models through the packed popcount path (set False to
    #: force the float-GEMM QuantizedClassMatrix path, e.g. for the
    #: differential parity harness).
    packed_inference: bool = True

    @property
    def uses_packed_inference(self) -> bool:
        """True when scoring runs the packed XOR/popcount binary path."""
        return (
            getattr(self, "inference_bits", None) == 1
            and bool(self.packed_inference)
            and getattr(self, "class_hypervectors_", None) is not None
        )

    def packed_class_matrix(self):
        """The cached :class:`~repro.hdc.bitpack.PackedClassMatrix` (built lazily)."""
        from repro.hdc.bitpack import PackedClassMatrix

        packed = getattr(self, "_packed_classes", None)
        if packed is None:
            packed = PackedClassMatrix.from_class_matrix(self._require_class_vectors())
            self._packed_classes = packed
        return packed

    def encode_packed(self, X: np.ndarray, chunk_size: int = 2048) -> np.ndarray:
        """Fused encode -> sign -> pack of raw features (packed serving input)."""
        encoder = getattr(self, "encoder_", None)
        if encoder is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not expose a trained encoder "
                "(packed encoding is an HDC-model capability)"
            )
        return encoder.encode_packed(X, chunk_size=chunk_size)

    def scores_from_packed(
        self, packed_queries: np.ndarray, dtype=np.float32
    ) -> np.ndarray:
        """Per-class scores for already-packed (uint64 sign-bit) queries.

        The packed counterpart of ``scores_from_encoded``: the serving
        stages pack once at encode time and score the words directly, so no
        float hypervector matrix exists on the packed hot path.
        """
        return self.packed_class_matrix().scores_packed(packed_queries, dtype=dtype)

    def _invalidate_inference_caches(self) -> None:
        """Drop the quantized and packed scoring caches (model state changed)."""
        self._quantized_classes = None
        self._packed_classes = None

    # ------------------------------------------------- replica/delta support
    # The cluster subsystem (repro.cluster) runs model replicas in worker
    # processes and merges their online-learning updates additively.  These
    # hooks expose the class-vector state needed for that: HDC models carry
    # their learned state in `class_hypervectors_` (plus the cached-norm and
    # quantized-inference caches that must be invalidated on any change).
    def _require_class_vectors(self) -> np.ndarray:
        matrix = getattr(self, "class_hypervectors_", None)
        if matrix is None:
            raise NotImplementedError(
                f"{type(self).__name__} does not expose class-vector state "
                "(replica deltas are an HDC-model capability)"
            )
        return matrix

    def class_vector_snapshot(self) -> np.ndarray:
        """A private copy of the current class-vector matrix.

        Replicas take a snapshot at rebase time so a later
        :meth:`class_vector_delta` isolates exactly the updates folded in
        since.
        """
        return self._require_class_vectors().copy()

    def class_vector_delta(self, base: np.ndarray) -> np.ndarray:
        """The class-matrix update accumulated since ``base`` was snapshot.

        Because HDC class hypervectors aggregate additively, this delta can
        be merged into any model that still holds ``base`` (or ``base`` plus
        other replicas' deltas) without loss -- the cluster coordinator's
        merge rule (:func:`repro.hdc.backend.merge_class_deltas`).
        """
        matrix = self._require_class_vectors()
        base = np.asarray(base)
        if base.shape != matrix.shape:
            raise ConfigurationError(
                f"snapshot shape {base.shape} does not match class matrix "
                f"shape {matrix.shape}"
            )
        return matrix - base.astype(matrix.dtype, copy=False)

    def apply_class_delta(self, delta: np.ndarray) -> None:
        """Fold an additive class-matrix delta in, invalidating caches."""
        from repro.hdc.backend import merge_class_deltas

        matrix = self._require_class_vectors()
        merge_class_deltas(matrix, [delta], getattr(self, "_class_norms", None))
        self._invalidate_inference_caches()

    def set_class_vectors(self, matrix: np.ndarray) -> None:
        """Replace the class-vector matrix (a republished merged model).

        The matrix is copied (replicas must never write into the published
        shared-memory block), cached norms are recomputed in full, and the
        quantized-inference cache is dropped.
        """
        from repro.hdc.backend import row_norms

        current = self._require_class_vectors()
        matrix = np.asarray(matrix)
        if matrix.shape != current.shape:
            raise ConfigurationError(
                f"published matrix shape {matrix.shape} does not match class "
                f"matrix shape {current.shape}"
            )
        current[...] = matrix.astype(current.dtype, copy=False)
        if getattr(self, "_class_norms", None) is not None:
            self._class_norms[:] = row_norms(current)
        self._invalidate_inference_caches()

    # --------------------------------------------------------- subclass API
    @abc.abstractmethod
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        """Fit on validated data with labels already mapped to ``0..k-1``."""

    @abc.abstractmethod
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        """Return ``(n, k)`` decision scores for validated input."""

    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """Incrementally update on a validated batch with indexed labels.

        Subclasses that support online learning override this; the default
        declares the capability absent.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support online updates (partial_fit)"
        )
