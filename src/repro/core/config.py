"""Configuration dataclass for the CyberHD classifier."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import ConfigurationError


@dataclass
class CyberHDConfig:
    """Hyper-parameters of :class:`repro.core.CyberHD`.

    Attributes
    ----------
    dim:
        Physical hypervector dimensionality ``D``.  The paper's headline
        configuration uses ``D = 500`` (0.5k).
    encoder:
        Encoder registry name: ``"rbf"`` (the paper's choice), ``"linear"``
        or ``"level_id"``.
    encoder_kwargs:
        Extra keyword arguments forwarded to the encoder constructor
        (e.g. ``{"gamma": 0.5}``).
    epochs:
        Number of adaptive retraining epochs after the initial one-pass
        bundling.
    learning_rate:
        The ``eta`` of the adaptive update rule.  Because the initial bundling
        pass uses unit weights, ``eta`` effectively controls how aggressive
        retraining is *relative* to the initial model; 1.0 works well across
        the four NIDS datasets.
    regeneration_rate:
        Fraction ``R`` of dimensions dropped and regenerated after each
        retraining epoch.  ``0`` disables regeneration (the model then behaves
        like the static baseline HDC).
    regeneration_interval:
        Regenerate every this-many epochs (1 = after every epoch).
    batch_size:
        Mini-batch size of the vectorized adaptive update.
    early_stop_accuracy:
        Stop retraining once training accuracy reaches this threshold
        (``None`` disables early stopping).
    seed:
        RNG seed controlling encoder initialization, shuffling and
        regeneration draws.
    dtype:
        Backend dtype policy for encoding and training: ``"float32"`` (the
        default -- half the memory traffic, measurably faster BLAS) or
        ``"float64"`` for bit-for-bit compatibility with the original
        double-precision implementation.  See ``PERFORMANCE.md``.
    inference_bits:
        When set (e.g. ``8``), the trained class matrix is additionally
        quantized with :mod:`repro.hdc.quantization` and predictions run
        through the low-bitwidth scoring path
        (:class:`repro.hdc.backend.QuantizedClassMatrix`).  ``None`` (the
        default) scores against the full-precision class matrix.
    """

    dim: int = 500
    encoder: str = "rbf"
    encoder_kwargs: Dict[str, Any] = field(default_factory=dict)
    epochs: int = 20
    learning_rate: float = 1.0
    regeneration_rate: float = 0.10
    regeneration_interval: int = 1
    batch_size: int = 256
    early_stop_accuracy: Optional[float] = None
    seed: Optional[int] = None
    dtype: str = "float32"
    inference_bits: Optional[int] = None

    def validate(self) -> "CyberHDConfig":
        """Check parameter ranges and return ``self`` (raises on error)."""
        # Fails fast on unsupported dtype specs (ConfigurationError).
        from repro.hdc.backend import resolve_dtype

        resolve_dtype(self.dtype)
        if self.inference_bits is not None:
            from repro.hdc.quantization import SUPPORTED_BITWIDTHS

            if self.inference_bits not in SUPPORTED_BITWIDTHS:
                raise ConfigurationError(
                    f"inference_bits must be one of {SUPPORTED_BITWIDTHS} or None"
                )
        if self.dim <= 0:
            raise ConfigurationError("dim must be positive")
        if self.epochs < 0:
            raise ConfigurationError("epochs must be non-negative")
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 <= self.regeneration_rate < 1.0:
            raise ConfigurationError("regeneration_rate must be in [0, 1)")
        if self.regeneration_interval < 1:
            raise ConfigurationError("regeneration_interval must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.early_stop_accuracy is not None and not 0.0 < self.early_stop_accuracy <= 1.0:
            raise ConfigurationError("early_stop_accuracy must be in (0, 1]")
        return self
