"""Shared HDC training routines (step ``B`` of the CyberHD workflow).

Both :class:`repro.core.CyberHD` and the static
:class:`repro.models.BaselineHDC` train their class hypervectors with the same
two-stage procedure:

1. **One-pass bundling** -- every encoded training sample is added to its
   class hypervector.  This gives a usable model after a single pass.
2. **Adaptive (similarity-weighted) retraining** -- for every mispredicted
   sample ``H`` with true class ``l`` and predicted class ``l'``::

       C_l  <- C_l  + eta * (1 - delta_l ) * H
       C_l' <- C_l' - eta * (1 - delta_l') * H

   where ``delta_c`` is the cosine similarity of ``H`` to class ``c``.  A
   sample that is already well represented (``delta ~ 1``) barely changes the
   model, which prevents saturation; a novel pattern (``delta ~ 0``) updates
   the model strongly.

The implementation is mini-batch vectorized through
:mod:`repro.hdc.backend`: similarities for a whole batch are one matrix
product against the class matrix with *cached* row norms (sample norms are
computed once per epoch, class norms once per update -- not once per batch),
and the per-class updates are aggregated with a one-hot GEMM segment sum
instead of an ``np.add.at`` scatter, matching the paper's "highly parallel
matrix operations" formulation.  All routines preserve the dtype of the
encoded matrix ``H`` (float32 under the default backend policy).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.hdc.backend import row_norms, segment_sum, update_row_norms
from repro.hdc.similarity import cosine_similarity_matrix
from repro.utils.rng import SeedLike, ensure_rng


def _as_float_matrix(H: np.ndarray) -> np.ndarray:
    """Pass floating matrices through untouched; promote everything else."""
    H = np.asarray(H)
    if H.dtype not in (np.float32, np.float64):
        H = H.astype(np.float64)
    return H


def one_pass_fit(H: np.ndarray, y: np.ndarray, n_classes: int) -> np.ndarray:
    """Naive initial class hypervectors: bundle every sample into its class.

    Parameters
    ----------
    H:
        ``(n, D)`` encoded training samples.
    y:
        ``(n,)`` class indices in ``0..n_classes-1``.
    n_classes:
        Number of classes ``k``.

    Returns
    -------
    ndarray
        ``(k, D)`` class hypervector matrix (same dtype as ``H``).
    """
    H = _as_float_matrix(H)
    y = np.asarray(y, dtype=np.int64)
    return segment_sum(H, y, n_classes)


def adaptive_one_pass_fit(
    H: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    batch_size: int = 256,
    rng: SeedLike = None,
) -> np.ndarray:
    """Similarity-weighted initial bundling (the paper's anti-saturation rule).

    Instead of adding every sample at full weight, each sample ``H_i`` is added
    to its class with weight ``1 - delta_l`` (its cosine similarity to the
    current class hypervector), and subtracted from a wrongly predicted class
    with weight ``1 - delta_l'``.  Samples that are already well represented
    barely change the model, which prevents the class hypervectors from
    saturating with redundant patterns.

    Returns the ``(k, D)`` class matrix (same dtype as ``H``).
    """
    H = _as_float_matrix(H)
    y = np.asarray(y, dtype=np.int64)
    classes = np.zeros((n_classes, H.shape[1]), dtype=H.dtype)
    class_norms = np.zeros(n_classes, dtype=H.dtype)
    sample_norms = row_norms(H)
    gen = ensure_rng(rng)
    order = gen.permutation(H.shape[0])
    for start in range(0, H.shape[0], batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = cosine_similarity_matrix(
            Hb, classes, query_norms=sample_norms[idx], class_norms=class_norms
        )
        pred = np.argmax(sims, axis=1)
        sim_true = sims[np.arange(idx.size), yb]
        ids = yb
        rows = (1.0 - sim_true)[:, None].astype(H.dtype) * Hb
        wrong = pred != yb
        if np.any(wrong):
            sim_pred = sims[wrong, pred[wrong]]
            ids = np.concatenate([ids, pred[wrong]])
            rows = np.concatenate(
                [rows, -(1.0 - sim_pred)[:, None].astype(H.dtype) * Hb[wrong]]
            )
        classes += segment_sum(rows, ids, n_classes)
        update_row_norms(class_norms, classes, np.unique(ids))
    return classes


def adaptive_epoch(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    y: np.ndarray,
    learning_rate: float,
    batch_size: int = 256,
    rng: SeedLike = None,
    shuffle: bool = True,
    query_norms: Optional[np.ndarray] = None,
    class_norms: Optional[np.ndarray] = None,
) -> Tuple[int, float]:
    """One epoch of similarity-weighted adaptive retraining (in place).

    Parameters
    ----------
    class_hypervectors:
        ``(k, D)`` class matrix, updated in place.
    H:
        ``(n, D)`` encoded training samples.
    y:
        ``(n,)`` class indices.
    learning_rate:
        Update step ``eta``.
    batch_size:
        Samples per vectorized update step.
    rng:
        Seed/generator used for shuffling.
    shuffle:
        Whether to shuffle sample order each epoch.
    query_norms:
        Optional pre-computed ``(n,)`` row norms of ``H``.  Since ``H`` does
        not change within an epoch (or across epochs, until a regeneration
        step rewrites columns), callers looping over epochs should compute
        them once and pass them in.
    class_norms:
        Optional ``(k,)`` row norms of ``class_hypervectors``.  **Updated in
        place** as classes are updated, so a caller can thread the same
        array through consecutive epochs and the norms are computed once per
        class *update* rather than once per batch.

    Returns
    -------
    (errors, accuracy):
        Number of mispredicted training samples during the epoch and the
        corresponding training accuracy.
    """
    H = _as_float_matrix(H)
    y = np.asarray(y, dtype=np.int64)
    n = H.shape[0]
    n_classes = class_hypervectors.shape[0]
    if query_norms is None:
        query_norms = row_norms(H)
    if class_norms is None:
        class_norms = row_norms(class_hypervectors)
    gen = ensure_rng(rng)
    order = gen.permutation(n) if shuffle else np.arange(n)
    errors = 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = cosine_similarity_matrix(
            Hb, class_hypervectors, query_norms=query_norms[idx], class_norms=class_norms
        )
        pred = np.argmax(sims, axis=1)
        wrong = pred != yb
        n_wrong = int(np.count_nonzero(wrong))
        errors += n_wrong
        if n_wrong == 0:
            continue
        Hw = Hb[wrong]
        yw = yb[wrong]
        pw = pred[wrong]
        sim_true = sims[wrong, yw]
        sim_pred = sims[wrong, pw]
        add_weights = (learning_rate * (1.0 - sim_true)).astype(H.dtype)
        sub_weights = (learning_rate * (1.0 - sim_pred)).astype(H.dtype)
        ids = np.concatenate([yw, pw])
        rows = np.concatenate([add_weights[:, None] * Hw, -sub_weights[:, None] * Hw])
        class_hypervectors += segment_sum(rows, ids, n_classes)
        update_row_norms(class_norms, class_hypervectors, np.unique(ids))
    accuracy = 1.0 - errors / n
    return errors, accuracy


def online_update(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    y: np.ndarray,
    learning_rate: float,
    batch_size: int = 256,
    query_norms: Optional[np.ndarray] = None,
    class_norms: Optional[np.ndarray] = None,
) -> Tuple[int, float]:
    """One deterministic online pass over a streaming mini-batch (in place).

    This is the ``partial_fit`` kernel: exactly one :func:`adaptive_epoch`
    with shuffling disabled, so samples are consumed in arrival order and a
    ``partial_fit(X, y)`` call is bitwise-equivalent to one batched
    ``adaptive_epoch`` over the same encoded samples.  ``class_norms`` should
    be the model's cached norm vector; it is invalidated/updated in place as
    class hypervectors change (the cached-norm cosine fast path).

    Returns ``(errors, accuracy)`` measured *before* each update step
    (prequential: a sample is scored against the model state that had not
    yet seen it).
    """
    return adaptive_epoch(
        class_hypervectors,
        H,
        y,
        learning_rate=learning_rate,
        batch_size=batch_size,
        shuffle=False,
        query_norms=query_norms,
        class_norms=class_norms,
    )


def predict_indices(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    class_norms: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Class indices with the highest cosine similarity to each query row."""
    sims = cosine_similarity_matrix(H, class_hypervectors, class_norms=class_norms)
    return np.argmax(sims, axis=1)


def training_accuracy(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    y: np.ndarray,
    class_norms: Optional[np.ndarray] = None,
) -> float:
    """Accuracy of the current class matrix on encoded samples ``H``."""
    pred = predict_indices(class_hypervectors, H, class_norms=class_norms)
    return float(np.mean(pred == np.asarray(y, dtype=np.int64)))
