"""Shared HDC training routines (step ``B`` of the CyberHD workflow).

Both :class:`repro.core.CyberHD` and the static
:class:`repro.models.BaselineHDC` train their class hypervectors with the same
two-stage procedure:

1. **One-pass bundling** -- every encoded training sample is added to its
   class hypervector.  This gives a usable model after a single pass.
2. **Adaptive (similarity-weighted) retraining** -- for every mispredicted
   sample ``H`` with true class ``l`` and predicted class ``l'``::

       C_l  <- C_l  + eta * (1 - delta_l ) * H
       C_l' <- C_l' - eta * (1 - delta_l') * H

   where ``delta_c`` is the cosine similarity of ``H`` to class ``c``.  A
   sample that is already well represented (``delta ~ 1``) barely changes the
   model, which prevents saturation; a novel pattern (``delta ~ 0``) updates
   the model strongly.

The implementation is mini-batch vectorized: similarities for a whole batch
are computed with one matrix product and the per-class updates are aggregated
with index-accumulation, matching the paper's "highly parallel matrix
operations" formulation.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.hdc.similarity import cosine_similarity_matrix
from repro.utils.rng import SeedLike, ensure_rng


def one_pass_fit(H: np.ndarray, y: np.ndarray, n_classes: int) -> np.ndarray:
    """Naive initial class hypervectors: bundle every sample into its class.

    Parameters
    ----------
    H:
        ``(n, D)`` encoded training samples.
    y:
        ``(n,)`` class indices in ``0..n_classes-1``.
    n_classes:
        Number of classes ``k``.

    Returns
    -------
    ndarray
        ``(k, D)`` class hypervector matrix.
    """
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    classes = np.zeros((n_classes, H.shape[1]))
    np.add.at(classes, y, H)
    return classes


def adaptive_one_pass_fit(
    H: np.ndarray,
    y: np.ndarray,
    n_classes: int,
    batch_size: int = 256,
    rng: SeedLike = None,
) -> np.ndarray:
    """Similarity-weighted initial bundling (the paper's anti-saturation rule).

    Instead of adding every sample at full weight, each sample ``H_i`` is added
    to its class with weight ``1 - delta_l`` (its cosine similarity to the
    current class hypervector), and subtracted from a wrongly predicted class
    with weight ``1 - delta_l'``.  Samples that are already well represented
    barely change the model, which prevents the class hypervectors from
    saturating with redundant patterns.

    Returns the ``(k, D)`` class matrix.
    """
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    classes = np.zeros((n_classes, H.shape[1]))
    gen = ensure_rng(rng)
    order = gen.permutation(H.shape[0])
    for start in range(0, H.shape[0], batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = cosine_similarity_matrix(Hb, classes)
        pred = np.argmax(sims, axis=1)
        sim_true = sims[np.arange(idx.size), yb]
        np.add.at(classes, yb, (1.0 - sim_true)[:, None] * Hb)
        wrong = pred != yb
        if np.any(wrong):
            sim_pred = sims[wrong, pred[wrong]]
            np.add.at(classes, pred[wrong], -(1.0 - sim_pred)[:, None] * Hb[wrong])
    return classes


def adaptive_epoch(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    y: np.ndarray,
    learning_rate: float,
    batch_size: int = 256,
    rng: SeedLike = None,
    shuffle: bool = True,
) -> Tuple[int, float]:
    """One epoch of similarity-weighted adaptive retraining (in place).

    Parameters
    ----------
    class_hypervectors:
        ``(k, D)`` class matrix, updated in place.
    H:
        ``(n, D)`` encoded training samples.
    y:
        ``(n,)`` class indices.
    learning_rate:
        Update step ``eta``.
    batch_size:
        Samples per vectorized update step.
    rng:
        Seed/generator used for shuffling.
    shuffle:
        Whether to shuffle sample order each epoch.

    Returns
    -------
    (errors, accuracy):
        Number of mispredicted training samples during the epoch and the
        corresponding training accuracy.
    """
    H = np.asarray(H, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    n = H.shape[0]
    gen = ensure_rng(rng)
    order = gen.permutation(n) if shuffle else np.arange(n)
    errors = 0
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        Hb = H[idx]
        yb = y[idx]
        sims = cosine_similarity_matrix(Hb, class_hypervectors)
        pred = np.argmax(sims, axis=1)
        wrong = pred != yb
        n_wrong = int(np.count_nonzero(wrong))
        errors += n_wrong
        if n_wrong == 0:
            continue
        Hw = Hb[wrong]
        yw = yb[wrong]
        pw = pred[wrong]
        sim_true = sims[wrong, yw]
        sim_pred = sims[wrong, pw]
        add_weights = learning_rate * (1.0 - sim_true)
        sub_weights = learning_rate * (1.0 - sim_pred)
        np.add.at(class_hypervectors, yw, add_weights[:, None] * Hw)
        np.add.at(class_hypervectors, pw, -sub_weights[:, None] * Hw)
    accuracy = 1.0 - errors / n
    return errors, accuracy


def predict_indices(class_hypervectors: np.ndarray, H: np.ndarray) -> np.ndarray:
    """Class indices with the highest cosine similarity to each query row."""
    sims = cosine_similarity_matrix(H, class_hypervectors)
    return np.argmax(sims, axis=1)


def training_accuracy(class_hypervectors: np.ndarray, H: np.ndarray, y: np.ndarray) -> float:
    """Accuracy of the current class matrix on encoded samples ``H``."""
    pred = predict_indices(class_hypervectors, H)
    return float(np.mean(pred == np.asarray(y, dtype=np.int64)))
