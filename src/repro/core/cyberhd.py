"""The CyberHD classifier: HDC with dynamic dimension regeneration.

This is the paper's primary contribution.  Compared to a static-encoder HDC
model, CyberHD interleaves adaptive retraining with a drop-and-regenerate step
that replaces the least discriminative encoder dimensions with fresh random
draws, so that a small *physical* dimensionality (``D = 0.5k`` in the paper)
accumulates the discriminative power of a much larger *effective*
dimensionality (``D* ~ 4k``).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.config import CyberHDConfig
from repro.core.regeneration import (
    RegenerationEvent,
    apply_regeneration,
    select_drop_dimensions,
    warm_start_regenerated,
)
from repro.core.trainer import adaptive_epoch, adaptive_one_pass_fit, training_accuracy
from repro.hdc.backend import QuantizedClassMatrix, resolve_dtype, row_norms
from repro.hdc.encoders import make_encoder
from repro.hdc.encoders.base import BaseEncoder
from repro.hdc.similarity import cosine_similarity_matrix
from repro.models.base import BaseClassifier, FitResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class CyberHD(BaseClassifier):
    """Dynamic-encoding HDC classifier (the CyberHD algorithm).

    Parameters
    ----------
    config:
        A :class:`repro.core.CyberHDConfig`.  Keyword arguments may be passed
        instead and are used to build a config, e.g.
        ``CyberHD(dim=500, regeneration_rate=0.1, seed=0)``.

    Attributes
    ----------
    class_hypervectors_:
        ``(k, D)`` trained class matrix.
    encoder_:
        The (regenerated) encoder used at inference time.
    regeneration_events_:
        One :class:`RegenerationEvent` per drop-and-regenerate step.
    effective_dim_:
        ``D* = D + total regenerated dimensions``; the paper's effective
        dimensionality metric.

    Example
    -------
    >>> from repro import CyberHD, load_dataset
    >>> ds = load_dataset("nsl_kdd", n_train=600, n_test=200, seed=0)
    >>> model = CyberHD(dim=256, epochs=5, seed=0).fit(ds.X_train, ds.y_train)
    >>> acc = model.score(ds.X_test, ds.y_test)
    """

    def __init__(self, config: Optional[CyberHDConfig] = None, **kwargs):
        super().__init__()
        if config is None:
            config = CyberHDConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a CyberHDConfig or keyword arguments, not both")
        self.config = config.validate()
        self.encoder_: Optional[BaseEncoder] = None
        self.class_hypervectors_: Optional[np.ndarray] = None
        self.regeneration_events_: List[RegenerationEvent] = []
        self._rng = ensure_rng(self.config.seed)
        self._quantized_classes: Optional[QuantizedClassMatrix] = None

    # ------------------------------------------------------------ properties
    @property
    def dim(self) -> int:
        """Physical hypervector dimensionality ``D``."""
        return self.config.dim

    @property
    def effective_dim_(self) -> int:
        """Effective dimensionality ``D*`` accumulated during training."""
        check_fitted(self, "encoder_")
        return self.encoder_.effective_dim

    @property
    def total_regenerated_(self) -> int:
        """Total number of dimensions regenerated during training."""
        check_fitted(self, "encoder_")
        return self.encoder_.regenerated_total

    # ------------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        cfg = self.config
        start = time.perf_counter()
        n_classes = int(y.max()) + 1

        self.encoder_ = make_encoder(
            cfg.encoder,
            in_features=X.shape[1],
            dim=cfg.dim,
            rng=self._rng,
            dtype=resolve_dtype(cfg.dtype),
            **cfg.encoder_kwargs,
        )
        self.regeneration_events_ = []
        self._quantized_classes = None

        H = self.encoder_.encode(X)
        self.class_hypervectors_ = adaptive_one_pass_fit(
            H, y, n_classes, batch_size=cfg.batch_size, rng=self._rng
        )
        # Cached-norm fast path: sample norms change only when regeneration
        # rewrites columns of H; class norms are maintained in place by
        # adaptive_epoch as updates land.
        sample_norms = row_norms(H)
        class_norms = row_norms(self.class_hypervectors_)

        history = {
            "train_accuracy": [
                training_accuracy(self.class_hypervectors_, H, y, class_norms=class_norms)
            ],
            "regenerated_dims": [0.0],
            "effective_dim": [float(self.encoder_.effective_dim)],
        }

        epochs_run = 0
        for epoch in range(1, cfg.epochs + 1):
            _, accuracy = adaptive_epoch(
                self.class_hypervectors_,
                H,
                y,
                learning_rate=cfg.learning_rate,
                batch_size=cfg.batch_size,
                rng=self._rng,
                query_norms=sample_norms,
                class_norms=class_norms,
            )
            epochs_run = epoch
            regenerated = 0
            # Regenerate after every `regeneration_interval`-th epoch, but not
            # after the final epoch: freshly regenerated (untrained) dimensions
            # would only add noise to the deployed model.
            should_regen = (
                cfg.regeneration_rate > 0.0
                and epoch % cfg.regeneration_interval == 0
                and epoch < cfg.epochs
            )
            if should_regen:
                dims, threshold = select_drop_dimensions(
                    self.class_hypervectors_, cfg.regeneration_rate
                )
                if dims.size:
                    apply_regeneration(self.class_hypervectors_, self.encoder_, dims)
                    self.regeneration_events_.append(
                        RegenerationEvent(epoch=epoch, dimensions=dims, variance_threshold=threshold)
                    )
                    regenerated = int(dims.size)
                    # Incremental re-encode: only the regenerated dimensions
                    # change, so just those columns of the training matrix are
                    # recomputed in place.
                    H[:, dims] = self.encoder_.encode_partial(X, dims)
                    sample_norms = row_norms(H)
                    # Warm-start the new columns so they contribute immediately
                    # instead of waiting for misclassification-driven updates.
                    warm_start_regenerated(self.class_hypervectors_, H, y, dims)
                    class_norms[:] = row_norms(self.class_hypervectors_)

            history["train_accuracy"].append(accuracy)
            history["regenerated_dims"].append(float(regenerated))
            history["effective_dim"].append(float(self.encoder_.effective_dim))

            if cfg.early_stop_accuracy is not None and accuracy >= cfg.early_stop_accuracy:
                break

        if cfg.inference_bits is not None:
            self._quantized_classes = QuantizedClassMatrix.from_matrix(
                self.class_hypervectors_, bits=cfg.inference_bits
            )

        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=epochs_run, history=history)

    # --------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "class_hypervectors_")
        H = self.encoder_.encode(X)
        if self.config.inference_bits is not None:
            if self._quantized_classes is None:
                self._quantized_classes = QuantizedClassMatrix.from_matrix(
                    self.class_hypervectors_, bits=self.config.inference_bits
                )
            return self._quantized_classes.scores(H)
        return cosine_similarity_matrix(H, self.class_hypervectors_)

    # ------------------------------------------------------------------ misc
    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode raw features into hyperspace with the trained encoder."""
        check_fitted(self, "encoder_")
        return self.encoder_.encode(X)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self.class_hypervectors_ is not None
        return (
            f"CyberHD(dim={self.config.dim}, encoder={self.config.encoder!r}, "
            f"epochs={self.config.epochs}, regeneration_rate={self.config.regeneration_rate}, "
            f"fitted={fitted})"
        )
