"""The CyberHD classifier: HDC with dynamic dimension regeneration.

This is the paper's primary contribution.  Compared to a static-encoder HDC
model, CyberHD interleaves adaptive retraining with a drop-and-regenerate step
that replaces the least discriminative encoder dimensions with fresh random
draws, so that a small *physical* dimensionality (``D = 0.5k`` in the paper)
accumulates the discriminative power of a much larger *effective*
dimensionality (``D* ~ 4k``).
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.config import CyberHDConfig
from repro.core.regeneration import (
    RegenerationEvent,
    apply_regeneration,
    select_drop_dimensions,
    warm_start_regenerated,
)
from repro.core.trainer import (
    adaptive_epoch,
    adaptive_one_pass_fit,
    online_update,
    training_accuracy,
)
from repro.hdc.backend import QuantizedClassMatrix, resolve_dtype, row_norms
from repro.hdc.encoders import make_encoder
from repro.hdc.encoders.base import BaseEncoder
from repro.hdc.similarity import cosine_similarity_matrix
from repro.models.base import BaseClassifier, FitResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class CyberHD(BaseClassifier):
    """Dynamic-encoding HDC classifier (the CyberHD algorithm).

    Parameters
    ----------
    config:
        A :class:`repro.core.CyberHDConfig`.  Keyword arguments may be passed
        instead and are used to build a config, e.g.
        ``CyberHD(dim=500, regeneration_rate=0.1, seed=0)``.

    Attributes
    ----------
    class_hypervectors_:
        ``(k, D)`` trained class matrix.
    encoder_:
        The (regenerated) encoder used at inference time.
    regeneration_events_:
        One :class:`RegenerationEvent` per drop-and-regenerate step.
    effective_dim_:
        ``D* = D + total regenerated dimensions``; the paper's effective
        dimensionality metric.

    Example
    -------
    >>> from repro import CyberHD, load_dataset
    >>> ds = load_dataset("nsl_kdd", n_train=600, n_test=200, seed=0)
    >>> model = CyberHD(dim=256, epochs=5, seed=0).fit(ds.X_train, ds.y_train)
    >>> acc = model.score(ds.X_test, ds.y_test)
    """

    def __init__(self, config: Optional[CyberHDConfig] = None, **kwargs):
        super().__init__()
        if config is None:
            config = CyberHDConfig(**kwargs)
        elif kwargs:
            raise TypeError("pass either a CyberHDConfig or keyword arguments, not both")
        self.config = config.validate()
        self.encoder_: Optional[BaseEncoder] = None
        self.class_hypervectors_: Optional[np.ndarray] = None
        self.regeneration_events_: List[RegenerationEvent] = []
        self._rng = ensure_rng(self.config.seed)
        self._quantized_classes: Optional[QuantizedClassMatrix] = None
        self._packed_classes = None
        self._class_norms: Optional[np.ndarray] = None
        self.online_batches_ = 0
        self.online_samples_ = 0

    # ------------------------------------------------------------ properties
    @property
    def dim(self) -> int:
        """Physical hypervector dimensionality ``D``."""
        return self.config.dim

    @property
    def inference_bits(self) -> Optional[int]:
        """Configured inference bitwidth (``1`` activates the packed path)."""
        return self.config.inference_bits

    @property
    def effective_dim_(self) -> int:
        """Effective dimensionality ``D*`` accumulated during training."""
        check_fitted(self, "encoder_")
        return self.encoder_.effective_dim

    @property
    def total_regenerated_(self) -> int:
        """Total number of dimensions regenerated during training."""
        check_fitted(self, "encoder_")
        return self.encoder_.regenerated_total

    # ------------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        cfg = self.config
        start = time.perf_counter()
        n_classes = int(y.max()) + 1

        self.encoder_ = make_encoder(
            cfg.encoder,
            in_features=X.shape[1],
            dim=cfg.dim,
            rng=self._rng,
            dtype=resolve_dtype(cfg.dtype),
            **cfg.encoder_kwargs,
        )
        self.regeneration_events_ = []
        self._invalidate_inference_caches()

        H = self.encoder_.encode(X)
        self.class_hypervectors_ = adaptive_one_pass_fit(
            H, y, n_classes, batch_size=cfg.batch_size, rng=self._rng
        )
        # Cached-norm fast path: sample norms change only when regeneration
        # rewrites columns of H; class norms are maintained in place by
        # adaptive_epoch as updates land.
        sample_norms = row_norms(H)
        class_norms = row_norms(self.class_hypervectors_)

        history = {
            "train_accuracy": [
                training_accuracy(self.class_hypervectors_, H, y, class_norms=class_norms)
            ],
            "regenerated_dims": [0.0],
            "effective_dim": [float(self.encoder_.effective_dim)],
        }

        epochs_run = 0
        for epoch in range(1, cfg.epochs + 1):
            _, accuracy = adaptive_epoch(
                self.class_hypervectors_,
                H,
                y,
                learning_rate=cfg.learning_rate,
                batch_size=cfg.batch_size,
                rng=self._rng,
                query_norms=sample_norms,
                class_norms=class_norms,
            )
            epochs_run = epoch
            regenerated = 0
            # Regenerate after every `regeneration_interval`-th epoch, but not
            # after the final epoch: freshly regenerated (untrained) dimensions
            # would only add noise to the deployed model.
            should_regen = (
                cfg.regeneration_rate > 0.0
                and epoch % cfg.regeneration_interval == 0
                and epoch < cfg.epochs
            )
            if should_regen:
                dims, threshold = select_drop_dimensions(
                    self.class_hypervectors_, cfg.regeneration_rate
                )
                if dims.size:
                    apply_regeneration(self.class_hypervectors_, self.encoder_, dims)
                    self.regeneration_events_.append(
                        RegenerationEvent(epoch=epoch, dimensions=dims, variance_threshold=threshold)
                    )
                    regenerated = int(dims.size)
                    # Incremental re-encode: only the regenerated dimensions
                    # change, so just those columns of the training matrix are
                    # recomputed in place.
                    H[:, dims] = self.encoder_.encode_partial(X, dims)
                    sample_norms = row_norms(H)
                    # Warm-start the new columns so they contribute immediately
                    # instead of waiting for misclassification-driven updates.
                    warm_start_regenerated(self.class_hypervectors_, H, y, dims)
                    class_norms[:] = row_norms(self.class_hypervectors_)

            history["train_accuracy"].append(accuracy)
            history["regenerated_dims"].append(float(regenerated))
            history["effective_dim"].append(float(self.encoder_.effective_dim))

            if cfg.early_stop_accuracy is not None and accuracy >= cfg.early_stop_accuracy:
                break

        if cfg.inference_bits is not None:
            self._quantized_classes = QuantizedClassMatrix.from_matrix(
                self.class_hypervectors_, bits=cfg.inference_bits
            )

        self._class_norms = class_norms
        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=epochs_run, history=history)

    # -------------------------------------------------------- online learning
    def _partial_fit(self, X: np.ndarray, y: np.ndarray) -> None:
        """One online pass through the PR 1 backend (segment-sum updates).

        Cold-starting through ``partial_fit`` builds the dynamic encoder and
        a zero class matrix on the first batch; drift-triggered dimension
        regeneration is a separate, explicit step
        (:meth:`regenerate_online`), typically driven by a
        ``repro.serving.DriftMonitor``.
        """
        cfg = self.config
        if self.encoder_ is None:
            self.encoder_ = make_encoder(
                cfg.encoder,
                in_features=X.shape[1],
                dim=cfg.dim,
                rng=self._rng,
                dtype=resolve_dtype(cfg.dtype),
                **cfg.encoder_kwargs,
            )
            n_classes = int(self.classes_.shape[0])
            dtype = resolve_dtype(cfg.dtype)
            self.class_hypervectors_ = np.zeros((n_classes, cfg.dim), dtype=dtype)
            self._class_norms = np.zeros(n_classes, dtype=dtype)
            self.regeneration_events_ = []
            self.fit_result_ = FitResult()
        if self._class_norms is None:
            self._class_norms = row_norms(self.class_hypervectors_)
        H = self.encoder_.encode(X)
        online_update(
            self.class_hypervectors_,
            H,
            y,
            learning_rate=cfg.learning_rate,
            batch_size=cfg.batch_size,
            class_norms=self._class_norms,
        )
        # The quantized/packed inference caches are stale after any online update.
        self._invalidate_inference_caches()
        self.online_batches_ += 1
        self.online_samples_ += int(X.shape[0])

    def regenerate_online(
        self,
        X_recent: Optional[np.ndarray] = None,
        y_recent: Optional[np.ndarray] = None,
        rate: Optional[float] = None,
    ) -> Optional[RegenerationEvent]:
        """Drift-triggered drop-and-regenerate on a deployed model.

        Selects the lowest-variance dimensions of the current class matrix,
        redraws their encoder base vectors, and (when a recent labeled
        buffer is supplied) warm-starts the fresh columns from
        ``encode_partial`` -- only the regenerated columns of the buffer are
        ever encoded, the same incremental re-encode contract the offline
        ``fit`` uses.  Dimensions that are *not* selected keep their encoder
        parameters and class-matrix columns bit-for-bit, so predictions
        restricted to the surviving dimensions are unchanged.

        Returns the :class:`RegenerationEvent` (with ``online=True`` and
        ``epoch=-1``), or None when the configured rate selects nothing.
        """
        check_fitted(self, "class_hypervectors_")
        rate = self.config.regeneration_rate if rate is None else float(rate)
        dims, threshold = select_drop_dimensions(self.class_hypervectors_, rate)
        if dims.size == 0:
            return None
        apply_regeneration(self.class_hypervectors_, self.encoder_, dims)
        if X_recent is not None and y_recent is not None and len(X_recent):
            X_recent = np.asarray(X_recent)
            y_idx = np.searchsorted(self.classes_, np.asarray(y_recent))
            y_idx = np.clip(y_idx, 0, self.classes_.shape[0] - 1)
            if not np.array_equal(self.classes_[y_idx], np.asarray(y_recent)):
                raise ValueError(
                    "regenerate_online received labels outside the known class set"
                )
            columns = self.encoder_.encode_partial(X_recent, dims)
            warm_start_regenerated(
                self.class_hypervectors_, columns, y_idx, dims, H_is_partial=True
            )
        if self._class_norms is not None:
            self._class_norms[:] = row_norms(self.class_hypervectors_)
        self._invalidate_inference_caches()
        event = RegenerationEvent(
            epoch=-1, dimensions=dims, variance_threshold=threshold, online=True
        )
        self.regeneration_events_.append(event)
        return event

    # --------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "class_hypervectors_")
        return self.scores_from_encoded(self.encoder_.encode(X))

    def scores_from_encoded(self, H: np.ndarray) -> np.ndarray:
        """Per-class scores for already-encoded queries.

        The serving path uses this to time encoding and classification as
        separate stages; ``predict_scores(X)`` is equivalent to
        ``scores_from_encoded(encode(X))``.
        """
        check_fitted(self, "class_hypervectors_")
        if self.uses_packed_inference:
            return self.packed_class_matrix().scores(H)
        if self.config.inference_bits is not None:
            if self._quantized_classes is None:
                self._quantized_classes = QuantizedClassMatrix.from_matrix(
                    self.class_hypervectors_, bits=self.config.inference_bits
                )
            return self._quantized_classes.scores(H)
        return cosine_similarity_matrix(H, self.class_hypervectors_)

    # ------------------------------------------------------------------ misc
    def encode(self, X: np.ndarray) -> np.ndarray:
        """Encode raw features into hyperspace with the trained encoder."""
        check_fitted(self, "encoder_")
        return self.encoder_.encode(X)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self.class_hypervectors_ is not None
        return (
            f"CyberHD(dim={self.config.dim}, encoder={self.config.encoder!r}, "
            f"epochs={self.config.epochs}, regeneration_rate={self.config.regeneration_rate}, "
            f"fitted={fitted})"
        )
