"""CyberHD: the paper's primary contribution.

``repro.core`` contains the dynamic-encoding HDC classifier itself
(:class:`CyberHD`), its configuration (:class:`CyberHDConfig`), the shared
adaptive-training routines (:mod:`repro.core.trainer`) and the
variance-driven dimension-regeneration logic (:mod:`repro.core.regeneration`).
"""

from repro.core.config import CyberHDConfig
from repro.core.cyberhd import CyberHD
from repro.core.regeneration import RegenerationEvent, select_drop_dimensions

__all__ = ["CyberHD", "CyberHDConfig", "select_drop_dimensions", "RegenerationEvent"]
