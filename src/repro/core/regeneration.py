"""Variance-driven dimension selection and regeneration (steps ``D``-``H``).

CyberHD's key idea: after training, dimensions whose values are similar across
*all* class hypervectors store common information and contribute little to
telling classes apart.  Those dimensions are identified by (1) normalizing the
class matrix row-wise, (2) computing the per-dimension variance across
classes, (3) taking the ``R%`` lowest-variance dimensions.  The selected
dimensions are zeroed in the model and their encoder base vectors are redrawn,
after which retraining continues.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hdc.backend import segment_sum
from repro.hdc.encoders.base import BaseEncoder
from repro.hdc.operations import lowest_variance_dimensions, normalize_rows


@dataclass(frozen=True)
class RegenerationEvent:
    """Record of one drop-and-regenerate step.

    Attributes
    ----------
    epoch:
        Retraining epoch after which the regeneration happened (1-based).
    dimensions:
        Indices of the regenerated dimensions.
    variance_threshold:
        Largest cross-class variance among the dropped dimensions (useful for
        diagnosing whether the regeneration rate is too aggressive).
    """

    epoch: int
    dimensions: np.ndarray
    variance_threshold: float
    #: True for drift-triggered regenerations on a deployed model (the
    #: streaming path); such events carry ``epoch = -1``.
    online: bool = False


def select_drop_dimensions(
    class_hypervectors: np.ndarray,
    regeneration_rate: float,
) -> Tuple[np.ndarray, float]:
    """Select the lowest-variance dimensions to drop.

    Parameters
    ----------
    class_hypervectors:
        ``(k, D)`` class matrix (not necessarily normalized; normalization is
        applied internally as in the paper's workflow step ``D``).
    regeneration_rate:
        Fraction ``R`` of dimensions to drop, in ``[0, 1)``.

    Returns
    -------
    (dimensions, threshold):
        Sorted dimension indices to regenerate and the maximum variance among
        them (0.0 when nothing is selected).
    """
    if not 0.0 <= regeneration_rate < 1.0:
        raise ConfigurationError("regeneration_rate must be in [0, 1)")
    m = np.asarray(class_hypervectors, dtype=np.float64)
    if m.ndim != 2:
        raise ConfigurationError("class_hypervectors must be a (k, D) matrix")
    dim = m.shape[1]
    count = int(round(regeneration_rate * dim))
    if count == 0:
        return np.empty(0, dtype=np.int64), 0.0
    normalized = normalize_rows(m)
    dims = lowest_variance_dimensions(normalized, count)
    variances = normalized.var(axis=0)
    threshold = float(variances[dims].max()) if dims.size else 0.0
    return dims, threshold


def warm_start_regenerated(
    class_hypervectors: np.ndarray,
    H: np.ndarray,
    y: np.ndarray,
    dimensions: np.ndarray,
    H_is_partial: bool = False,
) -> np.ndarray:
    """Warm-start freshly regenerated dimensions from the training data.

    After regeneration the selected class-matrix columns are all zero, so the
    new dimensions would only start contributing once enough *misclassified*
    samples update them -- which can take many epochs once the model is
    already accurate.  Instead, the columns are initialized with a one-pass
    class bundling of the re-encoded training data restricted to the
    regenerated dimensions.

    The bundled columns are rescaled **per class** so that each class's new
    entries match the magnitude of that class's surviving entries.  A single
    global scale would let the majority classes (whose raw bundles are large)
    dominate and would effectively erase the rare attack classes from the
    regenerated dimensions -- exactly the classes NIDS cares most about.

    ``class_hypervectors`` is modified in place and returned.

    When ``H_is_partial`` is True, ``H`` holds only the regenerated columns
    (shape ``(n, len(dimensions))``, the output of ``encode_partial``) --
    the online regeneration path uses this to avoid ever materializing a
    full re-encode of its replay buffer.
    """
    dimensions = np.asarray(dimensions, dtype=np.int64)
    if dimensions.size == 0:
        return class_hypervectors
    y = np.asarray(y, dtype=np.int64)
    H = np.asarray(H)
    columns = H if H_is_partial else H[:, dimensions]
    if columns.shape[1] != dimensions.size:
        raise ConfigurationError(
            f"warm start expected {dimensions.size} encoded columns, got {columns.shape[1]}"
        )
    new_cols = segment_sum(columns, y, class_hypervectors.shape[0])

    keep_mask = np.ones(class_hypervectors.shape[1], dtype=bool)
    keep_mask[dimensions] = False
    surviving = class_hypervectors[:, keep_mask]
    if surviving.size:
        target_scale = np.mean(np.abs(surviving), axis=1, keepdims=True)
    else:
        target_scale = np.ones((class_hypervectors.shape[0], 1))
    current_scale = np.mean(np.abs(new_cols), axis=1, keepdims=True)
    scale = np.where(current_scale > 0.0, target_scale / np.maximum(current_scale, 1e-12), 1.0)
    class_hypervectors[:, dimensions] = new_cols * scale
    return class_hypervectors


def apply_regeneration(
    class_hypervectors: np.ndarray,
    encoder: BaseEncoder,
    dimensions: np.ndarray,
) -> np.ndarray:
    """Zero the dropped dimensions in the model and regenerate the encoder.

    The class-matrix entries of the dropped dimensions are reset to zero so
    the regenerated dimensions start from a clean slate; the encoder redraws
    the corresponding base vectors.  ``class_hypervectors`` is modified in
    place and also returned.
    """
    dimensions = np.asarray(dimensions, dtype=np.int64)
    if dimensions.size == 0:
        return class_hypervectors
    encoder.regenerate(dimensions)
    class_hypervectors[:, dimensions] = 0.0
    return class_hypervectors
