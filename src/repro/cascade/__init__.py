"""Cascaded detection: packed binary pre-filter -> multiclass escalation.

Every flow hits the 1-bit packed benign/attack pre-filter; only suspicious
flows (predicted attack, or benign under the escalation margin) escalate to
the multiclass head that names the attack category.  See ``docs/cascade.md``.
"""

from repro.cascade.cluster import CascadeSpec, attach_cascade, publish_prefilter
from repro.cascade.pipeline import (
    PREFILTER_CLASS_NAMES,
    CascadeConfig,
    CascadeEvaluation,
    CascadePipeline,
    cascade_with_margin,
    train_cascade_dataset,
    train_cascade_flows,
    train_cascade_packets,
)
from repro.cascade.stage import CascadeClassifyStage, classifier_scores

__all__ = [
    "PREFILTER_CLASS_NAMES",
    "CascadeClassifyStage",
    "CascadeConfig",
    "CascadeEvaluation",
    "CascadePipeline",
    "CascadeSpec",
    "attach_cascade",
    "cascade_with_margin",
    "classifier_scores",
    "publish_prefilter",
    "train_cascade_dataset",
    "train_cascade_flows",
    "train_cascade_packets",
]
