"""The cascaded detection pipeline and its training entry points.

A :class:`CascadePipeline` is a :class:`~repro.nids.pipeline.DetectionPipeline`
whose classification stage is the two-head cascade
(:class:`~repro.cascade.stage.CascadeClassifyStage`): a packed binary
benign/attack pre-filter screens every flow, and only suspicious flows
escalate to the multiclass head that names the attack category.  Because it
*is* a ``DetectionPipeline`` -- same ``stages`` contract, same
``build_serving_stages``, same ``detect_flows`` -- the streaming detector,
the trace replayer and the golden-trace differential harness serve it
unchanged.

The two heads share the feature extractor and the training-time scaler, so
the escalated slice sees byte-identical features to a standalone multiclass
pipeline -- that is the property the parity tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cascade.stage import CascadeClassifyStage
from repro.core.cyberhd import CyberHD
from repro.datasets.base import NIDSDataset
from repro.datasets.preprocessing import MinMaxScaler
from repro.exceptions import ConfigurationError
from repro.nids.flow import FlowRecord, FlowTable
from repro.nids.metrics import DetectionReport, detection_report
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline
from repro.serving.stages import (
    AlertStage,
    FeatureExtractionStage,
    ServingBatch,
    Stage,
)

#: Pre-filter class labels: benign is 0, attack is 1 (the ``to_binary``
#: convention of :class:`~repro.datasets.base.NIDSDataset`).
PREFILTER_CLASS_NAMES = ("benign", "attack")


@dataclass(frozen=True)
class CascadeConfig:
    """Knobs of a cascaded detector.

    Attributes
    ----------
    escalation_margin:
        Benign-predicted flows whose pre-filter margin falls below this
        escalate anyway (``0`` = trust every benign verdict, ``1`` =
        escalate everything).  Binary HDC margins are *normalized* score
        gaps and sit well under 0.05 in practice -- the benign/attack
        prototypes are highly correlated -- so useful thresholds are in the
        0.002-0.02 range (see ``docs/cascade.md`` for the tuning table).
    prefilter_dim:
        Hypervector dimensionality of the binary pre-filter.  ``None``
        inherits the multiclass head's dimension; the binary task is much
        easier than category naming, so a smaller pre-filter (e.g. 1-2k
        against a 4k head) buys most of the cascade's throughput headroom.
    prefilter_bits:
        Quantization of the pre-filter's inference path; ``1`` (default)
        serves the packed XOR/popcount fabric.
    multiclass_bits:
        Quantization of the escalation head; ``None`` = full float32.
    benign_class:
        Multiclass class name assigned to cleared flows; ``None`` picks the
        first non-attack name in the head's label table.
    """

    escalation_margin: float = 0.01
    prefilter_dim: Optional[int] = None
    prefilter_bits: int = 1
    multiclass_bits: Optional[int] = None
    benign_class: Optional[str] = None

    def validate(self) -> "CascadeConfig":
        """Check parameter ranges and return ``self``."""
        if not 0.0 <= self.escalation_margin <= 1.0:
            raise ConfigurationError(
                f"escalation_margin must be in [0, 1], got {self.escalation_margin}"
            )
        if self.prefilter_dim is not None and self.prefilter_dim < 64:
            raise ConfigurationError("prefilter_dim must be >= 64")
        if self.prefilter_bits < 1:
            raise ConfigurationError("prefilter_bits must be >= 1")
        if self.multiclass_bits is not None and self.multiclass_bits < 1:
            raise ConfigurationError("multiclass_bits must be >= 1")
        return self


@dataclass
class CascadeEvaluation:
    """Outcome of evaluating a cascade on a tabular test split."""

    #: Full-population detection report in the multiclass label space.
    report: DetectionReport
    #: Detection report restricted to the escalated slice.
    escalated_report: Optional[DetectionReport]
    #: Which test rows escalated to the multiclass head.
    escalated: np.ndarray
    #: Cascade predictions (multiclass label indices) for every test row.
    predictions: np.ndarray

    @property
    def escalation_fraction(self) -> float:
        """Fraction of evaluated rows that escalated."""
        if self.escalated.size == 0:
            return 0.0
        return float(np.mean(self.escalated))


class CascadePipeline(DetectionPipeline):
    """Packed pre-filter -> multiclass escalation, as one detection pipeline.

    Parameters
    ----------
    prefilter:
        A trained binary benign/attack :class:`DetectionPipeline` (two
        classes, typically 1-bit packed).
    multiclass:
        A trained multiclass :class:`DetectionPipeline` naming attack
        categories.  The cascade adopts its extractor, scaler, label table
        and benign set; ``self.classifier`` is the multiclass head, so
        head-level APIs (``evaluate_dataset``, persistence of the head,
        cluster publication) keep working.
    config:
        A :class:`CascadeConfig` (margin + benign naming; the dim/bits
        fields only matter to the training helpers).
    """

    def __init__(
        self,
        prefilter: DetectionPipeline,
        multiclass: DetectionPipeline,
        config: Optional[CascadeConfig] = None,
        alert_manager=None,
        telemetry=None,
    ):
        config = (config or CascadeConfig()).validate()
        if not prefilter.is_fitted:
            raise ConfigurationError("the cascade pre-filter is not trained")
        if not multiclass.is_fitted:
            raise ConfigurationError("the cascade multiclass head is not trained")
        if len(prefilter.class_names) != 2:
            raise ConfigurationError(
                "the cascade pre-filter must be binary; got classes "
                f"{prefilter.class_names!r}"
            )
        super().__init__(
            classifier=multiclass.classifier,
            benign_classes=multiclass._benign,
            alert_manager=alert_manager or multiclass.alert_manager,
            telemetry=telemetry,
        )
        self.prefilter = prefilter
        self.multiclass = multiclass
        self.config = config
        self.extractor = multiclass.extractor
        self._scaler = multiclass._scaler
        self._class_names = multiclass._class_names
        prefilter_benign = next(
            (
                name
                for name in prefilter.class_names
                if not prefilter.is_attack_class(name)
            ),
            None,
        )
        if prefilter_benign is None:
            raise ConfigurationError(
                "the pre-filter's class table carries no benign class: "
                f"{prefilter.class_names!r}"
            )
        benign = config.benign_class or next(
            (name for name in self._class_names if not self.is_attack_class(name)),
            None,
        )
        if benign is None or benign not in self._class_names:
            raise ConfigurationError(
                "the cascade needs a benign class in the multiclass label "
                f"table to assign cleared flows to; got {benign!r} against "
                f"{self._class_names!r}"
            )
        self.benign_class = benign
        self.cascade_stage = CascadeClassifyStage(
            prefilter=prefilter.classifier,
            prefilter_class_names=prefilter.class_names,
            multiclass=multiclass.classifier,
            class_names=self._class_names,
            benign_class=benign,
            escalation_margin=config.escalation_margin,
            prefilter_benign=prefilter_benign,
        )

    # ------------------------------------------------------------ properties
    @property
    def escalation_margin(self) -> float:
        """The configured escalation threshold."""
        return self.cascade_stage.escalation_margin

    @property
    def stages(self) -> List[Stage]:
        """extract -> cascade (pre-filter + escalate) -> alert."""
        if self._stages is None:
            self._stages = [
                FeatureExtractionStage(self.extractor, self._scaler),
                self.cascade_stage,
                AlertStage(self.is_attack_class, self.alert_manager),
            ]
        return self._stages

    def cascade_stats(self) -> Dict[str, Any]:
        """Lifetime pre-filter/escalation counters."""
        return self.cascade_stage.to_dict()

    # --------------------------------------------------------------- no refit
    def fit_dataset(self, dataset: NIDSDataset) -> "DetectionPipeline":
        raise ConfigurationError(
            "a CascadePipeline composes two already-trained heads; train them "
            "with train_cascade_dataset()/train_cascade_flows() instead"
        )

    def fit_flows(self, flows: Sequence[FlowRecord]) -> "DetectionPipeline":
        raise ConfigurationError(
            "a CascadePipeline composes two already-trained heads; train them "
            "with train_cascade_dataset()/train_cascade_flows() instead"
        )

    def partial_fit_flows(self, flows: Sequence[FlowRecord]) -> int:
        raise ConfigurationError(
            "online learning on a cascade is ambiguous (two heads, two label "
            "spaces); adapt the heads individually and rebuild the cascade"
        )

    # --------------------------------------------------------------- evaluate
    def classify_matrix(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Cascade predictions for pre-extracted features.

        Returns ``(label_indices, escalated_mask)`` in the multiclass label
        space -- the tabular twin of ``detect_flows`` used by the evaluation
        and benchmark paths.
        """
        batch = ServingBatch(features=np.asarray(X))
        self.cascade_stage.run(batch, self.telemetry)
        name_to_index = {name: i for i, name in enumerate(self.class_names)}
        labels = np.asarray(
            [name_to_index[p] for p in batch.predictions], dtype=np.int64
        )
        mask = self.cascade_stage.last_escalation_mask
        assert mask is not None
        return labels, mask

    def evaluate_cascade(self, dataset: NIDSDataset) -> CascadeEvaluation:
        """Full cascade evaluation on a dataset's test split.

        Unlike the inherited ``evaluate_dataset`` (which scores the
        multiclass head alone), this runs the actual two-stage path and
        reports both the end-to-end detection report and the report
        restricted to the escalated slice -- the slice whose predictions
        must match the standalone head bit for bit.
        """
        if tuple(dataset.class_names) != self.class_names:
            raise ConfigurationError(
                "dataset label table does not match the cascade's multiclass "
                f"head: {tuple(dataset.class_names)!r} vs {self.class_names!r}"
            )
        predictions, escalated = self.classify_matrix(dataset.X_test)
        attack_mask = (
            dataset.schema.attack_mask if dataset.schema is not None else None
        )
        report = detection_report(
            dataset.y_test, predictions, self.class_names, attack_mask=attack_mask
        )
        escalated_report = None
        if escalated.any():
            escalated_report = detection_report(
                dataset.y_test[escalated],
                predictions[escalated],
                self.class_names,
                attack_mask=attack_mask,
            )
        return CascadeEvaluation(
            report=report,
            escalated_report=escalated_report,
            escalated=escalated,
            predictions=predictions,
        )


# ----------------------------------------------------------------- training
def _head_model(
    dim: int, epochs: int, seed: Optional[int], inference_bits: Optional[int]
) -> CyberHD:
    return CyberHD(dim=dim, epochs=epochs, seed=seed, inference_bits=inference_bits)


def train_cascade_dataset(
    dataset: NIDSDataset,
    config: Optional[CascadeConfig] = None,
    dim: int = 2048,
    epochs: int = 5,
    seed: int = 0,
) -> CascadePipeline:
    """Train both cascade heads on a tabular dataset.

    The pre-filter trains on the dataset's binary benign/attack view
    (``dataset.to_binary()``, which carries a synthesized two-class schema)
    at ``config.prefilter_dim`` with ``config.prefilter_bits`` inference;
    the multiclass head trains on the full label space at ``dim``.
    """
    config = (config or CascadeConfig()).validate()
    if dataset.schema is None:
        raise ConfigurationError(
            "training a cascade from a dataset requires a schema with attack "
            "flags (to derive the binary pre-filter view)"
        )
    binary = dataset.to_binary()
    prefilter = DetectionPipeline(
        _head_model(
            config.prefilter_dim or dim, epochs, seed, config.prefilter_bits
        )
    ).fit_dataset(binary)
    multiclass = DetectionPipeline(
        _head_model(dim, epochs, seed, config.multiclass_bits)
    ).fit_dataset(dataset)
    return CascadePipeline(prefilter, multiclass, config=config)


def train_cascade_flows(
    flows: Sequence[FlowRecord],
    config: Optional[CascadeConfig] = None,
    dim: int = 2048,
    epochs: int = 5,
    seed: int = 0,
    benign_names: Sequence[str] = DetectionPipeline.DEFAULT_BENIGN_NAMES,
) -> CascadePipeline:
    """Train both cascade heads from labeled flow records.

    Features are extracted and min-max scaled **once** and shared by both
    heads (identical scaling is what guarantees escalated-slice parity with
    a standalone multiclass pipeline).  Labels in ``benign_names``
    (case-insensitive) collapse to the pre-filter's benign class; everything
    else is attack.
    """
    config = (config or CascadeConfig()).validate()
    flows = list(flows)
    if not flows:
        raise ConfigurationError("cannot train a cascade on an empty flow list")
    benign = {name.lower() for name in benign_names}

    multiclass = DetectionPipeline(
        _head_model(dim, epochs, seed, config.multiclass_bits),
        benign_classes=benign_names,
    )
    X_raw, labels = multiclass.extractor.extract_batch(flows)
    class_names = tuple(sorted(set(labels)))
    if len(class_names) < 2:
        raise ConfigurationError(
            "cascade training flows must contain at least two classes"
        )
    if not any(name.lower() in benign for name in class_names):
        raise ConfigurationError(
            f"cascade training flows carry no benign label ({class_names!r}); "
            "the pre-filter needs both sides of the binary task"
        )
    if all(name.lower() in benign for name in class_names):
        raise ConfigurationError(
            f"cascade training flows carry no attack label ({class_names!r})"
        )
    name_to_index = {name: i for i, name in enumerate(class_names)}
    y_multi = np.asarray([name_to_index[label] for label in labels], dtype=np.int64)
    y_binary = np.asarray(
        [0 if label.lower() in benign else 1 for label in labels], dtype=np.int64
    )
    scaler = MinMaxScaler().fit(X_raw)
    X = scaler.transform(X_raw)

    start = time.perf_counter()
    multiclass.classifier.fit(X, y_multi)
    multiclass._scaler = scaler
    multiclass._class_names = class_names
    multiclass._train_seconds = time.perf_counter() - start
    multiclass._stages = None

    prefilter = DetectionPipeline(
        _head_model(
            config.prefilter_dim or dim, epochs, seed, config.prefilter_bits
        ),
        benign_classes=("benign",),
    )
    start = time.perf_counter()
    prefilter.classifier.fit(X, y_binary)
    prefilter._scaler = scaler
    prefilter._class_names = PREFILTER_CLASS_NAMES
    prefilter._train_seconds = time.perf_counter() - start
    prefilter._stages = None

    return CascadePipeline(prefilter, multiclass, config=config)


def train_cascade_packets(
    packets: Sequence[Packet],
    config: Optional[CascadeConfig] = None,
    dim: int = 2048,
    epochs: int = 5,
    seed: int = 0,
    idle_timeout: float = 5.0,
) -> CascadePipeline:
    """Assemble labeled packets into flows and train a cascade on them."""
    table = FlowTable(idle_timeout=idle_timeout)
    flows = table.add_packets(list(packets)) + table.flush()
    return train_cascade_flows(
        flows, config=config, dim=dim, epochs=epochs, seed=seed
    )


def cascade_with_margin(
    cascade: CascadePipeline, escalation_margin: float
) -> CascadePipeline:
    """A new cascade over the same trained heads with a different margin.

    Margin sweeps (the tuning table in ``docs/cascade.md``) re-wrap the
    heads instead of retraining them.
    """
    return CascadePipeline(
        cascade.prefilter,
        cascade.multiclass,
        config=replace(cascade.config, escalation_margin=escalation_margin),
    )
