"""The cascaded classification stage: packed pre-filter -> escalation head.

Every flow in the batch is scored by the binary benign/attack *pre-filter*
(designed to run the packed 1-bit XOR/popcount path); only flows the
pre-filter finds suspicious -- predicted attack, or predicted benign with a
decision margin below the escalation threshold -- are re-scored by the
*multiclass* head that names the attack category.  Under realistic traffic
mixes (overwhelmingly benign) the escalated slice is a few percent of the
batch, so the cascade holds end-to-end throughput near packed speed while
escalated flows get exactly the multiclass head's predictions.

Telemetry is split into two stages: ``prefilter`` (all flows) and
``escalate`` (the suspicious slice only), so the escalation fraction is
visible per batch and in the aggregate recorder.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.models.base import BaseClassifier
from repro.serving.stages import ServingBatch, Stage, score_confidences
from repro.serving.telemetry import TelemetryRecorder


def classifier_scores(classifier: BaseClassifier, X: np.ndarray) -> np.ndarray:
    """Score ``X`` through the classifier's fastest available path.

    The same routing as :class:`~repro.serving.stages.ClassifyStage`: the
    fused packed 1-bit path when the classifier serves one, the split HDC
    encode/score path otherwise, plain ``predict_scores`` as the fallback.
    Scores are numerically identical across call sites, which is what makes
    the cascade's escalated-slice predictions bit-match the standalone head.
    """
    packed = bool(getattr(classifier, "uses_packed_inference", False)) and hasattr(
        classifier, "encode_packed"
    )
    if packed:
        H_packed = classifier.encode_packed(X)
        encoder = getattr(classifier, "encoder_", None)
        dtype = getattr(encoder, "dtype", None) or (
            X.dtype if X.dtype in (np.float32, np.float64) else np.float64
        )
        return classifier.scores_from_packed(H_packed, dtype=dtype)
    if hasattr(classifier, "encode") and hasattr(classifier, "scores_from_encoded"):
        return classifier.scores_from_encoded(classifier.encode(X))
    return classifier.predict_scores(X)


class CascadeClassifyStage(Stage):
    """Two-stage classification: binary pre-filter, multiclass escalation.

    Parameters
    ----------
    prefilter:
        The fitted binary benign/attack classifier (typically a 1-bit packed
        :class:`~repro.core.CyberHD`).
    prefilter_class_names:
        The pre-filter's two class names, index-aligned with its labels.
    prefilter_benign:
        Which of the two pre-filter classes is benign.
    multiclass:
        The fitted multiclass head naming attack categories.
    class_names:
        The multiclass label table (index-aligned with the head's labels).
    benign_class:
        The multiclass class name assigned to flows the pre-filter clears
        confidently (never escalated).
    escalation_margin:
        Flows the pre-filter predicts *benign* still escalate when their
        normalized score margin (:func:`score_confidences`) falls below this
        threshold.  ``0`` escalates only predicted attacks; ``1`` escalates
        everything (the multiclass-parity configuration).

    Notes
    -----
    ``batch.scores`` is left ``None``: the two heads disagree on class
    count, so a merged score matrix would be ill-formed (the same contract
    as :class:`~repro.serving.stages.TenantRoutedStage`).  Confidences merge
    fine -- the pre-filter margin for cleared flows, the head margin for
    escalated ones.
    """

    name = "cascade"

    def __init__(
        self,
        prefilter: BaseClassifier,
        prefilter_class_names: Sequence[str],
        multiclass: BaseClassifier,
        class_names: Sequence[str],
        benign_class: str,
        escalation_margin: float = 0.01,
        prefilter_benign: str = "benign",
    ):
        self.prefilter = prefilter
        self.prefilter_class_names = tuple(prefilter_class_names)
        if len(self.prefilter_class_names) != 2:
            raise ConfigurationError(
                "the cascade pre-filter must be a binary benign/attack "
                f"classifier; got classes {self.prefilter_class_names!r}"
            )
        if prefilter_benign not in self.prefilter_class_names:
            raise ConfigurationError(
                f"pre-filter benign class {prefilter_benign!r} is not one of "
                f"{self.prefilter_class_names!r}"
            )
        self.prefilter_benign = prefilter_benign
        self._benign_label = self.prefilter_class_names.index(prefilter_benign)
        self.multiclass = multiclass
        self.class_names = tuple(class_names)
        if benign_class not in self.class_names:
            raise ConfigurationError(
                f"benign class {benign_class!r} is not in the multiclass "
                f"label table {self.class_names!r}"
            )
        self.benign_class = benign_class
        if not 0.0 <= escalation_margin <= 1.0:
            raise ConfigurationError(
                f"escalation_margin must be in [0, 1], got {escalation_margin}"
            )
        self.escalation_margin = float(escalation_margin)
        #: Flows seen by the pre-filter / escalated to the head (lifetime).
        self.prefilter_flows = 0
        self.escalated_flows = 0
        #: Escalation mask of the most recent batch (evaluation hook).
        self.last_escalation_mask: Optional[np.ndarray] = None

    # ------------------------------------------------------------------- API
    @property
    def escalation_fraction(self) -> float:
        """Lifetime fraction of flows escalated to the multiclass head."""
        if self.prefilter_flows == 0:
            return 0.0
        return self.escalated_flows / self.prefilter_flows

    def escalation_mask(self, X: np.ndarray) -> np.ndarray:
        """Which rows of ``X`` the pre-filter escalates (pure, untimed)."""
        scores = classifier_scores(self.prefilter, X)
        confidences = score_confidences(scores)
        labels = np.asarray(self.prefilter.classes_)[np.argmax(scores, axis=1)]
        return (labels != self._benign_label) | (
            confidences < self.escalation_margin
        )

    def run(
        self, batch: ServingBatch, telemetry: Optional[TelemetryRecorder] = None
    ) -> None:
        clock = telemetry.clock if telemetry is not None else time.perf_counter
        X = batch.features
        n = 0 if X is None else int(X.shape[0])
        if n == 0:
            batch.scores = None
            batch.confidences = np.zeros(0)
            batch.predictions = []
            self.last_escalation_mask = np.zeros(0, dtype=bool)
            return

        # -------------------------------- stage 1: pre-filter (every flow)
        start = clock()
        pre_scores = classifier_scores(self.prefilter, X)
        pre_confidences = score_confidences(pre_scores)
        pre_labels = np.asarray(self.prefilter.classes_)[
            np.argmax(pre_scores, axis=1)
        ]
        escalate = (pre_labels != self._benign_label) | (
            pre_confidences < self.escalation_margin
        )
        self._observe(batch, telemetry, "prefilter", clock() - start, n)
        self.prefilter_flows += n

        predictions: List[str] = [self.benign_class] * n
        confidences = pre_confidences.astype(np.float64, copy=True)

        # --------------------------- stage 2: escalation (suspicious slice)
        escalated = np.flatnonzero(escalate)
        start = clock()
        if escalated.size:
            head_scores = classifier_scores(self.multiclass, X[escalated])
            head_confidences = score_confidences(head_scores)
            head_labels = np.asarray(self.multiclass.classes_)[
                np.argmax(head_scores, axis=1)
            ]
            for row, label, confidence in zip(
                escalated, head_labels, head_confidences
            ):
                predictions[row] = self.class_names[label]
                confidences[row] = confidence
        self._observe(
            batch, telemetry, "escalate", clock() - start, int(escalated.size)
        )
        self.escalated_flows += int(escalated.size)
        self.last_escalation_mask = escalate

        # Heads disagree on class count, so no merged score matrix exists
        # (same contract as the tenant-routed composite stage).
        batch.scores = None
        batch.predictions = predictions
        batch.confidences = confidences

    def process(self, batch: ServingBatch) -> None:  # pragma: no cover - run() overrides
        self.run(batch, None)

    def to_dict(self) -> Dict[str, Any]:
        """Lifetime cascade counters (JSON-friendly)."""
        return {
            "prefilter_flows": self.prefilter_flows,
            "escalated_flows": self.escalated_flows,
            "escalation_fraction": self.escalation_fraction,
            "escalation_margin": self.escalation_margin,
        }

    # ------------------------------------------------------------- internals
    def _observe(
        self,
        batch: ServingBatch,
        telemetry: Optional[TelemetryRecorder],
        stage_name: str,
        seconds: float,
        items: int,
    ) -> None:
        if telemetry is not None:
            telemetry.stage(stage_name).observe(seconds, items)
        batch.stage_seconds[stage_name] = (
            batch.stage_seconds.get(stage_name, 0.0) + seconds
        )
