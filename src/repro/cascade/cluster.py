"""Cluster-side cascade wiring: publish both heads over shared memory.

The coordinator publishes the *multiclass head* through its ordinary
:class:`~repro.cluster.shared_model.ModelPublication` (a
:class:`~repro.cascade.pipeline.CascadePipeline` *is* a
``DetectionPipeline`` whose classifier is the head, so the existing
publication path needs no change).  The *pre-filter* rides in a second
publication whose picklable attach handle travels to every worker inside a
:class:`CascadeSpec`; workers attach both, rebuild zero-copy replicas and
compose the cascade stage chain locally.  Worker respawn re-ships the same
``WorkerConfig`` (spec included), so a replacement incarnation reattaches
the cascade automatically -- exactly the fabric attach contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cascade.pipeline import CascadeConfig, CascadePipeline
from repro.cluster.shared_model import (
    AttachedPublication,
    ModelPublication,
    PublicationSpec,
)
from repro.nids.pipeline import DetectionPipeline


@dataclass(frozen=True)
class CascadeSpec:
    """Picklable worker bootstrap for cascade serving.

    Travels inside :class:`~repro.cluster.worker.WorkerConfig` next to the
    main (multiclass-head) publication spec.
    """

    #: Attach handle of the pre-filter's shared-memory publication.
    prefilter: PublicationSpec
    escalation_margin: float
    #: Multiclass class name assigned to flows the pre-filter clears.
    benign_class: str


def publish_prefilter(
    cascade: CascadePipeline, name_prefix: str = "rc"
) -> Tuple[ModelPublication, CascadeSpec]:
    """Publish the cascade's pre-filter head; returns (publication, spec).

    The caller (the cluster coordinator) owns the returned publication's
    lifecycle -- ``close(unlink=True)`` at shutdown, exactly like the main
    model publication.
    """
    publication = ModelPublication(cascade.prefilter, name_prefix=name_prefix)
    spec = CascadeSpec(
        prefilter=publication.spec(),
        escalation_margin=cascade.escalation_margin,
        benign_class=cascade.benign_class,
    )
    return publication, spec


def attach_cascade(
    spec: CascadeSpec, multiclass: DetectionPipeline
) -> Tuple[AttachedPublication, CascadePipeline]:
    """Worker-side: attach the pre-filter and compose the cascade replica.

    ``multiclass`` is the replica the worker already built from the main
    publication.  Returns the pre-filter attachment (the worker must
    ``close()`` it on exit, never unlink) and the composed cascade.
    """
    attached = AttachedPublication(spec.prefilter)
    prefilter = attached.build_replica()
    cascade = CascadePipeline(
        prefilter,
        multiclass,
        config=CascadeConfig(
            escalation_margin=spec.escalation_margin,
            benign_class=spec.benign_class,
        ),
    )
    return attached, cascade
