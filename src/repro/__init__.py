"""CyberHD reproduction: hyperdimensional computing for network intrusion detection.

This package reproduces the system described in *"Late Breaking Results:
Scalable and Efficient Hyperdimensional Computing for Network Intrusion
Detection"* (DAC 2023).  It contains:

``repro.hdc``
    The hyperdimensional-computing substrate: hypervector algebra, similarity
    kernels, encoders (RBF random features, linear projection, level-ID
    record encoding), item memories and bitwidth quantization.

``repro.core``
    The paper's primary contribution, :class:`repro.core.CyberHD` -- an HDC
    classifier with variance-driven dimension dropping and regeneration.

``repro.models`` / ``repro.baselines``
    The baseline learners the paper compares against: a static-encoder HDC
    classifier, a NumPy multilayer perceptron and a from-scratch SVM.

``repro.datasets``
    Schema-faithful synthetic generators for the four NIDS datasets used in
    the paper's evaluation (NSL-KDD, UNSW-NB15, CIC-IDS-2017, CIC-IDS-2018)
    plus preprocessing utilities.

``repro.nids``
    A network-intrusion-detection substrate: synthetic traffic generation,
    columnar flow assembly, vectorized feature extraction, a detection
    pipeline composed of serving stages, alerting and streaming detection.

``repro.serving``
    The production streaming subsystem: a batched inference engine
    (micro-batch scheduling, bounded queues with backpressure policies,
    per-stage telemetry) plus online learning (``partial_fit`` label
    feedback and drift-triggered dimension regeneration) and graceful
    shutdown.

``repro.cluster``
    Sharded multi-worker serving: consistent-hash flow routing, worker
    processes attached zero-copy to a shared-memory model publication,
    additive delta-merged online learning, and a scenario-driven load
    generator (``serve --workers N``, ``bench --suite cluster``).

``repro.replay``
    Dataset-to-traffic replay: compiles the tabular evaluation datasets
    into deterministic packet traces, replays them through the serving
    paths (closed-loop or wall-clock paced open-loop), and holds every
    serving architecture to flow-for-flow alert parity with offline batch
    inference via the golden-trace differential harness
    (``repro replay``, ``bench --suite replay``).

``repro.hardware``
    Quantization-aware hardware substrate: bit-flip fault injection,
    analytical CPU/FPGA performance and energy models, robustness harness.

``repro.eval``
    The experiment harness that regenerates every table and figure of the
    paper's evaluation section.
"""

from repro._version import __version__
from repro.core.cyberhd import CyberHD, CyberHDConfig
from repro.models.hdc_classifier import BaselineHDC
from repro.baselines.mlp import MLPClassifier
from repro.baselines.svm import KernelSVM, LinearSVM, RBFSampleSVM
from repro.datasets.loaders import available_datasets, load_dataset
from repro.hdc.encoders import LevelIDEncoder, LinearEncoder, RBFEncoder

__all__ = [
    "__version__",
    "CyberHD",
    "CyberHDConfig",
    "BaselineHDC",
    "MLPClassifier",
    "LinearSVM",
    "RBFSampleSVM",
    "KernelSVM",
    "available_datasets",
    "load_dataset",
    "RBFEncoder",
    "LinearEncoder",
    "LevelIDEncoder",
]
