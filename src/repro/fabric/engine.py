"""The single-process multi-tenant serving engine.

One :class:`FabricEngine` serves *every* tenant of a registry from one
process: a single shard-less flow table assembles packets, and a
:class:`~repro.serving.stages.TenantRoutedStage` routes each assembled flow
to its tenant's own extract -> classify -> alert chain, resolved per batch
through an :class:`~repro.fabric.registry.AttachedFabric` -- which is what
makes hot-swaps and delta merges take effect at the next batch boundary
with no engine restart.

Online learning is tenant-isolated end to end: each lane's ``partial_fit``
updates accumulate in that tenant's *private* replica matrix, and every
``sync_interval`` batches the engine reports each dirty lane's delta to the
registry's tenant-scoped merge (:meth:`ModelRegistry.merge_tenant_deltas`).
No other tenant's class matrix is ever touched -- the recall-isolation
bench measures exactly this property.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fabric.registry import AttachedFabric, ModelRegistry, RegistrySpec
from repro.fabric.router import TenantKeyer
from repro.nids.flow import FlowRecord, FlowTable
from repro.nids.packets import Packet
from repro.serving.stages import (
    FlowAssemblyStage,
    ServingBatch,
    TenantRoutedStage,
    run_stages,
)
from repro.serving.telemetry import TelemetryRecorder


class FabricEngine:
    """Serves all tenants of a registry through per-tenant stage lanes.

    Parameters
    ----------
    spec:
        The registry's attach table (:meth:`ModelRegistry.spec`).
    keyer:
        Maps each assembled flow to its tenant.
    reader_id:
        This engine's lease row in the registry (one engine per row).
    online:
        Enable per-tenant online learning; requires ``registry`` (the
        merge authority) in the same process.
    sync_interval:
        Batches between delta-merge rounds in online mode.
    quorum:
        Tenant-scoped merge quorum forwarded to the registry (a single
        engine reports one delta per tenant, so the default is 1).
    """

    def __init__(
        self,
        spec: RegistrySpec,
        keyer: TenantKeyer,
        reader_id: int = 0,
        idle_timeout: float = 5.0,
        online: bool = False,
        sync_interval: int = 8,
        registry: Optional[ModelRegistry] = None,
        quorum: int = 1,
    ):
        if online and registry is None:
            raise ConfigurationError(
                "online fabric serving needs the owning ModelRegistry in-process "
                "(it is the delta-merge authority)"
            )
        if sync_interval < 1:
            raise ConfigurationError("sync_interval must be >= 1")
        self.fabric = AttachedFabric(spec, reader_id=reader_id)
        self.keyer = keyer
        self.online = bool(online)
        self.sync_interval = int(sync_interval)
        self.registry = registry
        self.quorum = int(quorum)
        self.table = FlowTable(idle_timeout=idle_timeout)
        self.telemetry = TelemetryRecorder()
        self.tenant_stage = TenantRoutedStage(
            self._tenant_of,
            self._chain_for,
            on_tenant_batch=self._learn if self.online else None,
        )
        self.stages = [FlowAssemblyStage(self.table), self.tenant_stage]
        self.batches_handled = 0
        self.online_updates = 0
        self.online_samples = 0
        #: Per-tenant alias generation the lane's learning base was taken at.
        self._lane_generation: Dict[int, int] = {}
        #: Per-tenant class-matrix snapshot deltas are computed against.
        self._bases: Dict[int, np.ndarray] = {}
        #: Tenants with unreported partial_fit updates.
        self._dirty: set = set()

    # ------------------------------------------------------------- lane hooks
    def _tenant_of(self, flow: FlowRecord) -> int:
        return self.keyer.tenant_of_key(flow.key)

    def _pipeline(self, tenant: int):
        """The tenant's live replica, re-snapshotting the learning base
        whenever the alias generation moved (swap or merged deltas)."""
        generation = self.fabric.generation(tenant)
        pipeline = self.fabric.pipeline_for(tenant)
        if self.online and self._lane_generation.get(tenant) != generation:
            self._bases[tenant] = pipeline.classifier.class_vector_snapshot()
            self._lane_generation[tenant] = generation
        return pipeline

    def _chain_for(self, tenant: int):
        return self._pipeline(tenant).stages

    def _learn(self, tenant: int, sub: ServingBatch) -> None:
        """Fold one tenant's known-label flows into its private replica."""
        pipeline = self._pipeline(tenant)
        data = pipeline.batch_training_data(sub)
        if data is None:
            return
        X, y = data
        pipeline.classifier.partial_fit(X, y)
        self._dirty.add(tenant)
        self.online_updates += 1
        self.online_samples += int(y.shape[0])

    # -------------------------------------------------------------------- API
    def process_packets(self, packets: Sequence[Packet]) -> ServingBatch:
        """Serve one micro-batch of packets across every tenant lane."""
        batch = ServingBatch(packets=list(packets))
        run_stages(self.stages, batch, self.telemetry)
        self.batches_handled += 1
        if self.online and self.batches_handled % self.sync_interval == 0:
            self.sync()
        return batch

    def sync(self) -> List[int]:
        """Report every dirty lane's delta to its tenant-scoped merge.

        Returns the tenants merged this round.  Each lane rebases (and
        re-snapshots its base) on its next batch, when ``pipeline_for``
        observes the bumped generation.
        """
        merged = []
        for tenant in sorted(self._dirty):
            pipeline = self.fabric.pipeline_for(tenant)
            delta = pipeline.classifier.class_vector_delta(self._bases[tenant])
            self.registry.merge_tenant_deltas(tenant, [delta], quorum=self.quorum)
            merged.append(tenant)
        self._dirty.clear()
        return merged

    def finalize(self) -> ServingBatch:
        """Flush still-open flows through their tenant lanes; final sync."""
        batch = ServingBatch()
        for stage in self.stages:
            stage.run(batch, self.telemetry)
            stage.flush(batch)
        if self.online and self._dirty:
            self.sync()
        return batch

    def serve(
        self, packets: Sequence[Packet], window_size: int = 512
    ) -> Dict[str, Any]:
        """Replay a packet stream in micro-batches and return the summary."""
        if window_size < 1:
            raise ConfigurationError("window_size must be >= 1")
        packets = list(packets)
        for start in range(0, len(packets), window_size):
            self.process_packets(packets[start : start + window_size])
        self.finalize()
        return self.summary()

    def summary(self) -> Dict[str, Any]:
        """JSON-friendly engine + per-tenant serving report."""
        tenants = self.tenant_stage.to_dict()
        for key, report in tenants.items():
            tenant = int(key)
            report["live_version"] = self.fabric.live_version(tenant)
            report["swaps"] = self.fabric.swaps(tenant)
        return {
            "batches": self.batches_handled,
            "online": self.online,
            "online_updates": self.online_updates,
            "online_samples": self.online_samples,
            "tenants": tenants,
            "telemetry": self.telemetry.to_dict(),
        }

    def close(self) -> None:
        """Release leases and detach from the registry's blocks."""
        self.fabric.close()

    def __enter__(self) -> "FabricEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
