"""Shadow/canary rollout: mirrored scoring as the promotion gate.

A candidate model version never replaces a tenant's live version on faith.
It first scores a *mirror* of the tenant's traffic alongside the live
model, and promotion is gated on two checks over the mirrored outcomes:

1. **Parity** -- the live model's per-flow records become an in-memory
   :class:`~repro.replay.golden.GoldenTrace`, and the candidate's records
   are diffed against it with the repository's serving-correctness oracle
   (:func:`~repro.replay.golden.diff_against_golden`).  A retrain is
   *expected* to move some decisions, so the gate accepts a bounded
   divergence fraction rather than demanding exact parity; the default
   budget of zero is the hot-fix/repack case where behaviour must not move.
2. **Recall** -- the candidate's attack recall on the mirrored traffic's
   ground-truth labels must not regress below the live model's by more
   than ``recall_tolerance``.

A corrupted candidate (e.g. bit-flipped packed words) fails both checks
while the live model keeps serving untouched -- the decision object says
*no* and nothing about the tenant's alias row has changed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline
from repro.replay.golden import (
    CONFIDENCE_ATOL,
    CONFIDENCE_RTOL,
    GoldenTrace,
    ParityReport,
    diff_against_golden,
)
from repro.replay.replayer import predictions_from_detections
from repro.serving.stages import FlowPrediction


def attack_recall(
    records: Iterable[FlowPrediction], is_attack, default: float = 1.0
) -> float:
    """Fraction of ground-truth attack flows the model flagged.

    ``is_attack`` is the label-space predicate (ground-truth labels and
    class names share a label space).  Mirrored slices with no attack
    flows cannot measure recall; they return ``default`` so an all-benign
    mirror does not veto promotion.
    """
    attacks = flagged = 0
    for record in records:
        if is_attack(record.label):
            attacks += 1
            if record.flagged:
                flagged += 1
    return flagged / attacks if attacks else default


@dataclass
class PromotionDecision:
    """Outcome of one shadow evaluation: the promotion gate's evidence."""

    tenant: int
    live_version: int
    candidate_version: int
    parity: ParityReport
    live_recall: float
    candidate_recall: float
    recall_tolerance: float
    divergence_budget: float
    #: Candidate wall time as a fraction of live wall time -- the cost of
    #: serving the mirror (1.0 = mirroring doubled the scoring work).
    shadow_overhead_fraction: float
    n_flows: int

    @property
    def divergence_fraction(self) -> float:
        """Fraction of golden flows with *any* mismatch (unique tokens)."""
        if self.parity.n_golden == 0:
            return 0.0
        diverged = set(self.parity.missing_flows)
        diverged.update(self.parity.extra_flows)
        diverged.update(self.parity.prediction_mismatches)
        diverged.update(self.parity.flag_mismatches)
        diverged.update(self.parity.confidence_mismatches)
        return len(diverged) / self.parity.n_golden

    @property
    def parity_ok(self) -> bool:
        """Divergence within budget (exact parity when the budget is 0)."""
        return self.divergence_fraction <= self.divergence_budget

    @property
    def recall_ok(self) -> bool:
        """Candidate recall within tolerance of live recall."""
        return self.candidate_recall >= self.live_recall - self.recall_tolerance

    @property
    def ok(self) -> bool:
        """The promotion gate: both parity and recall must hold."""
        return self.parity_ok and self.recall_ok

    def summary(self) -> str:
        """One-line verdict for CLI output."""
        verdict = "PROMOTE" if self.ok else "REJECT"
        return (
            f"tenant {self.tenant} v{self.candidate_version} vs live "
            f"v{self.live_version}: {verdict} "
            f"(divergence {self.divergence_fraction:.4f}/"
            f"{self.divergence_budget:.4f}, recall "
            f"{self.candidate_recall:.4f} vs live {self.live_recall:.4f}, "
            f"shadow overhead {self.shadow_overhead_fraction:.2f}x)"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly view."""
        return {
            "tenant": self.tenant,
            "live_version": self.live_version,
            "candidate_version": self.candidate_version,
            "ok": self.ok,
            "parity_ok": self.parity_ok,
            "recall_ok": self.recall_ok,
            "divergence_fraction": self.divergence_fraction,
            "divergence_budget": self.divergence_budget,
            "live_recall": self.live_recall,
            "candidate_recall": self.candidate_recall,
            "recall_tolerance": self.recall_tolerance,
            "shadow_overhead_fraction": self.shadow_overhead_fraction,
            "n_flows": self.n_flows,
            "parity": self.parity.to_dict(),
        }


def _score(
    pipeline: DetectionPipeline, packets: Sequence[Packet], idle_timeout: float
):
    """Mirrored batch scoring: per-flow records plus wall seconds."""
    pipeline.alert_manager.clear()
    start = time.perf_counter()
    result = pipeline.detect_packets(packets, idle_timeout=idle_timeout)
    elapsed = time.perf_counter() - start
    return predictions_from_detections([result], pipeline), elapsed


def evaluate_candidate(
    live: DetectionPipeline,
    candidate: DetectionPipeline,
    packets: Sequence[Packet],
    tenant: int = 0,
    live_version: int = 0,
    candidate_version: int = 0,
    idle_timeout: float = 5.0,
    recall_tolerance: float = 0.0,
    divergence_budget: float = 0.0,
    rtol: float = CONFIDENCE_RTOL,
    atol: float = CONFIDENCE_ATOL,
) -> PromotionDecision:
    """Score mirrored traffic on both models and build the gate's decision.

    The live model runs first and its records are the golden reference;
    the candidate's shadow pass is timed against it, which is where the
    reported ``shadow_overhead_fraction`` comes from.
    """
    if not packets:
        raise ConfigurationError("shadow evaluation needs a non-empty mirror slice")
    live_records, live_seconds = _score(live, packets, idle_timeout)
    candidate_records, shadow_seconds = _score(candidate, packets, idle_timeout)
    golden = GoldenTrace(trace_name=f"shadow-t{tenant}", records=live_records)
    parity = diff_against_golden(
        golden,
        candidate_records,
        path=f"shadow_t{tenant}_v{candidate_version}",
        rtol=rtol,
        atol=atol,
    )
    return PromotionDecision(
        tenant=int(tenant),
        live_version=int(live_version),
        candidate_version=int(candidate_version),
        parity=parity,
        live_recall=attack_recall(live_records.values(), live.is_attack_class),
        candidate_recall=attack_recall(
            candidate_records.values(), live.is_attack_class
        ),
        recall_tolerance=float(recall_tolerance),
        divergence_budget=float(divergence_budget),
        shadow_overhead_fraction=shadow_seconds / max(live_seconds, 1e-9),
        n_flows=len(live_records),
    )


class ShadowDeployment:
    """Drives one tenant's candidate through shadow scoring to promotion.

    Attaches both the tenant's live version and the candidate from the
    registry (fresh replicas, so shadow scoring perturbs neither), runs
    :func:`evaluate_candidate` over a mirror slice, and -- only if the
    gate says yes -- flips the tenant's alias to the candidate.
    """

    def __init__(
        self,
        registry,
        tenant: int,
        candidate_version: int,
        recall_tolerance: float = 0.0,
        divergence_budget: float = 0.0,
        idle_timeout: float = 5.0,
        fault_injector=None,
    ):
        from repro.cluster.shared_model import AttachedPublication

        self.registry = registry
        self.tenant = int(tenant)
        self.candidate_version = int(candidate_version)
        self.recall_tolerance = float(recall_tolerance)
        self.divergence_budget = float(divergence_budget)
        self.idle_timeout = float(idle_timeout)
        self.live_version = registry.live_version(self.tenant)
        if self.live_version == self.candidate_version:
            raise ConfigurationError(
                f"tenant {self.tenant}: candidate v{self.candidate_version} is "
                "already live; nothing to shadow"
            )
        self._attach = AttachedPublication
        self._attachments = []
        #: Optional :class:`~repro.serving.faults.ServingFaultInjector`
        #: applied to the candidate's serving replica before the mirror
        #: runs -- the negative-path drill: a bit-flipped candidate must be
        #: rejected while the live model keeps serving.  (The injector
        #: corrupts the replica's private packed copy; the published
        #: candidate blocks stay pristine.)
        self.fault_injector = fault_injector

    def _replica(self, version: int) -> DetectionPipeline:
        # The replica's encoder tensors are zero-copy views into the
        # publication's shm blocks, so the attachment must stay open for
        # the replica's lifetime (released in :meth:`close`).
        attached = self._attach(self.registry.publication(self.tenant, version).spec())
        self._attachments.append(attached)
        return attached.build_replica()

    def evaluate(self, packets: Sequence[Packet]) -> PromotionDecision:
        """Run the mirror; no registry state changes."""
        candidate = self._replica(self.candidate_version)
        if self.fault_injector is not None:
            self.fault_injector.inject(candidate.classifier)
        return evaluate_candidate(
            self._replica(self.live_version),
            candidate,
            packets,
            tenant=self.tenant,
            live_version=self.live_version,
            candidate_version=self.candidate_version,
            idle_timeout=self.idle_timeout,
            recall_tolerance=self.recall_tolerance,
            divergence_budget=self.divergence_budget,
        )

    def promote_if_ok(
        self, packets: Sequence[Packet]
    ) -> PromotionDecision:
        """Evaluate, and flip the tenant's alias only on a clean gate."""
        decision = self.evaluate(packets)
        if decision.ok:
            self.registry.promote(self.tenant, self.candidate_version)
        return decision

    def close(self) -> None:
        """Detach the shadow replicas from the publications' blocks."""
        for attached in self._attachments:
            attached.close()
        self._attachments = []

    def __enter__(self) -> "ShadowDeployment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
