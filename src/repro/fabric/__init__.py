"""Multi-tenant model fabric: many versioned detectors on one host.

The fabric generalizes the cluster's single shared publication to a
tenant-keyed registry of versioned models -- hundreds of per-network-segment
detectors resident in shared memory at once (1-bit packed models make the
footprint practical), with atomic generation-bump hot-swap, lease-drained
retirement, tenant-scoped online learning, and shadow/canary promotion
gated on the golden-trace differ.

Modules
-------
``registry``
    :class:`ModelRegistry` (owner side) and :class:`AttachedFabric`
    (reader side): the alias/lease shared-memory protocol.
``router``
    :class:`TenantKeyer` / :class:`TenantRouter`: subnet -> tenant keying
    in front of the cluster's shard routing.
``shadow``
    :class:`ShadowDeployment` / :func:`evaluate_candidate`: mirrored
    scoring and the parity + recall promotion gate.
``engine``
    :class:`FabricEngine`: single-process serving across every tenant
    lane.
"""

from repro.fabric.engine import FabricEngine
from repro.fabric.registry import (
    NO_VERSION,
    AttachedFabric,
    ModelRegistry,
    RegistrySpec,
)
from repro.fabric.router import TenantKeyer, TenantRouter, subnet_of
from repro.fabric.shadow import (
    PromotionDecision,
    ShadowDeployment,
    attack_recall,
    evaluate_candidate,
)

__all__ = [
    "AttachedFabric",
    "FabricEngine",
    "ModelRegistry",
    "NO_VERSION",
    "PromotionDecision",
    "RegistrySpec",
    "ShadowDeployment",
    "TenantKeyer",
    "TenantRouter",
    "attack_recall",
    "evaluate_candidate",
    "subnet_of",
]
