"""Tenant keying in front of the cluster's shard routing.

Tenancy and sharding are orthogonal axes: the :class:`~repro.cluster.router.
ShardRouter` decides *which worker* owns a flow's state (consistent hashing
of the canonical 5-tuple), while the :class:`TenantKeyer` decides *which
model* scores it (which network segment the flow belongs to).  The
:class:`TenantRouter` composes both so the coordinator stamps each frame's
tenant column and routes it in the same pass.

Keying is by source subnet, the deployment unit the paper's per-segment
detectors map to: an explicit ``prefix -> tenant`` table first
(longest-prefix match over both canonical endpoints, so direction
canonicalization cannot flip a flow's tenant), then a stable-hash fallback
(``stable_hash64`` of the /24, mod ``n_tenants``) that spreads unknown
subnets deterministically -- the same process-stable hashing discipline as
shard routing, so replay traces key identically across runs and hosts.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.router import ShardRouter, stable_hash64
from repro.exceptions import ConfigurationError
from repro.nids.flow import FlowKey
from repro.nids.packets import Packet

#: Memo bound, mirroring ShardRouter's (tokens are bounded in practice; the
#: cap is a leak guard for adversarial endpoint churn).
_MEMO_MAX_ENTRIES = 1 << 20


def subnet_of(ip: str) -> str:
    """The /24 prefix of a dotted address (the tenant keying granularity)."""
    return ip.rsplit(".", 1)[0]


class TenantKeyer:
    """Maps flow endpoints to tenant ids, stably across processes.

    Parameters
    ----------
    prefixes:
        Explicit ``ip-prefix -> tenant`` table (e.g. ``{"10.3.": 3}``);
        matched longest-first against both canonical endpoints.
    n_tenants:
        Hash-fallback modulus for endpoints no prefix claims.  ``None``
        with no matching prefix sends the flow to ``default``.
    default:
        Tenant for flows nothing else claims (default 0).
    """

    def __init__(
        self,
        prefixes: Optional[Dict[str, int]] = None,
        n_tenants: Optional[int] = None,
        default: int = 0,
    ):
        if n_tenants is not None and n_tenants < 1:
            raise ConfigurationError("n_tenants must be >= 1")
        self.prefixes = dict(prefixes or {})
        self.n_tenants = int(n_tenants) if n_tenants is not None else None
        self.default = int(default)
        self._ordered = sorted(self.prefixes, key=len, reverse=True)
        self._memo: Dict[str, int] = {}

    @classmethod
    def per_subnet(cls, n_tenants: int, base: str = "10") -> "TenantKeyer":
        """One tenant per ``{base}.<i>.0/24`` internal subnet.

        The layout :class:`~repro.nids.packets.TrafficGenerator` produces
        when each tenant's generator gets ``subnet=f"{base}.<i>.0"``.
        """
        if n_tenants < 1:
            raise ConfigurationError("n_tenants must be >= 1")
        return cls(
            prefixes={f"{base}.{i}.": i for i in range(n_tenants)},
            n_tenants=n_tenants,
        )

    # ------------------------------------------------------------------- API
    def tenant_of_ip(self, ip: str) -> Optional[int]:
        """Tenant claiming ``ip`` via the prefix table, else None."""
        for prefix in self._ordered:
            if ip.startswith(prefix):
                return self.prefixes[prefix]
        return None

    def __call__(self, ip_a: str, ip_b: str) -> int:
        """Tenant of a flow's canonical endpoint pair.

        The signature :meth:`repro.cluster.ring.PacketFrame.from_packets`
        expects for its ``tenant_of`` hook.  Prefix claims win (the claimed
        endpoint is the internal side); the hash fallback keys on
        ``ip_a``'s subnet -- canonical, so direction-stable.
        """
        memo_key = f"{ip_a}|{ip_b}"
        tenant = self._memo.get(memo_key)
        if tenant is not None:
            return tenant
        claimed = self.tenant_of_ip(ip_a)
        if claimed is None:
            claimed = self.tenant_of_ip(ip_b)
        if claimed is None:
            if self.n_tenants is not None:
                claimed = int(
                    stable_hash64(f"subnet:{subnet_of(ip_a)}") % self.n_tenants
                )
            else:
                claimed = self.default
        if len(self._memo) < _MEMO_MAX_ENTRIES:
            self._memo[memo_key] = claimed
        return claimed

    def tenant_of_key(self, key: FlowKey) -> int:
        """Tenant of a canonical :class:`FlowKey`."""
        return self(key.ip_a, key.ip_b)

    def tenant_of_packet(self, packet: Packet) -> int:
        """Tenant of one packet's flow (canonicalizes the direction first)."""
        return self.tenant_of_key(FlowKey.from_packet(packet))

    # Memoization is per-process state; a pickled keyer starts cold.
    def __getstate__(self):
        state = self.__dict__.copy()
        state["_memo"] = {}
        return state


class TenantRouter:
    """Shard routing with tenant attribution: the fabric's dispatch front.

    Wraps a :class:`ShardRouter` (flows land on workers exactly as before
    -- tenancy must not move flow state between shards) and adds the
    tenant keying the coordinator stamps into each frame's tenant column.
    """

    def __init__(self, keyer: TenantKeyer, n_workers: int, vnodes: int = 64):
        self.keyer = keyer
        self.shards = ShardRouter(n_workers, vnodes=vnodes)

    @property
    def n_workers(self) -> int:
        """Worker count of the underlying shard ring."""
        return self.shards.n_workers

    def partition_packets(self, packets: Sequence[Packet]) -> List[List[Packet]]:
        """Per-worker packet lists (delegates to the shard router)."""
        return self.shards.partition_packets(packets)

    def tenants_for_packets(self, packets: Iterable[Packet]) -> List[int]:
        """Tenant id per packet (memoized through the keyer)."""
        return [self.keyer.tenant_of_packet(p) for p in packets]
