"""Tenant-keyed model registry with versioned, atomic hot-swap.

The cluster's :class:`~repro.cluster.shared_model.ModelPublication` shares
*one* model with N worker replicas.  The fabric generalizes it to *many*
tenants, each with a history of published versions, all resident in shared
memory at once (packed 1-bit models are 32x smaller, so hundreds of
per-network-segment detectors fit on one host).  Three shared structures
carry the whole coordination protocol:

* **Per-version publications** -- plain ``ModelPublication``s, one per
  ``(tenant, version)``, immutable except for coordinator-side delta merges
  into the tenant's *live* version.
* **The alias table** -- one shm ``int64`` row per tenant:
  ``[live_version, generation, previous_version]``.  A hot-swap writes the
  new live version *first* and bumps the generation *last*; readers poll the
  generation (one aligned int64 load per batch) and re-resolve the live
  version only when it moved, so the flip is atomic from every reader's
  point of view -- a reader sees either the old model or the new one, never
  a mixture.  The same program-order store discipline as the ring buffers'
  head/tail cursors and the publication generation counter.
* **The lease table** -- one shm ``int64`` row per *reader* (single writer
  per cell, the SPSC discipline again): cell ``[reader, tenant]`` holds the
  version that reader's replica of ``tenant`` is currently built on, or
  ``-1``.  :meth:`ModelRegistry.retire` drains on it: an old version's
  blocks are unlinked only once no lease pins it (or the supervisor clears
  a crashed reader's row -- see :meth:`clear_reader`).

Snapshots (:meth:`save` / :meth:`load`) persist every tenant's full version
history -- including the per-version packed 1-bit state, read back from the
live blocks -- into one ``.npz`` via the persistence layer's namespaced
payloads, which is what lets ``repro fabric publish|promote|rollback`` run
as separate processes against one registry file.
"""

from __future__ import annotations

import secrets
import time
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.cluster.shared_model import (
    AttachedPublication,
    ModelPublication,
    PublicationSpec,
    _attach_block,
)
from repro.exceptions import ConfigurationError
from repro.hdc.backend import merge_class_deltas
from repro.nids.pipeline import DetectionPipeline
from repro.persistence import (
    pack_namespaced_states,
    pipeline_from_state,
    unpack_namespaced_states,
)

#: Alias-table columns.
_LIVE, _GEN, _PREV = 0, 1, 2
#: "No version" sentinel in the alias and lease tables.
NO_VERSION = -1


@dataclass(frozen=True)
class RegistrySpec:
    """Picklable attach handle for a whole registry (the worker-side table).

    ``versions`` is the attach-by-spec table: every published
    ``(tenant, version)``'s :class:`PublicationSpec`.  It is a snapshot --
    versions published *after* the spec was taken need a re-shipped spec
    (the coordinator re-sends worker configs on respawn, which refreshes
    it); hot-swapping between versions already in the table is fully
    shared-memory-side.
    """

    alias_block: str
    lease_block: str
    max_tenants: int
    max_readers: int
    versions: Dict[int, Dict[int, PublicationSpec]] = field(repr=False)

    def tenants(self) -> List[int]:
        """Tenant ids carried by this spec, sorted."""
        return sorted(self.versions)


class ModelRegistry:
    """Owner of every tenant's versioned publications plus the swap tables.

    Parameters
    ----------
    max_tenants, max_readers:
        Capacity of the shm alias/lease tables (tenant ids are
        ``0..max_tenants-1``; reader ids -- cluster worker ids, engine
        instances -- are ``0..max_readers-1``).
    name_prefix:
        Short shm name prefix; a random token is appended so concurrent
        registries never collide.
    """

    def __init__(
        self, max_tenants: int = 256, max_readers: int = 32, name_prefix: str = "fb"
    ):
        if max_tenants < 1 or max_readers < 1:
            raise ConfigurationError("max_tenants and max_readers must be >= 1")
        self.max_tenants = int(max_tenants)
        self.max_readers = int(max_readers)
        self._token = f"{name_prefix}-{secrets.token_hex(3)}"
        self._alias_block = shared_memory.SharedMemory(
            create=True, size=self.max_tenants * 3 * 8, name=f"{self._token}-al"
        )
        self._alias = np.ndarray(
            (self.max_tenants, 3), dtype=np.int64, buffer=self._alias_block.buf
        )
        self._alias[:, _LIVE] = NO_VERSION
        self._alias[:, _GEN] = 0
        self._alias[:, _PREV] = NO_VERSION
        self._lease_block = shared_memory.SharedMemory(
            create=True,
            size=self.max_readers * self.max_tenants * 8,
            name=f"{self._token}-le",
        )
        self._lease = np.ndarray(
            (self.max_readers, self.max_tenants),
            dtype=np.int64,
            buffer=self._lease_block.buf,
        )
        self._lease[...] = NO_VERSION
        self._publications: Dict[int, Dict[int, ModelPublication]] = {}
        self._closed = False

    # ------------------------------------------------------------- publishing
    def _check_tenant(self, tenant: int) -> int:
        tenant = int(tenant)
        if not 0 <= tenant < self.max_tenants:
            raise ConfigurationError(
                f"tenant {tenant} outside the registry's 0..{self.max_tenants - 1} range"
            )
        return tenant

    def publish(
        self,
        tenant: int,
        pipeline: DetectionPipeline,
        activate: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> int:
        """Publish ``pipeline`` as the tenant's next version; returns it.

        ``activate=None`` (the default) activates only a tenant's *first*
        version -- later versions stay shadow candidates until
        :meth:`promote` flips the alias.  Pass ``True``/``False`` to force.
        ``version`` pins an explicit number (snapshot restore keeps retired
        gaps); it must exceed every published one (numbering is append-only).
        """
        tenant = self._check_tenant(tenant)
        versions = self._publications.setdefault(tenant, {})
        if version is None:
            version = max(versions) + 1 if versions else 1
        elif versions and int(version) <= max(versions):
            raise ConfigurationError(
                f"tenant {tenant} version numbering is append-only; "
                f"{version} <= published {max(versions)}"
            )
        version = int(version)
        # Publication names must clear macOS's 31-char shm limit:
        # "fb-xxxxxx" is 9 chars and ModelPublication appends "-xxxxxx-chv".
        versions[version] = ModelPublication(pipeline, name_prefix=self._token)
        if activate or (activate is None and self._alias[tenant, _LIVE] == NO_VERSION):
            self.promote(tenant, version)
        return version

    def publish_state(
        self,
        tenant: int,
        state: Dict[str, np.ndarray],
        activate: Optional[bool] = None,
        version: Optional[int] = None,
    ) -> int:
        """Publish a raw pipeline state dict (the snapshot-restore path)."""
        return self.publish(
            tenant, pipeline_from_state(state), activate=activate, version=version
        )

    # -------------------------------------------------------------- accessors
    def tenants(self) -> List[int]:
        """Tenants with at least one published version, sorted."""
        return sorted(self._publications)

    def versions(self, tenant: int) -> List[int]:
        """Published versions of ``tenant``, sorted."""
        return sorted(self._publications.get(self._check_tenant(tenant), {}))

    def live_version(self, tenant: int) -> int:
        """The tenant's live version (``NO_VERSION`` before first publish)."""
        return int(self._alias[self._check_tenant(tenant), _LIVE])

    def previous_version(self, tenant: int) -> int:
        """The version the last promote displaced (the rollback target)."""
        return int(self._alias[self._check_tenant(tenant), _PREV])

    def generation(self, tenant: int) -> int:
        """The tenant's alias generation (bumps on promote/rollback/merge)."""
        return int(self._alias[self._check_tenant(tenant), _GEN])

    def publication(self, tenant: int, version: Optional[int] = None) -> ModelPublication:
        """The publication of ``(tenant, version)`` (default: the live one)."""
        tenant = self._check_tenant(tenant)
        if version is None:
            version = self.live_version(tenant)
        try:
            return self._publications[tenant][int(version)]
        except KeyError:
            raise ConfigurationError(
                f"tenant {tenant} has no published version {version}"
            ) from None

    def total_model_bytes(self) -> int:
        """Shared-memory bytes resident across every published version."""
        total = 0
        for versions in self._publications.values():
            for publication in versions.values():
                spec = publication.spec()
                blocks = list(spec.blocks.values()) + [spec.norms_block]
                if spec.packed_block is not None:
                    blocks += [spec.packed_block, spec.packed_state_block]
                total += sum(
                    int(np.prod(b.shape)) * np.dtype(b.dtype).itemsize for b in blocks
                )
        return total

    # --------------------------------------------------------------- swapping
    def promote(self, tenant: int, version: int) -> int:
        """Atomically make ``version`` the tenant's live model.

        Store order is the whole protocol: previous/live move first, the
        generation bump is the reader-visible commit.  Returns the new
        generation.  The displaced version stays published (it is the
        rollback target) until :meth:`retire`.
        """
        tenant = self._check_tenant(tenant)
        self.publication(tenant, version)  # validates existence
        current = int(self._alias[tenant, _LIVE])
        if current == int(version):
            return int(self._alias[tenant, _GEN])
        if current != NO_VERSION:
            self._alias[tenant, _PREV] = current
        self._alias[tenant, _LIVE] = int(version)
        self._alias[tenant, _GEN] += 1
        return int(self._alias[tenant, _GEN])

    def rollback(self, tenant: int) -> int:
        """Flip the alias back to the previously live version; returns it."""
        tenant = self._check_tenant(tenant)
        previous = int(self._alias[tenant, _PREV])
        if previous == NO_VERSION:
            raise ConfigurationError(f"tenant {tenant} has no version to roll back to")
        self.promote(tenant, previous)
        return previous

    def readers_pinning(self, tenant: int, version: int) -> List[int]:
        """Reader ids whose lease row still pins ``(tenant, version)``."""
        tenant = self._check_tenant(tenant)
        column = np.asarray(self._lease[:, tenant])
        return [int(i) for i in np.flatnonzero(column == int(version))]

    def clear_reader(self, reader_id: int) -> None:
        """Release every lease of ``reader_id`` (supervisor reclaim).

        The fabric analogue of the watchdog's ring-slot reclamation: a
        SIGKILLed reader can never release its leases itself, so its
        supervisor clears the row before (or instead of) respawning it --
        otherwise the crashed incarnation would pin retired versions
        forever.
        """
        if not 0 <= int(reader_id) < self.max_readers:
            raise ConfigurationError(f"reader {reader_id} outside 0..{self.max_readers - 1}")
        self._lease[int(reader_id), :] = NO_VERSION

    def retire(
        self,
        tenant: int,
        version: int,
        timeout: float = 5.0,
        poll: float = 0.005,
        force: bool = False,
    ) -> bool:
        """Unlink ``(tenant, version)`` once every reader has drained off it.

        Blocks up to ``timeout`` seconds for the lease table to release the
        version; returns False (leaving the publication intact) if readers
        still pin it -- unless ``force``, which reclaims anyway (the
        supervisor's prerogative after it has SIGKILLed the laggard).
        Retiring the live version is refused.
        """
        tenant = self._check_tenant(tenant)
        version = int(version)
        publication = self.publication(tenant, version)
        if version == self.live_version(tenant):
            raise ConfigurationError(
                f"refusing to retire tenant {tenant}'s live version {version}; "
                "promote a replacement first"
            )
        deadline = time.monotonic() + max(0.0, timeout)
        while self.readers_pinning(tenant, version):
            if time.monotonic() >= deadline:
                if not force:
                    return False
                break
            time.sleep(poll)
        publication.close(unlink=True)
        del self._publications[tenant][version]
        if self._alias[tenant, _PREV] == version:
            self._alias[tenant, _PREV] = NO_VERSION
        return True

    # -------------------------------------------------- tenant-scoped learning
    def merge_tenant_deltas(
        self,
        tenant: int,
        deltas: List[np.ndarray],
        quorum: int = 1,
    ) -> int:
        """Merge per-reader ``partial_fit`` deltas into one tenant's live model.

        The cluster coordinator's sync round, scoped to a tenant: the
        additive deltas fold exactly into the live publication's class
        matrix (:func:`repro.hdc.backend.merge_class_deltas` -- no other
        tenant's matrix is touched), the packed words are re-derived, and
        the publication + alias generations bump so readers of *this
        tenant only* rebase.  ``quorum`` is tenant-scoped: fewer reporting
        deltas than the tenant's required quorum aborts the merge (the
        partial round would silently lose contributors' updates).

        Returns the tenant's new alias generation.
        """
        tenant = self._check_tenant(tenant)
        if quorum < 1:
            raise ConfigurationError("quorum must be >= 1")
        deltas = [np.asarray(delta) for delta in deltas if delta is not None]
        if len(deltas) < quorum:
            raise ConfigurationError(
                f"tenant {tenant} sync round collected {len(deltas)} deltas; "
                f"quorum is {quorum}"
            )
        publication = self.publication(tenant)
        merge_class_deltas(publication.class_matrix, deltas, publication.class_norms)
        publication.repack()
        publication.bump_generation()
        self._alias[tenant, _GEN] += 1
        return int(self._alias[tenant, _GEN])

    # ------------------------------------------------------------------ spec
    def spec(self) -> RegistrySpec:
        """The picklable attach table shipped to readers/workers."""
        return RegistrySpec(
            alias_block=self._alias_block.name,
            lease_block=self._lease_block.name,
            max_tenants=self.max_tenants,
            max_readers=self.max_readers,
            versions={
                tenant: {v: pub.spec() for v, pub in versions.items()}
                for tenant, versions in self._publications.items()
            },
        )

    # -------------------------------------------------------------- snapshots
    def save(self, path: Union[str, Path]) -> Path:
        """Snapshot every tenant's version history (plus aliases) to ``path``.

        Per-version state is read back from the live shared blocks
        (:meth:`ModelPublication.state_dict`), so merged deltas and
        repacked 1-bit words land in the archive exactly as served.
        """
        states = {
            f"t{tenant:05d}v{version:05d}": publication.state_dict()
            for tenant, versions in self._publications.items()
            for version, publication in versions.items()
        }
        payload = pack_namespaced_states(states)
        tenants = self.tenants()
        payload["registry_tenants"] = np.array(tenants, dtype=np.int64)
        payload["registry_live"] = np.array(
            [self.live_version(t) for t in tenants], dtype=np.int64
        )
        payload["registry_prev"] = np.array(
            [self.previous_version(t) for t in tenants], dtype=np.int64
        )
        payload["registry_gen"] = np.array(
            [self.generation(t) for t in tenants], dtype=np.int64
        )
        payload["registry_capacity"] = np.array(
            [self.max_tenants, self.max_readers], dtype=np.int64
        )
        path = Path(path)
        np.savez_compressed(path, **payload)
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(
        cls,
        path: Union[str, Path],
        max_tenants: Optional[int] = None,
        max_readers: Optional[int] = None,
        name_prefix: str = "fb",
    ) -> "ModelRegistry":
        """Rebuild a registry (fresh shm blocks) from a :meth:`save` archive."""
        archive = np.load(Path(path), allow_pickle=False)
        capacity = archive["registry_capacity"]
        registry = cls(
            max_tenants=int(max_tenants or capacity[0]),
            max_readers=int(max_readers or capacity[1]),
            name_prefix=name_prefix,
        )
        try:
            slots: List[Tuple[int, int, Dict[str, np.ndarray]]] = []
            for tag, state in unpack_namespaced_states(archive).items():
                tenant, version = int(tag[1:6]), int(tag[7:12])
                slots.append((tenant, version, state))
            # Version numbering is append-only: replay publishes in order,
            # pinning archive numbers so retired-version gaps survive.
            for tenant, version, state in sorted(slots, key=lambda s: (s[0], s[1])):
                registry.publish_state(tenant, state, activate=False, version=version)
            tenants = archive["registry_tenants"]
            for i, tenant in enumerate(tenants):
                tenant = int(tenant)
                live = int(archive["registry_live"][i])
                prev = int(archive["registry_prev"][i])
                if live != NO_VERSION:
                    registry._alias[tenant, _LIVE] = live
                registry._alias[tenant, _PREV] = prev
                registry._alias[tenant, _GEN] = int(archive["registry_gen"][i])
        except BaseException:
            registry.close()
            raise
        return registry

    # -------------------------------------------------------------- lifecycle
    def close(self, unlink: bool = True) -> None:
        """Tear down every publication and the alias/lease tables."""
        if self._closed:
            return
        self._closed = True
        for versions in self._publications.values():
            for publication in versions.values():
                publication.close(unlink=unlink)
        self._publications = {}
        self._alias = None
        self._lease = None
        for block in (self._alias_block, self._lease_block):
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ------------------------------------------------------------------ readers
class _TenantReplica:
    """One reader's materialized pipeline for a tenant (plus its freshness)."""

    __slots__ = ("version", "alias_generation", "pipeline", "swaps")

    def __init__(self, version: int, alias_generation: int, pipeline: DetectionPipeline):
        self.version = version
        self.alias_generation = alias_generation
        self.pipeline = pipeline
        self.swaps = 0


class AttachedFabric:
    """Reader-side attachment to a registry: resolve, serve, follow swaps.

    Each reader owns one lease row exclusively (``reader_id``); every cell
    write is a single aligned int64 store, so the drain protocol needs no
    cross-process atomics.  :meth:`pipeline_for` is the per-batch entry
    point: one generation load on the fast path, a replica rebuild (new
    version) or rebase (same version, merged deltas) when the alias moved.
    """

    def __init__(self, spec: RegistrySpec, reader_id: int = 0):
        if not 0 <= int(reader_id) < spec.max_readers:
            raise ConfigurationError(
                f"reader_id {reader_id} outside the registry's 0..{spec.max_readers - 1}"
            )
        self.spec = spec
        self.reader_id = int(reader_id)
        self._alias_block = _attach_block(spec.alias_block)
        self._alias = np.ndarray(
            (spec.max_tenants, 3), dtype=np.int64, buffer=self._alias_block.buf
        )
        self._lease_block = _attach_block(spec.lease_block)
        self._lease = np.ndarray(
            (spec.max_readers, spec.max_tenants),
            dtype=np.int64,
            buffer=self._lease_block.buf,
        )
        self._attached: Dict[Tuple[int, int], AttachedPublication] = {}
        self._replicas: Dict[int, _TenantReplica] = {}
        # Reattach hygiene: this reader id's row is exclusively ours, and a
        # previous incarnation (a respawned worker reattaching after a
        # SIGKILL) can never release its pins itself -- clear them so the
        # crashed incarnation does not pin retired versions forever.
        self._lease[self.reader_id, :] = NO_VERSION

    # ------------------------------------------------------------------- API
    def tenants(self) -> List[int]:
        """Tenants this attachment can serve (the spec's table)."""
        return self.spec.tenants()

    def live_version(self, tenant: int) -> int:
        """The tenant's currently live version (one shm load)."""
        return int(self._alias[int(tenant), _LIVE])

    def generation(self, tenant: int) -> int:
        """The tenant's alias generation (one shm load)."""
        return int(self._alias[int(tenant), _GEN])

    def swaps(self, tenant: int) -> int:
        """Hot-swaps this reader has followed for ``tenant``."""
        replica = self._replicas.get(int(tenant))
        return replica.swaps if replica is not None else 0

    def replicas(self) -> Dict[int, DetectionPipeline]:
        """The pipelines this reader has materialized, keyed by tenant."""
        return {
            tenant: replica.pipeline for tenant, replica in self._replicas.items()
        }

    def _attach(self, tenant: int, version: int) -> AttachedPublication:
        key = (tenant, version)
        attached = self._attached.get(key)
        if attached is None:
            try:
                pub_spec = self.spec.versions[tenant][version]
            except KeyError:
                raise ConfigurationError(
                    f"reader's attach table has no spec for tenant {tenant} "
                    f"version {version}; re-ship the registry spec"
                ) from None
            attached = self._attached[key] = AttachedPublication(pub_spec)
        return attached

    def pipeline_for(self, tenant: int) -> DetectionPipeline:
        """The tenant's live pipeline replica, rebased/swapped as needed.

        Fast path: one generation load, return the cached replica.  On a
        generation change: if the live *version* moved, build a replica of
        the new version and move the lease pin in one store (the old
        version drains the instant the new pin lands); if only the model
        content moved (a delta merge), rebase the existing replica in
        place.
        """
        tenant = int(tenant)
        generation = int(self._alias[tenant, _GEN])
        replica = self._replicas.get(tenant)
        if replica is not None and replica.alias_generation == generation:
            return replica.pipeline
        version = int(self._alias[tenant, _LIVE])
        if version == NO_VERSION:
            raise ConfigurationError(f"tenant {tenant} has no live version")
        if replica is None or replica.version != version:
            attached = self._attach(tenant, version)
            swaps = replica.swaps + 1 if replica is not None else 0
            replica = _TenantReplica(version, generation, attached.build_replica())
            replica.swaps = swaps
            self._replicas[tenant] = replica
            # Single-store pin swap: the lease cell never transits -1, so
            # the registry's drain loop cannot mistake a swap for idleness.
            self._lease[self.reader_id, tenant] = version
        else:
            self._attach(tenant, version).refresh_replica(replica.pipeline.classifier)
            replica.alias_generation = generation
        return replica.pipeline

    def release(self, tenant: int) -> None:
        """Drop the tenant's replica and release its lease pin."""
        tenant = int(tenant)
        self._replicas.pop(tenant, None)
        self._lease[self.reader_id, tenant] = NO_VERSION

    def close(self) -> None:
        """Release every lease and detach from every block."""
        for tenant in list(self._replicas):
            self.release(tenant)
        for attached in self._attached.values():
            attached.close()
        self._attached = {}
        self._alias = None
        self._lease = None
        for block in (self._alias_block, self._lease_block):
            try:
                block.close()
            except Exception:  # pragma: no cover - double close on teardown
                pass

    def __enter__(self) -> "AttachedFabric":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
