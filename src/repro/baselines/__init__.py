"""Non-HDC baseline learners the paper compares against (DNN and SVM)."""

from repro.baselines.mlp import MLPClassifier
from repro.baselines.svm import KernelSVM, LinearSVM, RBFSampleSVM

__all__ = ["MLPClassifier", "LinearSVM", "RBFSampleSVM", "KernelSVM"]
