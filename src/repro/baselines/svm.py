"""From-scratch SVM baselines (the paper's "SOTA SVM" comparator).

Two variants are provided:

:class:`LinearSVM`
    One-vs-rest linear SVM trained with sub-gradient descent on the
    L2-regularized hinge loss (the Pegasos-style formulation).

:class:`RBFSampleSVM`
    The same one-vs-rest hinge machinery applied on top of a random Fourier
    feature map, approximating an RBF-kernel SVM without the quadratic kernel
    matrix.

:class:`KernelSVM`
    A true Gaussian-kernel SVM trained in the dual with kernelized Pegasos.
    Training cost grows quadratically with the number of training samples and
    inference cost grows with the number of support vectors -- the scaling
    behaviour that makes the paper's SVM baseline "extraordinarily slow" on
    million-flow NIDS datasets.  This is the SVM used by the evaluation
    harness for Figs. 3-4.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.baselines.utils import iterate_minibatches
from repro.models.base import BaseClassifier, FitResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class LinearSVM(BaseClassifier):
    """One-vs-rest linear SVM trained with hinge-loss sub-gradient descent.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger = less regularization).
    epochs:
        Number of passes over the training data.
    learning_rate:
        Initial step size; decayed as ``lr / (1 + decay * epoch)``.
    decay:
        Learning-rate decay factor per epoch.
    batch_size:
        Mini-batch size for the sub-gradient updates.
    fit_intercept:
        Whether to learn a bias term per class.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        C: float = 1.0,
        epochs: int = 30,
        learning_rate: float = 0.05,
        decay: float = 0.02,
        batch_size: int = 64,
        fit_intercept: bool = True,
        seed: Optional[int] = None,
    ):
        super().__init__()
        if C <= 0:
            raise ValueError("C must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.C = float(C)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.decay = float(decay)
        self.batch_size = int(batch_size)
        self.fit_intercept = bool(fit_intercept)
        self._rng = ensure_rng(seed)
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        start = time.perf_counter()
        n_classes = int(y.max()) + 1
        n_features = X.shape[1]
        self.coef_ = np.zeros((n_classes, n_features))
        self.intercept_ = np.zeros(n_classes)
        # One-vs-rest targets in {-1, +1}: column c is +1 for samples of class c.
        targets = np.where(y[:, None] == np.arange(n_classes)[None, :], 1.0, -1.0)
        reg = 1.0 / (self.C * X.shape[0])

        history = {"hinge_loss": []}
        epochs_run = 0
        for epoch in range(1, self.epochs + 1):
            lr = self.learning_rate / (1.0 + self.decay * epoch)
            for idx in iterate_minibatches(X.shape[0], self.batch_size, self._rng):
                Xb = X[idx]
                Tb = targets[idx]
                margins = Tb * (Xb @ self.coef_.T + self.intercept_)
                active = margins < 1.0  # (batch, classes)
                # Sub-gradient of mean hinge + L2 penalty.
                grad_w = reg * self.coef_ - (active * Tb).T @ Xb / Xb.shape[0]
                self.coef_ -= lr * grad_w
                if self.fit_intercept:
                    grad_b = -(active * Tb).mean(axis=0)
                    self.intercept_ -= lr * grad_b
            epochs_run = epoch
            margins = targets * (X @ self.coef_.T + self.intercept_)
            history["hinge_loss"].append(float(np.mean(np.maximum(0.0, 1.0 - margins))))

        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=epochs_run, history=history)

    # --------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "coef_")
        return X @ self.coef_.T + self.intercept_

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LinearSVM(C={self.C}, epochs={self.epochs}, fitted={self.coef_ is not None})"


class RBFSampleSVM(BaseClassifier):
    """RBF-kernel-approximation SVM using random Fourier features.

    The input is mapped through ``z(x) = cos(W x + b)`` with
    ``W ~ N(0, gamma^2)`` and a linear one-vs-rest SVM is trained on ``z(x)``,
    approximating a Gaussian-kernel SVM at a fraction of the cost.  The
    conventional ``sqrt(2/D)`` kernel normalization is deliberately omitted:
    it only rescales the feature space uniformly (which the hinge
    regularization absorbs) and keeping the features at unit scale lets the
    sub-gradient solver converge in a practical number of epochs.

    Parameters
    ----------
    n_components:
        Number of random Fourier features ``D``.
    gamma:
        RBF bandwidth; ``"auto"`` (default) uses ``1 / sqrt(n_features)``,
        which keeps the random-feature phases at unit scale for min-max
        scaled NIDS features.
    C, epochs, learning_rate, decay, batch_size, seed:
        Forwarded to the underlying :class:`LinearSVM`.
    """

    def __init__(
        self,
        n_components: int = 512,
        gamma: "float | str" = "auto",
        C: float = 5.0,
        epochs: int = 30,
        learning_rate: float = 0.2,
        decay: float = 0.02,
        batch_size: int = 64,
        seed: Optional[int] = None,
    ):
        super().__init__()
        if n_components <= 0:
            raise ValueError("n_components must be positive")
        if gamma != "auto" and (not isinstance(gamma, (int, float)) or gamma <= 0):
            raise ValueError("gamma must be positive or 'auto'")
        self.n_components = int(n_components)
        self.gamma = gamma
        self._rng = ensure_rng(seed)
        self._svm = LinearSVM(
            C=C,
            epochs=epochs,
            learning_rate=learning_rate,
            decay=decay,
            batch_size=batch_size,
            seed=self._rng,
        )
        self._projection: Optional[np.ndarray] = None
        self._offset: Optional[np.ndarray] = None

    def _feature_map(self, X: np.ndarray) -> np.ndarray:
        return np.cos(X @ self._projection.T + self._offset)

    def _resolved_gamma(self, n_features: int) -> float:
        if self.gamma == "auto":
            return 1.0 / np.sqrt(n_features)
        return float(self.gamma)

    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        start = time.perf_counter()
        gamma = self._resolved_gamma(X.shape[1])
        self._projection = self._rng.normal(0.0, gamma, size=(self.n_components, X.shape[1]))
        self._offset = self._rng.uniform(0.0, 2.0 * np.pi, size=self.n_components)
        Z = self._feature_map(X)
        # The inner LinearSVM performs its own label bookkeeping on 0..k-1
        # indices, which is exactly what _fit receives.
        self._svm.fit(Z, y)
        result = self._svm.fit_result_
        elapsed = time.perf_counter() - start
        return FitResult(
            train_seconds=elapsed,
            epochs_run=result.epochs_run,
            history=dict(result.history),
        )

    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "_projection")
        return self._svm.predict_scores(self._feature_map(X))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self._projection is not None
        return (
            f"RBFSampleSVM(n_components={self.n_components}, gamma={self.gamma}, "
            f"fitted={fitted})"
        )


class KernelSVM(BaseClassifier):
    """One-vs-rest Gaussian-kernel SVM trained with kernelized Pegasos.

    The dual coefficients are learned with the kernelized Pegasos algorithm
    (Shalev-Shwartz et al.): at step ``t`` a random training sample ``i`` is
    drawn, its decision values are computed from the full kernel row, and
    ``alpha_i`` is incremented for every class whose margin is violated.
    The full ``n x n`` kernel matrix is precomputed, so training is
    ``O(n^2)`` in both time and memory and inference is ``O(n_train)`` per
    query -- the classic kernel-SVM scaling the paper's efficiency comparison
    relies on.

    Parameters
    ----------
    gamma:
        RBF kernel bandwidth ``K(x, z) = exp(-gamma * ||x - z||^2)``;
        ``"auto"`` uses ``1 / n_features``.
    lambda_reg:
        Pegasos regularization parameter (smaller = larger effective C).
    epochs:
        Number of passes (each pass draws ``n`` random samples).
    max_kernel_elements:
        Safety cap on the kernel matrix size; exceeding it raises, protecting
        laptop runs from accidental multi-GB allocations.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        gamma: "float | str" = "auto",
        lambda_reg: float = 1e-4,
        epochs: int = 10,
        max_kernel_elements: int = 200_000_000,
        seed: Optional[int] = None,
    ):
        super().__init__()
        if gamma != "auto" and (not isinstance(gamma, (int, float)) or gamma <= 0):
            raise ValueError("gamma must be positive or 'auto'")
        if lambda_reg <= 0:
            raise ValueError("lambda_reg must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.gamma = gamma
        self.lambda_reg = float(lambda_reg)
        self.epochs = int(epochs)
        self.max_kernel_elements = int(max_kernel_elements)
        self._rng = ensure_rng(seed)
        self.alpha_: Optional[np.ndarray] = None
        self._X_train: Optional[np.ndarray] = None
        self._targets: Optional[np.ndarray] = None
        self._steps: int = 0

    # ----------------------------------------------------------------- kernel
    def _resolved_gamma(self, n_features: int) -> float:
        if self.gamma == "auto":
            return 1.0 / n_features
        return float(self.gamma)

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        gamma = self._resolved_gamma(A.shape[1])
        sq_a = np.sum(A**2, axis=1)[:, None]
        sq_b = np.sum(B**2, axis=1)[None, :]
        distances = np.maximum(sq_a + sq_b - 2.0 * (A @ B.T), 0.0)
        return np.exp(-gamma * distances)

    # ------------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        start = time.perf_counter()
        n = X.shape[0]
        if n * n > self.max_kernel_elements:
            raise ValueError(
                f"kernel matrix would need {n * n} elements "
                f"(cap: {self.max_kernel_elements}); subsample the training set"
            )
        n_classes = int(y.max()) + 1
        self._X_train = X.copy()
        self._targets = np.where(y[:, None] == np.arange(n_classes)[None, :], 1.0, -1.0)
        K = self._kernel(X, X)
        self.alpha_ = np.zeros((n, n_classes))

        history = {"margin_violations": []}
        total_steps = 0
        for _ in range(self.epochs):
            violations = 0
            order = self._rng.permutation(n)
            for i in order:
                total_steps += 1
                decision = K[i] @ (self.alpha_ * self._targets)
                decision /= self.lambda_reg * total_steps
                violated = self._targets[i] * decision < 1.0
                if np.any(violated):
                    violations += int(np.count_nonzero(violated))
                    self.alpha_[i, violated] += 1.0
            history["margin_violations"].append(float(violations))
        self._steps = total_steps
        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=self.epochs, history=history)

    # --------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "alpha_")
        K = self._kernel(X, self._X_train)
        return K @ (self.alpha_ * self._targets) / (self.lambda_reg * max(self._steps, 1))

    @property
    def n_support_vectors_(self) -> int:
        """Number of training samples with a non-zero dual coefficient."""
        check_fitted(self, "alpha_")
        return int(np.count_nonzero(np.any(self.alpha_ > 0, axis=1)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelSVM(gamma={self.gamma}, lambda_reg={self.lambda_reg}, "
            f"epochs={self.epochs}, fitted={self.alpha_ is not None})"
        )
