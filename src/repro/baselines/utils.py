"""Shared helpers for the from-scratch baseline learners."""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np


def one_hot(y: np.ndarray, n_classes: int) -> np.ndarray:
    """One-hot encode integer class indices into an ``(n, k)`` matrix."""
    y = np.asarray(y, dtype=np.int64)
    out = np.zeros((y.shape[0], n_classes))
    out[np.arange(y.shape[0]), y] = 1.0
    return out


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


def cross_entropy(probabilities: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross-entropy between predicted probabilities and one-hot targets."""
    eps = 1e-12
    return float(-np.mean(np.sum(targets * np.log(probabilities + eps), axis=1)))


def iterate_minibatches(
    n_samples: int,
    batch_size: int,
    rng: np.random.Generator,
    shuffle: bool = True,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``0..n_samples-1`` in mini-batches."""
    order = rng.permutation(n_samples) if shuffle else np.arange(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]


def hinge_loss(margins: np.ndarray) -> float:
    """Mean hinge loss ``max(0, 1 - margin)``."""
    return float(np.mean(np.maximum(0.0, 1.0 - margins)))


def xavier_init(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """Xavier/Glorot-uniform weight matrix and zero bias for a dense layer."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    W = rng.uniform(-limit, limit, size=(fan_in, fan_out))
    b = np.zeros(fan_out)
    return W, b
