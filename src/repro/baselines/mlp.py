"""From-scratch NumPy multilayer perceptron (the paper's "SOTA DNN" baseline).

The paper's DNN baseline [8] is a multilayer perceptron.  This implementation
provides the same computational shape -- dense layers, ReLU activations,
softmax cross-entropy, Adam optimization, mini-batch training -- in pure
NumPy, so the efficiency comparison against HDC (Fig. 4) reflects the same
algorithmic costs the paper measures.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.utils import cross_entropy, iterate_minibatches, one_hot, softmax, xavier_init
from repro.models.base import BaseClassifier, FitResult
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


class _AdamState:
    """Per-parameter Adam moment estimates."""

    def __init__(self, shape: Tuple[int, ...]):
        self.m = np.zeros(shape)
        self.v = np.zeros(shape)

    def step(
        self,
        grad: np.ndarray,
        lr: float,
        t: int,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> np.ndarray:
        """Return the Adam update for ``grad`` at timestep ``t`` (1-based)."""
        self.m = beta1 * self.m + (1.0 - beta1) * grad
        self.v = beta2 * self.v + (1.0 - beta2) * grad**2
        m_hat = self.m / (1.0 - beta1**t)
        v_hat = self.v / (1.0 - beta2**t)
        return lr * m_hat / (np.sqrt(v_hat) + eps)


class MLPClassifier(BaseClassifier):
    """Multilayer perceptron with ReLU hidden layers and softmax output.

    Parameters
    ----------
    hidden_layers:
        Sizes of the hidden layers, e.g. ``(256, 128)``.
    epochs:
        Number of passes over the training set.
    learning_rate:
        Adam learning rate.
    batch_size:
        Mini-batch size.
    l2:
        L2 weight-decay coefficient.
    early_stop_loss:
        Stop training once the epoch training loss falls below this value.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        hidden_layers: Sequence[int] = (256, 128),
        epochs: int = 30,
        learning_rate: float = 1e-3,
        batch_size: int = 128,
        l2: float = 1e-5,
        early_stop_loss: Optional[float] = None,
        seed: Optional[int] = None,
    ):
        super().__init__()
        if any(h <= 0 for h in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if l2 < 0:
            raise ValueError("l2 must be non-negative")
        self.hidden_layers = tuple(int(h) for h in hidden_layers)
        self.epochs = int(epochs)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.l2 = float(l2)
        self.early_stop_loss = early_stop_loss
        self._rng = ensure_rng(seed)
        self.weights_: Optional[List[np.ndarray]] = None
        self.biases_: Optional[List[np.ndarray]] = None

    # --------------------------------------------------------------- fitting
    def _fit(self, X: np.ndarray, y: np.ndarray) -> FitResult:
        start = time.perf_counter()
        n_classes = int(y.max()) + 1
        layer_sizes = [X.shape[1], *self.hidden_layers, n_classes]
        self.weights_, self.biases_ = [], []
        for fan_in, fan_out in zip(layer_sizes[:-1], layer_sizes[1:]):
            W, b = xavier_init(fan_in, fan_out, self._rng)
            self.weights_.append(W)
            self.biases_.append(b)

        w_states = [_AdamState(W.shape) for W in self.weights_]
        b_states = [_AdamState(b.shape) for b in self.biases_]
        targets = one_hot(y, n_classes)

        history = {"loss": [], "train_accuracy": []}
        step = 0
        epochs_run = 0
        for epoch in range(1, self.epochs + 1):
            epoch_losses = []
            for idx in iterate_minibatches(X.shape[0], self.batch_size, self._rng):
                Xb, Tb = X[idx], targets[idx]
                activations, pre_activations = self._forward(Xb)
                probs = softmax(activations[-1])
                epoch_losses.append(cross_entropy(probs, Tb))
                grads_w, grads_b = self._backward(activations, pre_activations, probs, Tb)
                step += 1
                for i, (gw, gb) in enumerate(zip(grads_w, grads_b)):
                    gw = gw + self.l2 * self.weights_[i]
                    self.weights_[i] -= w_states[i].step(gw, self.learning_rate, step)
                    self.biases_[i] -= b_states[i].step(gb, self.learning_rate, step)
            epochs_run = epoch
            mean_loss = float(np.mean(epoch_losses))
            history["loss"].append(mean_loss)
            history["train_accuracy"].append(
                float(np.mean(np.argmax(self._predict_scores(X), axis=1) == y))
            )
            if self.early_stop_loss is not None and mean_loss <= self.early_stop_loss:
                break

        elapsed = time.perf_counter() - start
        return FitResult(train_seconds=elapsed, epochs_run=epochs_run, history=history)

    def _forward(self, X: np.ndarray) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Forward pass; returns (activations per layer, pre-activations)."""
        activations = [X]
        pre_activations = []
        h = X
        n_layers = len(self.weights_)
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ W + b
            pre_activations.append(z)
            h = z if i == n_layers - 1 else np.maximum(z, 0.0)
            activations.append(h)
        return activations, pre_activations

    def _backward(
        self,
        activations: List[np.ndarray],
        pre_activations: List[np.ndarray],
        probs: np.ndarray,
        targets: np.ndarray,
    ) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Backward pass for softmax cross-entropy; returns weight/bias grads."""
        n = targets.shape[0]
        grads_w: List[np.ndarray] = [None] * len(self.weights_)  # type: ignore[list-item]
        grads_b: List[np.ndarray] = [None] * len(self.biases_)  # type: ignore[list-item]
        delta = (probs - targets) / n
        for i in range(len(self.weights_) - 1, -1, -1):
            grads_w[i] = activations[i].T @ delta
            grads_b[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights_[i].T) * (pre_activations[i - 1] > 0.0)
        return grads_w, grads_b

    # -------------------------------------------------------------- predict
    def _predict_scores(self, X: np.ndarray) -> np.ndarray:
        check_fitted(self, "weights_")
        activations, _ = self._forward(X)
        return activations[-1]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class probabilities via softmax over the output logits."""
        return softmax(self.predict_scores(X))

    # ----------------------------------------------------------------- misc
    def parameters(self) -> List[np.ndarray]:
        """All weight and bias tensors (used by the fault-injection study)."""
        check_fitted(self, "weights_")
        return [*self.weights_, *self.biases_]

    def set_parameters(self, params: List[np.ndarray]) -> None:
        """Replace weights/biases with ``params`` (inverse of :meth:`parameters`)."""
        check_fitted(self, "weights_")
        n_w = len(self.weights_)
        expected = n_w + len(self.biases_)
        if len(params) != expected:
            raise ValueError(f"expected {expected} parameter tensors, got {len(params)}")
        self.weights_ = [np.asarray(p, dtype=np.float64) for p in params[:n_w]]
        self.biases_ = [np.asarray(p, dtype=np.float64) for p in params[n_w:]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fitted = self.weights_ is not None
        return (
            f"MLPClassifier(hidden_layers={self.hidden_layers}, epochs={self.epochs}, "
            f"fitted={fitted})"
        )
