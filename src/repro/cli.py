"""Command-line interface for the reproduction.

Exposes the evaluation harness so every paper experiment (and the ablations)
can be regenerated without writing Python, plus the serving subsystem::

    python -m repro list
    python -m repro run fig3 --scale fast
    python -m repro run fig3 fig5 --scale paper --json results.json
    python -m repro datasets
    python -m repro bench --json BENCH_hdc_primitives.json
    python -m repro bench --suite streaming --json BENCH_streaming.json
    python -m repro serve --flows 600 --online
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.datasets.loaders import available_datasets, load_dataset
from repro.eval.harness import ExperimentHarness, HarnessConfig


def build_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CyberHD reproduction: regenerate the paper's experiments",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment names (see `repro list`)")
    run.add_argument("--scale", choices=("fast", "paper"), default="fast")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", metavar="PATH", default=None, help="also write results as JSON")

    datasets = subparsers.add_parser("datasets", help="summarize the synthetic datasets")
    datasets.add_argument("--n-train", type=int, default=1000)
    datasets.add_argument("--n-test", type=int, default=300)

    bench = subparsers.add_parser(
        "bench", help="run the perf-regression benchmarks"
    )
    bench.add_argument(
        "--suite",
        choices=("hdc", "streaming"),
        default="hdc",
        help="hdc: compute-backend primitives; streaming: packets->alerts serving path",
    )
    bench.add_argument("--dim", type=int, default=None, help="hypervector dimensionality")
    bench.add_argument("--repeats", type=int, default=3, help="best-of repeat count")
    bench.add_argument(
        "--packets", type=int, default=50_000, help="streaming suite: packets in the workload"
    )
    bench.add_argument(
        "--window", type=int, default=1000, help="streaming suite: packets per micro-batch"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small workloads for a fast smoke run"
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="where to write the machine-readable records "
        "(default: BENCH_hdc_primitives.json / BENCH_streaming.json per suite)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the streaming serving subsystem on synthetic traffic",
    )
    serve.add_argument("--flows", type=int, default=600, help="flows in the served stream")
    serve.add_argument("--train-flows", type=int, default=300, help="flows used for training")
    serve.add_argument("--window", type=int, default=500, help="packets per micro-batch")
    serve.add_argument("--dim", type=int, default=256, help="CyberHD dimensionality")
    serve.add_argument("--epochs", type=int, default=8, help="training epochs")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--backpressure", choices=("block", "drop_oldest"), default="block"
    )
    serve.add_argument(
        "--online",
        action="store_true",
        help="enable online learning (partial_fit + drift-triggered regeneration)",
    )
    serve.add_argument(
        "--model", metavar="PATH", default=None, help="load a saved pipeline instead of training"
    )
    serve.add_argument(
        "--save", metavar="PATH", default=None, help="save the (possibly adapted) pipeline"
    )
    serve.add_argument("--json", metavar="PATH", default=None, help="write a JSON summary")

    return parser


def _command_list() -> int:
    harness = ExperimentHarness()
    print("available experiments:")
    for name in harness.available_experiments():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = HarnessConfig(scale=args.scale, seed=args.seed, experiments=tuple(args.experiments))
    harness = ExperimentHarness(config)
    available = set(harness.available_experiments())
    unknown = [name for name in args.experiments if name not in available]
    if unknown:
        print(f"unknown experiments: {unknown}; run `repro list`", file=sys.stderr)
        return 2
    harness.run_all()
    print(harness.report())
    if args.json:
        path = harness.save_json(args.json)
        print(f"\nresults written to {path}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    for name in available_datasets():
        dataset = load_dataset(name, n_train=args.n_train, n_test=args.n_test)
        distribution = dataset.class_distribution("train")
        print(
            f"{name}: {dataset.n_features} features, {dataset.n_classes} classes, "
            f"{100 * dataset.attack_fraction('train'):.1f}% attack flows"
        )
        for class_name, count in distribution.items():
            print(f"    {class_name:<28s} {count}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        BENCH_JSON_NAME,
        BENCH_STREAMING_JSON_NAME,
        format_table,
        run_benchmarks,
        run_streaming_benchmarks,
        write_bench_json,
    )

    if args.suite == "streaming":
        records = run_streaming_benchmarks(
            n_packets=args.packets,
            window=args.window,
            dim=args.dim or 256,
            repeats=args.repeats,
            quick=args.quick,
        )
        default_json = BENCH_STREAMING_JSON_NAME
    else:
        records = run_benchmarks(
            dim=args.dim or 500, repeats=args.repeats, quick=args.quick
        )
        default_json = BENCH_JSON_NAME
    print(format_table(records))
    json_path = args.json or default_json
    if json_path:
        path = write_bench_json(records, json_path)
        print(f"\nbenchmark records written to {path}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.core.cyberhd import CyberHD
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline
    from repro.nids.streaming import StreamingDetector
    from repro.persistence import load_pipeline, save_pipeline
    from repro.serving import DriftMonitor, OnlineLearner

    generator = TrafficGenerator(seed=args.seed)
    if args.model:
        pipeline = load_pipeline(args.model)
        print(f"loaded pipeline from {args.model} ({len(pipeline.class_names)} classes)")
        start_time = 0.0
    else:
        train_packets = generator.generate(args.train_flows)
        pipeline = DetectionPipeline(
            classifier=CyberHD(
                dim=args.dim, epochs=args.epochs, regeneration_rate=0.1, seed=args.seed
            )
        ).fit_packets(train_packets)
        start_time = train_packets[-1].timestamp + 60.0
        print(
            f"trained on {len(train_packets)} packets "
            f"({args.train_flows} flows) in {pipeline.train_seconds:.2f}s"
        )

    learner = None
    if args.online:
        learner = OnlineLearner(
            pipeline.classifier,
            passes=2,
            replay_rows=512,
            monitor=DriftMonitor(),
        )
    detector = StreamingDetector(
        pipeline,
        window_size=args.window,
        backpressure=args.backpressure,
        online=learner,
    )
    stream = TrafficGenerator(seed=args.seed + 1).generate(args.flows, start_time=start_time)
    detector.push_many(stream)
    detector.flush()

    print(
        f"\nserved {detector.total_packets} packets / {detector.total_flows} flows "
        f"in {len(detector.results)} windows; {detector.total_alerts} alerts"
    )
    print(
        f"mean window latency {1e3 * detector.mean_latency:.3f} ms; "
        f"per-flow {1e6 * detector.mean_latency_per_flow:.1f} us"
    )
    severities = detector.pipeline.alert_manager.count_by_severity()
    if severities:
        print("alerts by severity: " + ", ".join(f"{k}={v}" for k, v in sorted(severities.items())))
    if learner is not None:
        print(
            f"online: {learner.updates} partial_fit windows, "
            f"{learner.regenerations} drift regenerations"
        )
    print("\nper-stage telemetry:")
    print(detector.telemetry.summary())
    stats = detector.backpressure_stats
    print(
        f"\nbackpressure: submitted={stats.submitted} accepted={stats.accepted} "
        f"dropped={stats.dropped_oldest} forced_flushes={stats.forced_flushes} "
        f"high_watermark={stats.high_watermark}"
    )

    if args.save:
        path = save_pipeline(pipeline, args.save)
        print(f"\npipeline saved to {path}")
    if args.json:
        payload = {
            "packets": detector.total_packets,
            "flows": detector.total_flows,
            "windows": len(detector.results),
            "alerts": detector.total_alerts,
            "mean_window_latency_s": detector.mean_latency,
            "mean_flow_latency_s": detector.mean_latency_per_flow,
            "stages": detector.telemetry.to_dict(),
            "backpressure": stats.to_dict(),
            "online": {
                "enabled": learner is not None,
                "partial_fit_windows": learner.updates if learner else 0,
                "regenerations": learner.regenerations if learner else 0,
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"summary written to {args.json}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "serve":
        return _command_serve(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
