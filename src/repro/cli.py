"""Command-line interface for the reproduction.

Exposes the evaluation harness so every paper experiment (and the ablations)
can be regenerated without writing Python::

    python -m repro list
    python -m repro run fig3 --scale fast
    python -m repro run fig3 fig5 --scale paper --json results.json
    python -m repro datasets
    python -m repro bench --json BENCH_hdc_primitives.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.datasets.loaders import available_datasets, load_dataset
from repro.eval.harness import ExperimentHarness, HarnessConfig


def build_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CyberHD reproduction: regenerate the paper's experiments",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment names (see `repro list`)")
    run.add_argument("--scale", choices=("fast", "paper"), default="fast")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", metavar="PATH", default=None, help="also write results as JSON")

    datasets = subparsers.add_parser("datasets", help="summarize the synthetic datasets")
    datasets.add_argument("--n-train", type=int, default=1000)
    datasets.add_argument("--n-test", type=int, default=300)

    bench = subparsers.add_parser(
        "bench", help="run the HDC perf-regression benchmarks"
    )
    bench.add_argument("--dim", type=int, default=500, help="hypervector dimensionality")
    bench.add_argument("--repeats", type=int, default=3, help="best-of repeat count")
    bench.add_argument(
        "--quick", action="store_true", help="small workloads for a fast smoke run"
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default="BENCH_hdc_primitives.json",
        help="where to write the machine-readable records (default: %(default)s)",
    )

    return parser


def _command_list() -> int:
    harness = ExperimentHarness()
    print("available experiments:")
    for name in harness.available_experiments():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = HarnessConfig(scale=args.scale, seed=args.seed, experiments=tuple(args.experiments))
    harness = ExperimentHarness(config)
    available = set(harness.available_experiments())
    unknown = [name for name in args.experiments if name not in available]
    if unknown:
        print(f"unknown experiments: {unknown}; run `repro list`", file=sys.stderr)
        return 2
    harness.run_all()
    print(harness.report())
    if args.json:
        path = harness.save_json(args.json)
        print(f"\nresults written to {path}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    for name in available_datasets():
        dataset = load_dataset(name, n_train=args.n_train, n_test=args.n_test)
        distribution = dataset.class_distribution("train")
        print(
            f"{name}: {dataset.n_features} features, {dataset.n_classes} classes, "
            f"{100 * dataset.attack_fraction('train'):.1f}% attack flows"
        )
        for class_name, count in distribution.items():
            print(f"    {class_name:<28s} {count}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import format_table, run_benchmarks, write_bench_json

    records = run_benchmarks(dim=args.dim, repeats=args.repeats, quick=args.quick)
    print(format_table(records))
    if args.json:
        path = write_bench_json(records, args.json)
        print(f"\nbenchmark records written to {path}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "bench":
        return _command_bench(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
