"""Command-line interface for the reproduction.

Exposes the evaluation harness so every paper experiment (and the ablations)
can be regenerated without writing Python, plus the serving subsystem::

    python -m repro list
    python -m repro run fig3 --scale fast
    python -m repro run fig3 fig5 --scale paper --json results.json
    python -m repro datasets
    python -m repro bench --json BENCH_hdc_primitives.json
    python -m repro bench --suite streaming --json BENCH_streaming.json
    python -m repro bench --suite cluster --workers 4 --json BENCH_cluster.json
    python -m repro bench --suite replay --dataset nsl_kdd --json BENCH_replay.json
    python -m repro bench --suite bitpack --json BENCH_bitpack.json
    python -m repro bench --suite chaos --json BENCH_chaos.json
    python -m repro bench-diff bench-bitpack.json BENCH_bitpack.json --floor bitpack_score_speedup=2.0
    python -m repro bench-diff bench-chaos.json BENCH_chaos.json --floor chaos_recall_retention=0.99
    python -m repro replay --dataset unsw_nb15 --workers 2
    python -m repro replay --workers 2 --chaos kill:0@0.4 --chaos hang:1@0.7:2
    python -m repro serve --flows 600 --inference-bits 1
    python -m repro serve --flows 600 --online
    python -m repro serve --workers 4 --scenario ddos_burst --online
    python -m repro serve --workers 4 --max-respawns 3 --heartbeat-timeout 5

``serve`` installs SIGINT/SIGTERM handlers: Ctrl-C stops ingest, drains the
queues (classifying still-active flows), prints the telemetry summary, and
exits 0.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro._version import __version__
from repro.datasets.loaders import available_datasets, load_dataset
from repro.eval.harness import ExperimentHarness, HarnessConfig


def build_parser() -> argparse.ArgumentParser:
    """The argument parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CyberHD reproduction: regenerate the paper's experiments",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+", help="experiment names (see `repro list`)")
    run.add_argument("--scale", choices=("fast", "paper"), default="fast")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--json", metavar="PATH", default=None, help="also write results as JSON")

    datasets = subparsers.add_parser("datasets", help="summarize the synthetic datasets")
    datasets.add_argument("--n-train", type=int, default=1000)
    datasets.add_argument("--n-test", type=int, default=300)

    bench = subparsers.add_parser(
        "bench", help="run the perf-regression benchmarks"
    )
    bench.add_argument(
        "--suite",
        choices=(
            "hdc",
            "streaming",
            "cluster",
            "replay",
            "bitpack",
            "chaos",
            "fabric",
            "cascade",
            "loadgen",
            "baselines",
        ),
        default="hdc",
        help="hdc: compute-backend primitives; streaming: packets->alerts "
        "serving path; cluster: sharded multi-worker scaling; replay: "
        "dataset-to-traffic golden-trace parity + accuracy under load; "
        "bitpack: packed 1-bit XOR/popcount inference -- kernel speedups, "
        "packed-vs-offline parity, serving-time fault injection; chaos: "
        "process-fault recovery (SIGKILL/hang/clean-exit mid-replay) "
        "measured against the golden trace; fabric: multi-tenant registry "
        "capacity, hot-swap latency, shadow overhead and per-tenant recall "
        "isolation; cascade: packed pre-filter + multiclass escalation -- "
        "throughput vs the float32-only head, escalation fraction, "
        "escalated-slice recall parity; loadgen: scenario grading -- "
        "per-attack-type recall across load points vs the closed-loop "
        "baseline; baselines: HDC vs the numpy SVM/MLP learners "
        "(train-time speedups + accuracy parity)",
    )
    bench.add_argument("--dim", type=int, default=None, help="hypervector dimensionality")
    bench.add_argument("--repeats", type=int, default=3, help="best-of repeat count")
    bench.add_argument(
        "--packets", type=int, default=50_000, help="streaming suite: packets in the workload"
    )
    bench.add_argument(
        "--window",
        type=int,
        default=None,
        help="packets per micro-batch (suite defaults: streaming 1000, replay 512)",
    )
    bench.add_argument(
        "--quick", action="store_true", help="small workloads for a fast smoke run"
    )
    bench.add_argument(
        "--workers", type=int, default=4, help="cluster suite: worker processes"
    )
    bench.add_argument(
        "--scenario",
        default="mixed_benign",
        help="cluster suite: load scenario (see repro.cluster.loadgen)",
    )
    bench.add_argument(
        "--dataset",
        default="nsl_kdd",
        help="replay suite: dataset to compile into the replayed trace",
    )
    bench.add_argument(
        "--flows-scale",
        type=float,
        default=2.0,
        help="cluster suite: scenario flow-count multiplier",
    )
    bench.add_argument(
        "--tenants",
        type=int,
        default=128,
        help="fabric suite: tenants resident for the capacity record",
    )
    bench.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="where to write the machine-readable records "
        "(default: BENCH_<suite>.json)",
    )

    bench_diff = subparsers.add_parser(
        "bench-diff",
        help="gate a fresh bench JSON against a checked-in baseline "
        "(parity must hold; relative speedups must reach a tolerance "
        "fraction of the baseline's)",
    )
    bench_diff.add_argument("fresh", help="bench JSON produced by this run")
    bench_diff.add_argument("baseline", help="checked-in BENCH_*.json baseline")
    bench_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="fraction of each baseline speedup the fresh run must reach "
        "(loose by design: shared CI runners are noisy and smoke workloads "
        "are smaller than the baseline's)",
    )
    bench_diff.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="OP=VALUE",
        help="absolute speedup floor for one op (repeatable), e.g. "
        "--floor bitpack_score_speedup=2.0",
    )

    replay = subparsers.add_parser(
        "replay",
        help="compile a dataset into a packet trace and check serving-path "
        "alert parity against offline batch predictions",
    )
    replay.add_argument(
        "--dataset", default="nsl_kdd", help="dataset to compile (see `repro datasets`)"
    )
    replay.add_argument(
        "--train", type=int, default=600, help="training-split rows to compile and train on"
    )
    replay.add_argument(
        "--rows", type=int, default=240, help="test-split rows compiled into the replayed trace"
    )
    replay.add_argument(
        "--workers",
        type=int,
        default=2,
        help="cluster path worker processes (1 skips the cluster path)",
    )
    replay.add_argument("--window", type=int, default=512, help="packets per micro-batch")
    replay.add_argument(
        "--micro-window",
        type=int,
        default=64,
        help="window of the deliberately smaller micro-batched parity path",
    )
    replay.add_argument("--dim", type=int, default=256, help="CyberHD dimensionality")
    replay.add_argument("--epochs", type=int, default=5, help="training epochs")
    replay.add_argument("--seed", type=int, default=0)
    replay.add_argument(
        "--time-warp",
        type=float,
        default=1.0,
        help="trace timeline compression (raises flow overlap)",
    )
    replay.add_argument(
        "--concurrency",
        type=float,
        default=8.0,
        help="target mean flows in flight on the compiled timeline",
    )
    replay.add_argument(
        "--rate",
        type=float,
        default=None,
        help="additionally replay open-loop at this rate (packets/second) "
        "and report detection quality under load",
    )
    replay.add_argument(
        "--chaos",
        action="append",
        default=[],
        metavar="KIND:WORKER@FRAC[:SECS]",
        help="inject a scripted process fault mid-replay (repeatable; kinds "
        "kill/hang/delay/exit, e.g. kill:0@0.4) -- runs the supervised "
        "cluster chaos path instead of the differential harness and exits "
        "0 only when parity held and every batch was recovered",
    )
    replay.add_argument(
        "--error-rate",
        type=float,
        default=0.0,
        help="chaos path: additionally flip this fraction of published "
        "model bits (trains with 1-bit packed inference to host the flips; "
        "the pristine-model parity gate is waived -- recovery still is not)",
    )
    replay.add_argument("--json", metavar="PATH", default=None, help="write a JSON summary")

    serve = subparsers.add_parser(
        "serve",
        help="run the streaming serving subsystem on synthetic traffic",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 serves through the sharded cluster",
    )
    serve.add_argument(
        "--scenario",
        default=None,
        help="serve a named load scenario instead of the default mix "
        "(see repro.cluster.loadgen)",
    )
    serve.add_argument(
        "--sync-interval",
        type=int,
        default=8,
        help="cluster mode: batches per worker between delta-merge syncs",
    )
    serve.add_argument(
        "--max-respawns",
        type=int,
        default=None,
        help="cluster mode: respawn budget per worker before load is shed "
        "(default: supervision policy default)",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        help="cluster mode: seconds between worker liveness stamps",
    )
    serve.add_argument(
        "--heartbeat-timeout",
        type=float,
        default=None,
        help="cluster mode: stale-heartbeat age after which a live worker "
        "is declared hung and SIGKILLed for respawn",
    )
    serve.add_argument(
        "--tenants",
        type=int,
        default=0,
        help="serve N tenants through the multi-tenant model fabric: one "
        "per-subnet detector each, flows split across them (composes with "
        "--workers for the tenant-aware cluster path)",
    )
    serve.add_argument("--flows", type=int, default=600, help="flows in the served stream")
    serve.add_argument("--train-flows", type=int, default=300, help="flows used for training")
    serve.add_argument("--window", type=int, default=500, help="packets per micro-batch")
    serve.add_argument("--dim", type=int, default=256, help="CyberHD dimensionality")
    serve.add_argument("--epochs", type=int, default=8, help="training epochs")
    serve.add_argument(
        "--inference-bits",
        type=int,
        default=None,
        help="score against a quantized class matrix (1 activates the "
        "bit-packed XOR/popcount serving fabric; see docs/serving.md)",
    )
    serve.add_argument(
        "--cascade",
        action="store_true",
        help="serve through the two-stage cascade: a packed 1-bit binary "
        "pre-filter screens every flow and only suspicious ones escalate "
        "to the multiclass head (see docs/cascade.md; composes with "
        "--workers, not with --online or --tenants)",
    )
    serve.add_argument(
        "--prefilter-dim",
        type=int,
        default=None,
        help="cascade: pre-filter dimensionality (default: --dim)",
    )
    serve.add_argument(
        "--escalation-margin",
        type=float,
        default=0.01,
        help="cascade: benign pre-filter verdicts with a normalized score "
        "margin below this escalate to the multiclass head anyway",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--backpressure", choices=("block", "drop_oldest"), default="block"
    )
    serve.add_argument(
        "--online",
        action="store_true",
        help="enable online learning (partial_fit + drift-triggered regeneration)",
    )
    serve.add_argument(
        "--model", metavar="PATH", default=None, help="load a saved pipeline instead of training"
    )
    serve.add_argument(
        "--save", metavar="PATH", default=None, help="save the (possibly adapted) pipeline"
    )
    serve.add_argument("--json", metavar="PATH", default=None, help="write a JSON summary")

    fabric = subparsers.add_parser(
        "fabric",
        help="multi-tenant model fabric: publish, shadow-promote, roll back "
        "and inspect versioned tenant models against a registry snapshot",
    )
    fabric_sub = fabric.add_subparsers(dest="fabric_command")

    def _fabric_common(sub):
        sub.add_argument(
            "registry",
            help="registry snapshot path (.npz); each command loads it, "
            "operates, and saves it back",
        )
        sub.add_argument("--tenant", type=int, default=0, help="tenant id")
        sub.add_argument("--seed", type=int, default=0)
        sub.add_argument(
            "--dataset",
            default=None,
            help="use a compiled dataset trace (training + mirror slices) "
            "instead of synthetic per-subnet traffic",
        )
        sub.add_argument(
            "--train", type=int, default=600, help="dataset mode: training rows"
        )
        sub.add_argument(
            "--rows", type=int, default=240, help="dataset mode: mirror/test rows"
        )

    fabric_publish = fabric_sub.add_parser(
        "publish", help="train and publish the tenant's next model version"
    )
    _fabric_common(fabric_publish)
    fabric_publish.add_argument("--train-flows", type=int, default=300)
    fabric_publish.add_argument("--dim", type=int, default=128)
    fabric_publish.add_argument("--epochs", type=int, default=4)
    fabric_publish.add_argument(
        "--inference-bits",
        type=int,
        default=1,
        help="packed-quantized serving (1-bit keeps hundreds of tenants "
        "resident; pass 0 for full-precision)",
    )
    fabric_publish.add_argument(
        "--activate",
        action="store_true",
        help="skip the shadow gate and promote immediately (a tenant's "
        "first version always activates)",
    )
    fabric_publish.add_argument(
        "--max-tenants",
        type=int,
        default=256,
        help="capacity of a newly created registry",
    )

    fabric_promote = fabric_sub.add_parser(
        "promote",
        help="shadow-score a candidate against the live model on mirrored "
        "traffic; flip the alias only if parity and recall hold (exit 1 on "
        "rejection)",
    )
    _fabric_common(fabric_promote)
    fabric_promote.add_argument(
        "--model-version",
        type=int,
        default=None,
        help="candidate version (default: the tenant's newest)",
    )
    fabric_promote.add_argument(
        "--mirror-flows",
        type=int,
        default=200,
        help="synthetic mode: flows in the mirrored slice",
    )
    fabric_promote.add_argument("--recall-tolerance", type=float, default=0.0)
    fabric_promote.add_argument(
        "--divergence-budget",
        type=float,
        default=0.0,
        help="accepted fraction of mirrored flows whose decisions may move",
    )
    fabric_promote.add_argument(
        "--error-rate",
        type=float,
        default=0.0,
        help="corrupt the candidate replica's packed bits at this rate "
        "before the mirror (the rejection drill)",
    )
    fabric_promote.add_argument("--json", metavar="PATH", default=None)

    fabric_rollback = fabric_sub.add_parser(
        "rollback", help="flip the tenant's alias back to the previous version"
    )
    fabric_rollback.add_argument("registry")
    fabric_rollback.add_argument("--tenant", type=int, default=0)

    fabric_status = fabric_sub.add_parser(
        "status", help="print every tenant's versions, live alias and footprint"
    )
    fabric_status.add_argument("registry")
    fabric_status.add_argument("--json", metavar="PATH", default=None)

    matrix = subparsers.add_parser(
        "matrix",
        help="declarative experiment matrix: run a spec through the bench "
        "suites with content-addressed cell caching, then gate the report "
        "against the checked-in baselines",
    )
    matrix_sub = matrix.add_subparsers(dest="matrix_command")

    matrix_run = matrix_sub.add_parser(
        "run",
        help="execute every cell of a spec; unchanged cells (same params, "
        "dataset digest and code fingerprint) are served from the cache",
    )
    matrix_run.add_argument("spec", help="matrix spec (.yaml or .json)")
    matrix_run.add_argument(
        "--cache-dir",
        default=".matrix-cache",
        help="content-addressed cell cache directory",
    )
    matrix_run.add_argument(
        "--json",
        metavar="PATH",
        default="matrix-report.json",
        help="report output path",
    )
    matrix_run.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every cell's repeat count (nightly uses 3 for "
        "significance testing)",
    )
    matrix_run.add_argument(
        "--no-cache", action="store_true", help="execute every cell, never touch the cache"
    )
    matrix_run.add_argument(
        "--refresh",
        action="store_true",
        help="execute every cell and overwrite its cache entry",
    )
    matrix_run.add_argument(
        "--min-cache-hits",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit 2 unless at least this fraction of cells came from the "
        "cache (the warm re-run assertion in CI)",
    )

    matrix_diff = matrix_sub.add_parser(
        "diff",
        help="gate a matrix report: per-cell bench-diff against the "
        "checked-in BENCH_*.json baselines (tolerances + floors from the "
        "spec) plus paired-significance comparisons",
    )
    matrix_diff.add_argument("spec", help="matrix spec the report was produced from")
    matrix_diff.add_argument(
        "--report",
        default="matrix-report.json",
        help="report produced by `matrix run`",
    )
    matrix_diff.add_argument(
        "--baseline-dir",
        default=".",
        help="directory holding the checked-in BENCH_*.json baselines",
    )

    matrix_report = matrix_sub.add_parser(
        "report", help="pretty-print a matrix report"
    )
    matrix_report.add_argument(
        "report", nargs="?", default="matrix-report.json", help="report path"
    )

    return parser


def _command_list() -> int:
    harness = ExperimentHarness()
    print("available experiments:")
    for name in harness.available_experiments():
        print(f"  {name}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = HarnessConfig(scale=args.scale, seed=args.seed, experiments=tuple(args.experiments))
    harness = ExperimentHarness(config)
    available = set(harness.available_experiments())
    unknown = [name for name in args.experiments if name not in available]
    if unknown:
        print(f"unknown experiments: {unknown}; run `repro list`", file=sys.stderr)
        return 2
    harness.run_all()
    print(harness.report())
    if args.json:
        path = harness.save_json(args.json)
        print(f"\nresults written to {path}")
    return 0


def _command_datasets(args: argparse.Namespace) -> int:
    for name in available_datasets():
        dataset = load_dataset(name, n_train=args.n_train, n_test=args.n_test)
        distribution = dataset.class_distribution("train")
        print(
            f"{name}: {dataset.n_features} features, {dataset.n_classes} classes, "
            f"{100 * dataset.attack_fraction('train'):.1f}% attack flows"
        )
        for class_name, count in distribution.items():
            print(f"    {class_name:<28s} {count}")
    return 0


def _command_bench(args: argparse.Namespace) -> int:
    from repro.perf import (
        BENCH_BASELINES_JSON_NAME,
        BENCH_BITPACK_JSON_NAME,
        BENCH_CASCADE_JSON_NAME,
        BENCH_CHAOS_JSON_NAME,
        BENCH_CLUSTER_JSON_NAME,
        BENCH_FABRIC_JSON_NAME,
        BENCH_JSON_NAME,
        BENCH_LOADGEN_JSON_NAME,
        BENCH_REPLAY_JSON_NAME,
        BENCH_STREAMING_JSON_NAME,
        format_table,
        run_baseline_benchmarks,
        run_benchmarks,
        run_bitpack_benchmarks,
        run_cascade_benchmarks,
        run_chaos_benchmarks,
        run_cluster_benchmarks,
        run_fabric_benchmarks,
        run_loadgen_benchmarks,
        run_replay_benchmarks,
        run_streaming_benchmarks,
        write_bench_json,
    )

    if args.suite == "streaming":
        records = run_streaming_benchmarks(
            n_packets=args.packets,
            window=args.window if args.window is not None else 1000,
            dim=args.dim or 256,
            repeats=args.repeats,
            quick=args.quick,
        )
        default_json = BENCH_STREAMING_JSON_NAME
    elif args.suite == "cluster":
        records = run_cluster_benchmarks(
            scenario=args.scenario,
            workers=args.workers,
            flows_scale=args.flows_scale,
            dim=args.dim or 256,
            quick=args.quick,
        )
        default_json = BENCH_CLUSTER_JSON_NAME
    elif args.suite == "replay":
        records = run_replay_benchmarks(
            dataset=args.dataset,
            workers=args.workers,
            window=args.window,
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_REPLAY_JSON_NAME
    elif args.suite == "bitpack":
        records = run_bitpack_benchmarks(
            workers=args.workers,
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_BITPACK_JSON_NAME
    elif args.suite == "chaos":
        records = run_chaos_benchmarks(
            dataset=args.dataset,
            workers=args.workers,
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_CHAOS_JSON_NAME
    elif args.suite == "fabric":
        records = run_fabric_benchmarks(
            tenants=args.tenants,
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_FABRIC_JSON_NAME
    elif args.suite == "cascade":
        records = run_cascade_benchmarks(
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_CASCADE_JSON_NAME
    elif args.suite == "loadgen":
        records = run_loadgen_benchmarks(
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_LOADGEN_JSON_NAME
    elif args.suite == "baselines":
        records = run_baseline_benchmarks(
            dataset=args.dataset,
            dim=args.dim,
            quick=args.quick,
        )
        default_json = BENCH_BASELINES_JSON_NAME
    else:
        records = run_benchmarks(
            dim=args.dim or 500, repeats=args.repeats, quick=args.quick
        )
        default_json = BENCH_JSON_NAME
    print(format_table(records))
    json_path = args.json or default_json
    if json_path:
        path = write_bench_json(records, json_path)
        print(f"\nbenchmark records written to {path}")
    return 0


def _command_bench_diff(args: argparse.Namespace) -> int:
    """``repro bench-diff``: the CI bench-regression gate.

    Exit 0 when every parity record in the fresh file holds and every shared
    speedup op reaches ``tolerance`` of its baseline ratio (plus any
    ``--floor`` absolute requirements); 1 on any regression.
    """
    from repro.perf import diff_bench_payloads

    floors = {}
    for item in args.floor:
        op, _, value = item.partition("=")
        try:
            floors[op] = float(value)
        except ValueError:
            print(
                f"malformed --floor {item!r} (expected OP=VALUE with a numeric "
                "value)",
                file=sys.stderr,
            )
            return 2
    with open(args.fresh) as fh:
        fresh = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    ok, lines = diff_bench_payloads(
        fresh, baseline, tolerance=args.tolerance, floors=floors
    )
    for line in lines:
        print(line)
    print(f"\nbench-diff: {'OK' if ok else 'REGRESSION'} "
          f"({args.fresh} vs {args.baseline})")
    return 0 if ok else 1


def _command_replay_chaos(args: argparse.Namespace) -> int:
    """``repro replay --chaos``: a supervised replay under scripted faults.

    Exit code 0 means the run recovered completely: every unacked batch of
    each faulted worker was redispatched (zero unrecovered), and -- unless
    ``--error-rate`` deliberately corrupted the model -- the surviving run
    kept flow-for-flow golden-trace parity; 1 means a recovery failure.
    """
    from repro.cluster import ChaosSchedule, run_chaos_replay
    from repro.core.cyberhd import CyberHD
    from repro.datasets.loaders import load_dataset
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import DatasetTraceCompiler

    if args.workers < 2:
        print("--chaos needs --workers >= 2 (the supervised cluster path)", file=sys.stderr)
        return 2
    schedule = ChaosSchedule.parse(args.chaos)
    dataset = load_dataset(
        args.dataset, n_train=args.train, n_test=args.rows, seed=args.seed
    )
    compiler = DatasetTraceCompiler(
        concurrency=args.concurrency, time_warp=args.time_warp
    )
    train_trace = compiler.compile(dataset, split="train", seed=args.seed)
    test_trace = compiler.compile(dataset, split="test", seed=args.seed + 1)
    pipeline = DetectionPipeline(
        classifier=CyberHD(
            dim=args.dim,
            epochs=args.epochs,
            regeneration_rate=0.1,
            seed=args.seed,
            inference_bits=1 if args.error_rate > 0 else None,
        )
    ).fit_packets(train_trace.packets)
    print(
        f"trained on the compiled training trace in {pipeline.train_seconds:.2f}s; "
        f"replaying {test_trace.n_packets} packets across {args.workers} workers "
        f"under schedule [{', '.join(str(e) for e in schedule.events)}]"
    )

    result = run_chaos_replay(
        pipeline,
        test_trace,
        schedule=schedule,
        n_workers=args.workers,
        batch_size=args.micro_window,
        error_rate=args.error_rate,
        seed=args.seed,
    )
    recovery = result.report.recovery
    for record in recovery.failures:
        print(
            f"worker {record.worker_id} {record.kind} "
            f"(exit code {record.exitcode}): detected, "
            f"{'respawned' if record.respawned else 'not respawned'}, "
            f"{record.redispatched_batches} batches redispatched"
            + (", load shed" if record.shed else "")
            + (", failed over to survivors" if record.failed_over else "")
        )
    print(
        f"recovery: {recovery.total_respawns} respawns, "
        f"{recovery.total_redispatched_batches} batches "
        f"({recovery.total_redispatched_packets} packets) redispatched, "
        f"{recovery.duplicates_suppressed} duplicates suppressed, "
        f"{recovery.unrecovered_batches} unrecovered; "
        f"detection {result.detection_seconds:.2f}s, "
        f"recovery {result.recovery_seconds:.2f}s"
    )
    print(
        f"detection quality: recall {result.metrics['recall']:.3f}, "
        f"precision {result.metrics['precision']:.3f}, served "
        f"{result.metrics['served_fraction']:.0%} of flows"
    )
    print(result.parity.summary())
    recovered = (
        recovery.unrecovered_batches == 0
        and result.metrics["served_fraction"] == 1.0
    )
    verdict_ok = result.ok if args.error_rate == 0 else recovered
    print("\nchaos:", "RECOVERED" if verdict_ok else "FAILED")
    if args.json:
        payload = result.to_dict()
        payload["dataset"] = args.dataset
        payload["schedule"] = [str(e) for e in schedule.events]
        payload["error_rate"] = args.error_rate
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"summary written to {args.json}")
    return 0 if verdict_ok else 1


def _command_replay(args: argparse.Namespace) -> int:
    """``repro replay``: the golden-trace differential check as a command.

    Exit code 0 means every serving path (single-process, micro-batched and
    -- with ``--workers > 1`` -- the sharded cluster) produced exactly the
    offline batch path's alerts on the compiled trace; 1 means a divergence
    (the parity summaries name the mismatch kinds).
    """
    if args.chaos:
        return _command_replay_chaos(args)
    from repro.core.cyberhd import CyberHD
    from repro.datasets.loaders import load_dataset
    from repro.nids.pipeline import DetectionPipeline
    from repro.replay import (
        DatasetTraceCompiler,
        DifferentialHarness,
        ReplayConfig,
        TraceReplayer,
    )
    from repro.serving import GracefulShutdown

    with GracefulShutdown() as stop:
        dataset = load_dataset(
            args.dataset, n_train=args.train, n_test=args.rows, seed=args.seed
        )
        compiler = DatasetTraceCompiler(
            concurrency=args.concurrency, time_warp=args.time_warp
        )
        train_trace = compiler.compile(dataset, split="train", seed=args.seed)
        test_trace = compiler.compile(dataset, split="test", seed=args.seed + 1)
        print(train_trace.summary())
        print(test_trace.summary())
        print(f"honored feature cues: {test_trace.resolved_cues}")

        pipeline = DetectionPipeline(
            classifier=CyberHD(
                dim=args.dim, epochs=args.epochs, regeneration_rate=0.1, seed=args.seed
            )
        ).fit_packets(train_trace.packets)
        print(
            f"trained on the compiled training trace in {pipeline.train_seconds:.2f}s "
            f"({len(pipeline.class_names)} classes)"
        )

        harness = DifferentialHarness(
            pipeline,
            test_trace,
            window_size=args.window,
            micro_window_size=args.micro_window,
            cluster_workers=args.workers,
        )
        print(
            f"golden offline reference: {harness.golden.n_flagged}/"
            f"{harness.golden.n_flows} flows flagged"
        )
        reports = harness.run_all(cluster=args.workers > 1, shutdown=stop)
        for report in reports.values():
            print(report.summary())

        open_result = None
        if args.rate is not None and not stop.triggered:
            open_result = TraceReplayer(
                pipeline,
                ReplayConfig(mode="open", rate=args.rate, window_size=args.window),
            ).replay(test_trace, shutdown=stop)
            metrics = open_result.metrics
            print(
                f"open-loop @ {args.rate:.0f} pps: served "
                f"{metrics['served_fraction']:.0%} of flows, dropped "
                f"{open_result.dropped_packets} packets, recall "
                f"{metrics['recall']:.3f}, precision {metrics['precision']:.3f}"
            )
    if stop.triggered:
        print(f"\n{stop.signal_name or 'shutdown'}: ingest stopped, queues drained")

    # Interrupted paths were cut short by the shutdown signal: they are not
    # parity-verified, but they are not evidence of divergence either.
    completed = [r for r in reports.values() if not r.interrupted]
    parity_ok = all(report.ok for report in completed)
    verdict = "OK" if parity_ok else "MISMATCH"
    if stop.triggered:
        verdict += f" ({len(completed)} path(s) fully evaluated before shutdown)"
    print("\nparity:", verdict)
    if args.json:
        payload = {
            "dataset": args.dataset,
            "trace": test_trace.name,
            "flows": test_trace.n_flows,
            "packets": test_trace.n_packets,
            "golden_flagged": harness.golden.n_flagged,
            "parity_ok": parity_ok,
            "paths": {name: report.to_dict() for name, report in reports.items()},
            "open_loop": open_result.to_dict() if open_result is not None else None,
            "interrupted": stop.triggered,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"summary written to {args.json}")
    return 0 if parity_ok else 1


def _serve_pipeline(args: argparse.Namespace):
    """Train (or load) the pipeline and build the packet stream to serve."""
    from repro.core.cyberhd import CyberHD
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline
    from repro.persistence import load_pipeline

    cascade = getattr(args, "cascade", False)
    if args.model:
        if cascade:
            from repro.persistence import load_cascade

            pipeline = load_cascade(args.model)
            print(
                f"loaded cascade from {args.model} "
                f"({len(pipeline.class_names)} classes, "
                f"margin {pipeline.escalation_margin})"
            )
        else:
            pipeline = load_pipeline(args.model)
            print(
                f"loaded pipeline from {args.model} "
                f"({len(pipeline.class_names)} classes)"
            )
        start_time = 0.0
    else:
        train_packets = TrafficGenerator(seed=args.seed).generate(args.train_flows)
        if cascade:
            from repro.cascade import CascadeConfig, train_cascade_packets

            pipeline = train_cascade_packets(
                train_packets,
                config=CascadeConfig(
                    escalation_margin=args.escalation_margin,
                    prefilter_dim=args.prefilter_dim,
                    multiclass_bits=getattr(args, "inference_bits", None),
                ),
                dim=args.dim,
                epochs=args.epochs,
                seed=args.seed,
            )
            print(
                f"trained cascade on {len(train_packets)} packets "
                f"({args.train_flows} flows): pre-filter D="
                f"{args.prefilter_dim or args.dim} packed, head D={args.dim}"
            )
        else:
            pipeline = DetectionPipeline(
                classifier=CyberHD(
                    dim=args.dim,
                    epochs=args.epochs,
                    regeneration_rate=0.1,
                    seed=args.seed,
                    inference_bits=getattr(args, "inference_bits", None),
                )
            ).fit_packets(train_packets)
            print(
                f"trained on {len(train_packets)} packets "
                f"({args.train_flows} flows) in {pipeline.train_seconds:.2f}s"
            )
        start_time = train_packets[-1].timestamp + 60.0

    if args.scenario:
        from repro.cluster.loadgen import get_scenario

        scenario = get_scenario(args.scenario)
        # Scale the scenario so it carries roughly the requested flow count.
        scale = max(args.flows / scenario.total_flows(), 1e-3)
        stream = scenario.build_packets(
            seed=args.seed + 1, flows_scale=scale, start_time=start_time
        )
        print(f"scenario {scenario.name}: {scenario.description}")
    else:
        stream = TrafficGenerator(seed=args.seed + 1).generate(
            args.flows, start_time=start_time
        )
    return pipeline, stream


def _serve_cluster(args: argparse.Namespace) -> int:
    """``repro serve --workers N`` (N > 1): the sharded cluster path."""
    import dataclasses
    import json as json_module

    from repro.cluster import ClusterConfig, ClusterCoordinator, RetryPolicy
    from repro.persistence import save_pipeline
    from repro.serving import GracefulShutdown

    overrides = {
        "max_respawns": args.max_respawns,
        "heartbeat_interval": args.heartbeat_interval,
        "heartbeat_timeout": args.heartbeat_timeout,
    }
    overrides = {k: v for k, v in overrides.items() if v is not None}
    retry = dataclasses.replace(RetryPolicy(), **overrides) if overrides else None

    with GracefulShutdown() as stop:
        pipeline, stream = _serve_pipeline(args)
        coordinator = ClusterCoordinator(
            pipeline,
            ClusterConfig(
                n_workers=args.workers,
                batch_size=args.window,
                sync_interval=args.sync_interval,
                online=args.online,
                retry=retry,
            ),
        )
        report = coordinator.serve(stream, shutdown=stop)
    if report.interrupted:
        print(f"\n{stop.signal_name or 'shutdown'}: ingest stopped, queues drained")
    print(
        f"\ncluster served {report.total_packets} packets / {report.total_flows} flows "
        f"across {args.workers} workers in {report.wall_seconds:.2f}s; "
        f"{report.total_alerts} alerts"
    )
    print(
        f"aggregate capacity {report.aggregate_flow_throughput:.0f} flows/s "
        f"(wall {report.wall_flow_throughput:.0f} flows/s); "
        f"{report.sync_rounds} sync rounds, model generation {report.generation}"
    )
    for worker in report.workers:
        print(
            f"  worker {worker.worker_id}: {worker.packets} packets, "
            f"{worker.flows} flows, {worker.alerts} alerts, "
            f"{worker.flow_throughput:.0f} flows/cpu-s, "
            f"{worker.online_updates} online updates"
        )
    if getattr(args, "cascade", False):
        escalated = sum(w.cascade.get("escalated_flows", 0) for w in report.workers)
        screened = sum(w.cascade.get("prefilter_flows", 0) for w in report.workers)
        if screened:
            print(
                f"cascade: {escalated}/{screened} flows escalated "
                f"({100.0 * escalated / screened:.1f}%)"
            )
    if report.recovery.failures:
        recovery = report.recovery
        print(
            f"recovery: {len(recovery.failures)} worker failures, "
            f"{recovery.total_respawns} respawns, "
            f"{recovery.total_redispatched_batches} batches redispatched, "
            f"{recovery.unrecovered_batches} unrecovered"
        )
    if args.save:
        if getattr(args, "cascade", False):
            from repro.persistence import save_cascade

            path = save_cascade(pipeline, args.save)
            print(f"\ncascade saved to {path}")
        else:
            path = save_pipeline(pipeline, args.save)
            print(f"\ncluster-adapted pipeline saved to {path}")
    if args.json:
        with open(args.json, "w") as fh:
            json_module.dump(report.to_dict(), fh, indent=2)
        print(f"summary written to {args.json}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.nids.streaming import StreamingDetector
    from repro.persistence import save_pipeline
    from repro.serving import DriftMonitor, GracefulShutdown, OnlineLearner, chunked

    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.cascade and args.online:
        print(
            "--cascade does not compose with --online (two heads, two label "
            "spaces); adapt the heads individually and rebuild the cascade",
            file=sys.stderr,
        )
        return 2
    if args.cascade and args.tenants > 0:
        print("--cascade does not compose with --tenants", file=sys.stderr)
        return 2
    if args.tenants > 0:
        return _serve_fabric(args)
    if args.workers > 1:
        return _serve_cluster(args)

    # The shutdown handler is installed before training/stream generation so
    # a Ctrl-C anywhere in the serve lifecycle drains instead of tracebacking.
    with GracefulShutdown() as stop:
        pipeline, stream = _serve_pipeline(args)
        learner = None
        if args.online:
            learner = OnlineLearner(
                pipeline.classifier,
                passes=2,
                replay_rows=512,
                monitor=DriftMonitor(),
            )
        detector = StreamingDetector(
            pipeline,
            window_size=args.window,
            backpressure=args.backpressure,
            online=learner,
        )
        # Chunked ingest so a shutdown signal is observed with bounded
        # latency: stop accepting, drain what is queued (flush classifies
        # still-active flows), report, exit 0.
        for chunk in chunked(stream, args.window):
            if stop.triggered:
                break
            detector.push_many(chunk)
        detector.flush()
    if stop.triggered:
        print(f"\n{stop.signal_name or 'shutdown'}: ingest stopped, queue drained")

    print(
        f"\nserved {detector.total_packets} packets / {detector.total_flows} flows "
        f"in {len(detector.results)} windows; {detector.total_alerts} alerts"
    )
    print(
        f"mean window latency {1e3 * detector.mean_latency:.3f} ms; "
        f"per-flow {1e6 * detector.mean_latency_per_flow:.1f} us"
    )
    severities = detector.pipeline.alert_manager.count_by_severity()
    if severities:
        print("alerts by severity: " + ", ".join(f"{k}={v}" for k, v in sorted(severities.items())))
    if learner is not None:
        print(
            f"online: {learner.updates} partial_fit windows, "
            f"{learner.regenerations} drift regenerations"
        )
    if args.cascade:
        cascade_stats = pipeline.cascade_stats()
        print(
            f"cascade: {cascade_stats['escalated_flows']}/"
            f"{cascade_stats['prefilter_flows']} flows escalated "
            f"({100.0 * cascade_stats['escalation_fraction']:.1f}% at margin "
            f"{cascade_stats['escalation_margin']})"
        )
    print("\nper-stage telemetry:")
    print(detector.telemetry.summary())
    stats = detector.backpressure_stats
    print(
        f"\nbackpressure: submitted={stats.submitted} accepted={stats.accepted} "
        f"dropped={stats.dropped_oldest} forced_flushes={stats.forced_flushes} "
        f"high_watermark={stats.high_watermark}"
    )

    if args.save:
        if args.cascade:
            from repro.persistence import save_cascade

            path = save_cascade(pipeline, args.save)
            print(f"\ncascade saved to {path}")
        else:
            path = save_pipeline(pipeline, args.save)
            print(f"\npipeline saved to {path}")
    if args.json:
        payload = {
            "packets": detector.total_packets,
            "flows": detector.total_flows,
            "windows": len(detector.results),
            "alerts": detector.total_alerts,
            "mean_window_latency_s": detector.mean_latency,
            "mean_flow_latency_s": detector.mean_latency_per_flow,
            "stages": detector.telemetry.to_dict(),
            "backpressure": stats.to_dict(),
            "online": {
                "enabled": learner is not None,
                "partial_fit_windows": learner.updates if learner else 0,
                "regenerations": learner.regenerations if learner else 0,
            },
            "interrupted": stop.triggered,
            "shutdown_signal": stop.signal_name,
        }
        if args.cascade:
            payload["cascade"] = pipeline.cascade_stats()
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"summary written to {args.json}")
    return 0


def _fabric_registry_path(path: str) -> str:
    """Registry snapshots are ``.npz`` archives; normalize the suffix."""
    return path if path.endswith(".npz") else path + ".npz"


def _fabric_train(args: argparse.Namespace, tenant: int):
    """Train one tenant's pipeline (dataset trace or per-subnet traffic)."""
    from repro.core.cyberhd import CyberHD
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline

    bits = getattr(args, "inference_bits", 1)
    classifier = CyberHD(
        dim=getattr(args, "dim", 128),
        epochs=getattr(args, "epochs", 4),
        regeneration_rate=0.1,
        seed=args.seed + tenant,
        inference_bits=bits if bits else None,
    )
    if args.dataset:
        trace = _fabric_dataset_trace(args, tenant, split="train")
        packets = trace.packets
    else:
        packets = TrafficGenerator(
            seed=args.seed + tenant, subnet=f"10.{tenant}.0"
        ).generate(getattr(args, "train_flows", 300))
    return DetectionPipeline(classifier=classifier).fit_packets(packets)


def _fabric_dataset_trace(args: argparse.Namespace, tenant: int, split: str):
    """Compile one tenant's dataset slice (per-tenant seed offsets)."""
    from repro.replay import compile_dataset_trace

    return compile_dataset_trace(
        args.dataset,
        split=split,
        n_train=args.train,
        n_test=args.rows,
        seed=args.seed + tenant + (0 if split == "train" else 1000),
    )


def _fabric_mirror_packets(args: argparse.Namespace, tenant: int):
    """The mirrored traffic slice the shadow gate scores both models on."""
    from repro.nids.packets import TrafficGenerator

    if args.dataset:
        return _fabric_dataset_trace(args, tenant, split="test").packets
    return TrafficGenerator(
        seed=args.seed + 1000 + tenant, subnet=f"10.{tenant}.0"
    ).generate(args.mirror_flows)


def _command_fabric(args: argparse.Namespace) -> int:
    import os

    from repro.exceptions import ConfigurationError
    from repro.fabric import ModelRegistry, ShadowDeployment

    if not getattr(args, "fabric_command", None):
        print(
            "fabric needs a sub-command: publish | promote | rollback | status",
            file=sys.stderr,
        )
        return 2
    path = _fabric_registry_path(args.registry)

    if args.fabric_command == "publish":
        if os.path.exists(path):
            registry = ModelRegistry.load(path)
        else:
            registry = ModelRegistry(max_tenants=args.max_tenants)
        try:
            pipeline = _fabric_train(args, args.tenant)
            version = registry.publish(
                args.tenant, pipeline, activate=True if args.activate else None
            )
            live = registry.live_version(args.tenant)
            registry.save(path)
            print(
                f"tenant {args.tenant}: published v{version} "
                f"({'live' if live == version else f'shadow candidate; live v{live}'}) "
                f"-> {path}"
            )
        finally:
            registry.close()
        return 0

    if args.fabric_command == "promote":
        registry = ModelRegistry.load(path)
        try:
            versions = registry.versions(args.tenant)
            if not versions:
                print(f"tenant {args.tenant} has no published versions", file=sys.stderr)
                return 2
            candidate = (
                args.model_version if args.model_version is not None else versions[-1]
            )
            if candidate == registry.live_version(args.tenant):
                print(f"tenant {args.tenant}: v{candidate} is already live")
                return 0
            injector = None
            if args.error_rate > 0:
                from repro.serving.faults import ServingFaultInjector

                injector = ServingFaultInjector(
                    error_rate=args.error_rate, seed=args.seed
                )
            with ShadowDeployment(
                registry,
                args.tenant,
                candidate,
                recall_tolerance=args.recall_tolerance,
                divergence_budget=args.divergence_budget,
                fault_injector=injector,
            ) as deployment:
                decision = deployment.promote_if_ok(
                    _fabric_mirror_packets(args, args.tenant)
                )
            print(decision.parity.summary())
            print(decision.summary())
            if decision.ok:
                registry.save(path)
                print(f"promoted: tenant {args.tenant} now serves v{candidate}")
            else:
                print(
                    f"rejected: tenant {args.tenant} keeps serving "
                    f"v{registry.live_version(args.tenant)}"
                )
            if args.json:
                with open(args.json, "w") as fh:
                    json.dump(decision.to_dict(), fh, indent=2)
                print(f"decision written to {args.json}")
            return 0 if decision.ok else 1
        finally:
            registry.close()

    if args.fabric_command == "rollback":
        registry = ModelRegistry.load(path)
        try:
            previous = registry.rollback(args.tenant)
            registry.save(path)
            print(f"tenant {args.tenant}: rolled back to v{previous}")
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        finally:
            registry.close()
        return 0

    # status
    registry = ModelRegistry.load(path)
    try:
        tenants = registry.tenants()
        payload = {
            "registry": path,
            "tenants": {
                str(t): {
                    "versions": registry.versions(t),
                    "live": registry.live_version(t),
                    "previous": registry.previous_version(t),
                    "generation": registry.generation(t),
                }
                for t in tenants
            },
            "total_model_bytes": registry.total_model_bytes(),
        }
        print(f"{path}: {len(tenants)} tenant(s), "
              f"{payload['total_model_bytes'] / 1024:.1f} KiB resident")
        for t in tenants:
            entry = payload["tenants"][str(t)]
            print(
                f"  tenant {t}: live v{entry['live']} "
                f"(prev v{entry['previous']}, generation {entry['generation']}), "
                f"versions {entry['versions']}"
            )
        if args.json:
            with open(args.json, "w") as fh:
                json.dump(payload, fh, indent=2)
            print(f"status written to {args.json}")
    finally:
        registry.close()
    return 0


def _merge_tenant_reports(workers) -> dict:
    """Fold per-worker tenant summaries into one cluster-wide view."""
    merged: dict = {}
    for worker in workers:
        for tenant_id, entry in worker.tenants.items():
            slot = merged.setdefault(
                tenant_id,
                {"flows": 0, "alerts": 0, "live_version": entry.get("live_version"),
                 "swaps": 0},
            )
            slot["flows"] += entry.get("flows", 0)
            slot["alerts"] += entry.get("alerts", 0)
            slot["swaps"] += entry.get("swaps", 0)
            if entry.get("live_version") is not None:
                slot["live_version"] = entry["live_version"]
    return merged


def _serve_fabric(args: argparse.Namespace) -> int:
    """``repro serve --tenants N``: multi-tenant fabric serving.

    Trains one per-subnet detector per tenant, publishes them all into an
    in-process registry, and serves the merged per-tenant traffic either
    through the single-process :class:`FabricEngine` (``--workers 1``,
    online learning supported, tenant-scoped) or the tenant-aware sharded
    cluster (``--workers > 1``).
    """
    from repro.cluster import ClusterConfig, ClusterCoordinator
    from repro.core.cyberhd import CyberHD
    from repro.fabric import FabricEngine, ModelRegistry, TenantKeyer
    from repro.nids.packets import TrafficGenerator
    from repro.nids.pipeline import DetectionPipeline
    from repro.serving import GracefulShutdown, chunked

    n_tenants = args.tenants
    if args.workers > 1 and args.online:
        print(
            "--tenants with --workers > 1 serves read-only per-tenant models; "
            "use --workers 1 for tenant-scoped online learning",
            file=sys.stderr,
        )
        return 2

    report = None
    with GracefulShutdown() as stop:
        streams = []
        base_pipeline = None
        registry = ModelRegistry(
            max_tenants=n_tenants, max_readers=args.workers + 2
        )
        try:
            for tenant in range(n_tenants):
                train_packets = TrafficGenerator(
                    seed=args.seed + tenant, subnet=f"10.{tenant}.0"
                ).generate(args.train_flows)
                pipeline = DetectionPipeline(
                    classifier=CyberHD(
                        dim=args.dim,
                        epochs=args.epochs,
                        regeneration_rate=0.1,
                        seed=args.seed + tenant,
                        inference_bits=getattr(args, "inference_bits", None),
                    )
                ).fit_packets(train_packets)
                registry.publish(tenant, pipeline)
                if base_pipeline is None:
                    base_pipeline = pipeline
                streams.extend(
                    TrafficGenerator(
                        seed=args.seed + 1000 + tenant, subnet=f"10.{tenant}.0"
                    ).generate(
                        max(args.flows // n_tenants, 1),
                        start_time=train_packets[-1].timestamp + 60.0,
                    )
                )
            print(
                f"published {n_tenants} tenant model(s), "
                f"{registry.total_model_bytes() / 1024:.1f} KiB resident"
            )
            streams.sort(key=lambda p: p.timestamp)
            keyer = TenantKeyer.per_subnet(n_tenants)

            if args.workers > 1:
                # Workers attach the whole tenant table by spec and route
                # each frame row by its tenant column; the base pipeline
                # only serves flows no tenant claims.
                coordinator = ClusterCoordinator(
                    base_pipeline,
                    ClusterConfig(
                        n_workers=args.workers,
                        batch_size=args.window,
                        sync_interval=args.sync_interval,
                        online=False,
                        fabric_spec=registry.spec(),
                        tenant_keyer=keyer,
                    ),
                )
                report = coordinator.serve(streams, shutdown=stop)
                summary = {
                    "tenants": _merge_tenant_reports(report.workers),
                    "batches": report.sync_rounds,
                }
            else:
                engine = FabricEngine(
                    registry.spec(),
                    keyer,
                    reader_id=0,
                    online=args.online,
                    registry=registry,
                )
                try:
                    for chunk in chunked(iter(streams), args.window):
                        if stop.triggered:
                            break
                        engine.process_packets(chunk)
                    engine.finalize()
                    summary = engine.summary()
                finally:
                    engine.close()
        finally:
            registry.close()
    if stop.triggered:
        print(f"\n{stop.signal_name or 'shutdown'}: ingest stopped, drained")
    if report is not None:
        print(
            f"\nfabric cluster served {report.total_packets} packets / "
            f"{report.total_flows} flows across {args.workers} workers "
            f"in {report.wall_seconds:.2f}s; {report.total_alerts} alerts"
        )
    if report is None:
        total_flows = sum(t["flows"] for t in summary["tenants"].values())
        total_alerts = sum(t["alerts"] for t in summary["tenants"].values())
        print(
            f"\nfabric served {total_flows} flows across {n_tenants} tenants "
            f"in {summary['batches']} batches; {total_alerts} alerts"
        )
    for tenant_id in sorted(summary["tenants"], key=int):
        report = summary["tenants"][tenant_id]
        print(
            f"  tenant {tenant_id}: {report['flows']} flows, "
            f"{report['alerts']} alerts, serving v{report['live_version']} "
            f"({report['swaps']} hot-swaps)"
        )
    if args.online:
        print(
            f"online: {summary['online_updates']} tenant-scoped partial_fit "
            f"batches, {summary['online_samples']} samples"
        )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(summary, fh, indent=2)
        print(f"summary written to {args.json}")
    return 0


def _command_matrix(args: argparse.Namespace) -> int:
    from repro.matrix import (
        diff_matrix,
        load_spec,
        render_report,
        run_matrix,
        write_matrix_report,
    )
    from repro.matrix.runner import get_suites

    if args.matrix_command == "run":
        spec = load_spec(args.spec, known_suites=set(get_suites()))
        report = run_matrix(
            spec,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            refresh=args.refresh,
            repeats_override=args.repeats,
            progress=print,
        )
        write_matrix_report(report, args.json)
        summary = report["summary"]
        print(
            f"\nmatrix '{spec.name}': {summary['n_cells']} cells "
            f"({summary['n_cached']} cached, {summary['n_executed']} executed) "
            f"in {summary['wall_seconds']:.2f}s -> {args.json}"
        )
        if args.min_cache_hits is not None:
            fraction = summary["cache_hit_fraction"]
            if fraction < args.min_cache_hits:
                print(
                    f"FAIL: cache hit fraction {fraction:.2f} below required "
                    f"{args.min_cache_hits:.2f} (cache cold or keys unstable)"
                )
                return 2
            print(
                f"cache hit fraction {fraction:.2f} >= {args.min_cache_hits:.2f}"
            )
        return 0

    if args.matrix_command == "diff":
        spec = load_spec(args.spec, known_suites=set(get_suites()))
        with open(args.report) as fh:
            report = json.load(fh)
        ok, lines = diff_matrix(report, spec, baseline_dir=args.baseline_dir)
        for line in lines:
            print(line)
        print("matrix diff: OK" if ok else "matrix diff: FAIL")
        return 0 if ok else 1

    if args.matrix_command == "report":
        with open(args.report) as fh:
            report = json.load(fh)
        print(render_report(report))
        return 0

    print("usage: repro matrix {run,diff,report} ...")
    return 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "datasets":
        return _command_datasets(args)
    if args.command == "bench":
        return _command_bench(args)
    if args.command == "bench-diff":
        return _command_bench_diff(args)
    if args.command == "replay":
        return _command_replay(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "fabric":
        return _command_fabric(args)
    if args.command == "matrix":
        return _command_matrix(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
