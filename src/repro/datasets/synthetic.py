"""Synthetic NIDS flow generation from a dataset schema.

Each dataset's schema describes *what* the flows look like (feature names and
types, attack taxonomy, class imbalance).  This module describes *how* the
synthetic flows are drawn:

* Every class gets a **prototype**: a random direction in numeric-feature
  space, scaled by the dataset-level ``separability`` and the class-specific
  ``separability`` multiplier.  Rare, stealthy attack families (U2R,
  Infiltration, Worms, ...) use multipliers below 1 so they remain hard.
* Numeric features are drawn from a Gaussian around the class prototype;
  features marked ``heavy_tailed`` are passed through ``exp`` to produce the
  log-normal byte-count/duration statistics seen in real traffic.
* Categorical features are drawn from a class-conditional multinomial whose
  probabilities come from a Dirichlet draw, so each class has "typical"
  protocols/services/flags.
* A configurable fraction of labels is flipped (``label_noise``) to mimic the
  labeling errors known to exist in the CIC datasets.

Everything is deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.base import NIDSDataset
from repro.datasets.preprocessing import Preprocessor
from repro.datasets.schema import DatasetSchema
from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass
class GenerationConfig:
    """Tunable knobs of the synthetic flow generator.

    Attributes
    ----------
    separability:
        Global scale of the distance between class prototypes, in units of the
        within-class standard deviation.  Around 2.5-3.5 produces accuracy
        ranges comparable to the paper's (high 80s to high 90s %).
    noise_scale:
        Within-class standard deviation of numeric features.
    label_noise:
        Fraction of training labels flipped to a random other class.
    categorical_concentration:
        Dirichlet concentration of the class-conditional categorical
        distributions (smaller = more class-typical categories).
    nonlinear_fraction:
        Fraction of numeric features whose class signal enters through a
        squared/interaction term instead of a pure mean shift; this is what
        gives the RBF encoder (and the DNN) an edge over linear models, as in
        the real datasets.
    """

    separability: float = 3.0
    noise_scale: float = 1.0
    label_noise: float = 0.01
    categorical_concentration: float = 0.7
    nonlinear_fraction: float = 0.3

    def validate(self) -> "GenerationConfig":
        """Check parameter ranges and return ``self``."""
        if self.separability <= 0:
            raise DatasetError("separability must be positive")
        if self.noise_scale <= 0:
            raise DatasetError("noise_scale must be positive")
        check_probability(self.label_noise, "label_noise")
        if self.categorical_concentration <= 0:
            raise DatasetError("categorical_concentration must be positive")
        check_probability(self.nonlinear_fraction, "nonlinear_fraction")
        return self

    @classmethod
    def preset(cls, name: str) -> "GenerationConfig":
        """A named generation preset (see :data:`GENERATION_PRESETS`).

        Presets give the load-generation scenario library and the eval
        harness a shared vocabulary: a packet-level serving scenario and its
        tabular companion dataset reference the same preset name.
        """
        try:
            base = GENERATION_PRESETS[name]
        except KeyError as exc:
            raise DatasetError(
                f"unknown generation preset {name!r}; available: "
                f"{sorted(GENERATION_PRESETS)}"
            ) from exc
        return replace(base)

    def interpolate(self, other: "GenerationConfig", t: float) -> "GenerationConfig":
        """Linear interpolation between two configs (``t=0`` -> self).

        Used by drift scenarios: a stream whose generation statistics move
        gradually from one preset to another is built by sampling phases at
        increasing ``t``.
        """
        if not 0.0 <= t <= 1.0:
            raise DatasetError("interpolation factor t must be in [0, 1]")

        def mix(a: float, b: float) -> float:
            return (1.0 - t) * a + t * b

        return GenerationConfig(
            separability=mix(self.separability, other.separability),
            noise_scale=mix(self.noise_scale, other.noise_scale),
            label_noise=mix(self.label_noise, other.label_noise),
            categorical_concentration=mix(
                self.categorical_concentration, other.categorical_concentration
            ),
            nonlinear_fraction=mix(self.nonlinear_fraction, other.nonlinear_fraction),
        ).validate()


#: Named generation presets.  "paper" matches the calibration the accuracy
#: experiments use; "clean"/"hard" bracket it (easier separation vs noisier,
#: less separable traffic); "drift_onset" is the end-state config drift
#: scenarios interpolate toward (blurrier classes, more labeling error --
#: the operational symptom of a traffic mix the training distribution no
#: longer describes).
GENERATION_PRESETS: Dict[str, GenerationConfig] = {
    "paper": GenerationConfig(),
    "clean": GenerationConfig(separability=4.0, noise_scale=0.8, label_noise=0.0),
    "hard": GenerationConfig(separability=2.2, noise_scale=1.3, label_noise=0.04),
    "drift_onset": GenerationConfig(
        separability=2.0, noise_scale=1.5, label_noise=0.05, nonlinear_fraction=0.45
    ),
}


class SyntheticFlowGenerator:
    """Draws schema-faithful synthetic flows for one dataset.

    Parameters
    ----------
    schema:
        The dataset schema (features + classes).
    config:
        Generation knobs; defaults are calibrated to give the accuracy ranges
        reported in the paper.
    seed:
        Seed controlling prototypes, category distributions and sampling.
    """

    def __init__(
        self,
        schema: DatasetSchema,
        config: Optional[GenerationConfig] = None,
        seed: SeedLike = None,
    ):
        self.schema = schema
        self.config = (config or GenerationConfig()).validate()
        self._rng = ensure_rng(seed)
        self._n_numeric = len(schema.numeric_features)
        self._n_categorical = len(schema.categorical_features)
        self._build_class_models()

    @classmethod
    def from_preset(
        cls, schema: DatasetSchema, preset: str, seed: SeedLike = None
    ) -> "SyntheticFlowGenerator":
        """A generator configured from a named preset (see ``GENERATION_PRESETS``)."""
        return cls(schema, config=GenerationConfig.preset(preset), seed=seed)

    # ------------------------------------------------------------ internals
    def _build_class_models(self) -> None:
        cfg = self.config
        n_classes = self.schema.n_classes
        # Class prototypes in numeric-feature space.
        prototypes = self._rng.standard_normal((n_classes, self._n_numeric))
        norms = np.linalg.norm(prototypes, axis=1, keepdims=True)
        prototypes = prototypes / np.where(norms == 0, 1.0, norms)
        sep = np.array([c.separability for c in self.schema.classes])[:, None]
        self._prototypes = prototypes * cfg.separability * sep

        # Which numeric features carry their class signal non-linearly.
        n_nonlinear = int(round(cfg.nonlinear_fraction * self._n_numeric))
        nonlinear_idx = self._rng.choice(self._n_numeric, size=n_nonlinear, replace=False)
        self._nonlinear_mask = np.zeros(self._n_numeric, dtype=bool)
        self._nonlinear_mask[nonlinear_idx] = True

        # Per-class spread multiplier for nonlinear features: the class signal
        # is carried by the feature's variance rather than its mean.
        self._nonlinear_spread = 1.0 + np.abs(
            self._rng.standard_normal((n_classes, self._n_numeric))
        ) * 0.5 * np.abs(self._prototypes) / max(cfg.separability, 1e-9)

        # Heavy-tailed numeric features.
        self._heavy_mask = np.array(
            [f.heavy_tailed for f in self.schema.numeric_features], dtype=bool
        )

        # Class-conditional categorical distributions.
        self._categorical_probs = []
        for feature in self.schema.categorical_features:
            n_cat = len(feature.categories)
            probs = self._rng.dirichlet(
                np.full(n_cat, cfg.categorical_concentration), size=n_classes
            )
            self._categorical_probs.append(probs)

    def _sample_class(self, label: int, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` raw (numeric, categorical) samples of class ``label``."""
        cfg = self.config
        mean = self._prototypes[label]
        numeric = rng.normal(0.0, cfg.noise_scale, size=(n, self._n_numeric))
        # Linear features: mean shift.  Nonlinear features: variance signal.
        numeric[:, ~self._nonlinear_mask] += mean[~self._nonlinear_mask]
        numeric[:, self._nonlinear_mask] *= self._nonlinear_spread[label, self._nonlinear_mask]
        numeric[:, self._nonlinear_mask] += 0.25 * mean[self._nonlinear_mask] ** 2
        # Heavy-tailed features become log-normal (always positive).
        if self._heavy_mask.any():
            numeric[:, self._heavy_mask] = np.exp(numeric[:, self._heavy_mask] * 0.75)

        if self._n_categorical:
            categorical = np.empty((n, self._n_categorical), dtype=np.int64)
            for col, probs in enumerate(self._categorical_probs):
                categorical[:, col] = rng.choice(probs.shape[1], size=n, p=probs[label])
        else:
            categorical = np.empty((n, 0), dtype=np.int64)
        return numeric, categorical

    def _sample_split(self, n: int, rng: np.random.Generator) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``n`` raw flows with schema class proportions."""
        weights = np.array(self.schema.class_weights)
        counts = rng.multinomial(n, weights)
        # Guarantee at least one sample of every class so classifiers always
        # see the full label space even at small n, while keeping the total
        # exactly n by taking the extra samples from the largest classes.
        for label in range(len(counts)):
            if counts[label] == 0:
                counts[label] = 1
                counts[int(np.argmax(counts))] -= 1
        numeric_parts, categorical_parts, labels = [], [], []
        for label, count in enumerate(counts):
            num, cat = self._sample_class(label, int(count), rng)
            numeric_parts.append(num)
            categorical_parts.append(cat)
            labels.append(np.full(int(count), label, dtype=np.int64))
        numeric = np.vstack(numeric_parts)
        categorical = np.vstack(categorical_parts)
        y = np.concatenate(labels)
        order = rng.permutation(y.shape[0])
        return numeric[order], categorical[order], y[order]

    def _apply_label_noise(self, y: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        noise = self.config.label_noise
        if noise <= 0:
            return y
        y = y.copy()
        n_flip = int(round(noise * y.shape[0]))
        if n_flip == 0:
            return y
        idx = rng.choice(y.shape[0], size=n_flip, replace=False)
        shifts = rng.integers(1, self.schema.n_classes, size=n_flip)
        y[idx] = (y[idx] + shifts) % self.schema.n_classes
        return y

    # ------------------------------------------------------------------- API
    def generate(self, n_train: int, n_test: int) -> NIDSDataset:
        """Generate a preprocessed train/test dataset.

        Numeric features are min-max scaled to ``[0, 1]`` (statistics fitted
        on the training split) and categorical features are one-hot encoded.
        """
        if n_train < self.schema.n_classes or n_test < self.schema.n_classes:
            raise DatasetError(
                "n_train and n_test must be at least the number of classes "
                f"({self.schema.n_classes})"
            )
        train_num, train_cat, y_train = self._sample_split(n_train, self._rng)
        test_num, test_cat, y_test = self._sample_split(n_test, self._rng)
        y_train = self._apply_label_noise(y_train, self._rng)

        n_categories = [len(f.categories) for f in self.schema.categorical_features]
        preprocessor = Preprocessor(n_categories=n_categories, numeric_scaling="minmax")
        X_train = preprocessor.fit_transform(train_num, train_cat if n_categories else None)
        X_test = preprocessor.transform(test_num, test_cat if n_categories else None)

        feature_names = tuple(
            preprocessor.output_feature_names(
                [f.name for f in self.schema.numeric_features],
                [f.name for f in self.schema.categorical_features],
                [list(f.categories) for f in self.schema.categorical_features],
            )
        )
        metadata: Dict[str, object] = {
            "separability": self.config.separability,
            "label_noise": self.config.label_noise,
            "n_raw_features": self.schema.n_features,
            "generator": "SyntheticFlowGenerator",
        }
        return NIDSDataset(
            name=self.schema.name,
            X_train=X_train,
            y_train=y_train,
            X_test=X_test,
            y_test=y_test,
            feature_names=feature_names,
            class_names=self.schema.class_names,
            schema=self.schema,
            metadata=metadata,
        )
