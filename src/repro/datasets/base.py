"""The in-memory dataset container used throughout the evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.datasets.schema import ClassSpec, DatasetSchema
from repro.exceptions import DatasetError


@dataclass
class NIDSDataset:
    """A train/test split of encoded NIDS flows.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"nsl_kdd"``).
    X_train, y_train, X_test, y_test:
        Encoded feature matrices (numeric, post one-hot / scaling) and integer
        class labels.
    feature_names:
        Names of the encoded feature columns (one-hot columns are named
        ``<feature>=<category>``).
    class_names:
        Class label names; ``class_names[label]`` is the human-readable name.
    schema:
        The originating :class:`DatasetSchema`, if the dataset was generated
        from one.
    metadata:
        Free-form generation metadata (seed, separability, label noise, ...).
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray
    X_test: np.ndarray
    y_test: np.ndarray
    feature_names: Tuple[str, ...]
    class_names: Tuple[str, ...]
    schema: Optional[DatasetSchema] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.X_train.ndim != 2 or self.X_test.ndim != 2:
            raise DatasetError("X_train and X_test must be 2-D")
        if self.X_train.shape[1] != self.X_test.shape[1]:
            raise DatasetError("train and test must have the same number of features")
        if self.X_train.shape[0] != self.y_train.shape[0]:
            raise DatasetError("X_train and y_train lengths differ")
        if self.X_test.shape[0] != self.y_test.shape[0]:
            raise DatasetError("X_test and y_test lengths differ")
        if len(self.feature_names) != self.X_train.shape[1]:
            raise DatasetError("feature_names length does not match the feature matrix")

    # ------------------------------------------------------------ properties
    @property
    def n_features(self) -> int:
        """Number of encoded feature columns."""
        return int(self.X_train.shape[1])

    @property
    def n_classes(self) -> int:
        """Number of classes present in the label space."""
        return len(self.class_names)

    @property
    def n_train(self) -> int:
        """Number of training flows."""
        return int(self.X_train.shape[0])

    @property
    def n_test(self) -> int:
        """Number of test flows."""
        return int(self.X_test.shape[0])

    # ------------------------------------------------------------------- API
    def class_distribution(self, split: str = "train") -> Dict[str, int]:
        """Count of flows per class name in the chosen split."""
        y = self._labels(split)
        counts = np.bincount(y, minlength=self.n_classes)
        return {name: int(counts[i]) for i, name in enumerate(self.class_names)}

    def attack_fraction(self, split: str = "train") -> float:
        """Fraction of flows labeled as an attack class in the chosen split."""
        if self.schema is None:
            raise DatasetError("attack_fraction requires a schema with attack flags")
        mask = np.asarray(self.schema.attack_mask)
        y = self._labels(split)
        return float(np.mean(mask[y]))

    def to_binary(self) -> "NIDSDataset":
        """Collapse labels to benign (0) vs attack (1) using the schema.

        The binary view keeps a real two-class schema (benign flagged
        ``is_attack=False``, attack ``True``) so downstream attack-flag
        queries (``attack_fraction``, ``schema.attack_mask``) keep working,
        and records the source category names in ``metadata`` so escalated
        flows can be mapped back to the original label space.
        """
        if self.schema is None:
            raise DatasetError("to_binary requires a schema with attack flags")
        mask = np.asarray(self.schema.attack_mask).astype(np.int64)
        benign_weight = sum(
            c.weight for c in self.schema.classes if not c.is_attack
        )
        attack_weight = sum(c.weight for c in self.schema.classes if c.is_attack)
        if benign_weight <= 0 or attack_weight <= 0:
            raise DatasetError(
                "to_binary needs at least one benign and one attack class"
            )
        binary_schema = DatasetSchema(
            name=f"{self.schema.name}_binary",
            features=self.schema.features,
            classes=(
                ClassSpec(name="benign", weight=benign_weight, is_attack=False),
                ClassSpec(name="attack", weight=attack_weight, is_attack=True),
            ),
            description=f"Binary benign/attack view of {self.schema.name}",
        )
        return NIDSDataset(
            name=f"{self.name}_binary",
            X_train=self.X_train,
            y_train=mask[self.y_train],
            X_test=self.X_test,
            y_test=mask[self.y_test],
            feature_names=self.feature_names,
            class_names=("benign", "attack"),
            schema=binary_schema,
            metadata=dict(
                self.metadata,
                binary=True,
                source_class_names=tuple(self.class_names),
                source_attack_mask=tuple(self.schema.attack_mask),
            ),
        )

    def subsample(self, n_train: int, n_test: int, seed: int = 0) -> "NIDSDataset":
        """Seeded stratified subsample (used for quick experiments).

        Rows are drawn per class proportionally to the class's share of the
        split, with a minimum of one row per present class, so rare attack
        families (e.g. NSL-KDD U2R) survive even aggressive downsampling.
        Raises :class:`DatasetError` when the requested size cannot cover
        every class present in the split.
        """
        if n_train > self.n_train or n_test > self.n_test:
            raise DatasetError("cannot subsample more rows than available")
        rng = np.random.default_rng(seed)
        train_idx = _stratified_indices(self.y_train, n_train, rng, "train")
        test_idx = _stratified_indices(self.y_test, n_test, rng, "test")
        return NIDSDataset(
            name=self.name,
            X_train=self.X_train[train_idx],
            y_train=self.y_train[train_idx],
            X_test=self.X_test[test_idx],
            y_test=self.y_test[test_idx],
            feature_names=self.feature_names,
            class_names=self.class_names,
            schema=self.schema,
            metadata=dict(self.metadata, subsampled=True),
        )

    # ----------------------------------------------------------------- utils
    def _labels(self, split: str) -> np.ndarray:
        if split == "train":
            return self.y_train
        if split == "test":
            return self.y_test
        raise DatasetError(f"split must be 'train' or 'test', got {split!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NIDSDataset(name={self.name!r}, n_train={self.n_train}, n_test={self.n_test}, "
            f"n_features={self.n_features}, n_classes={self.n_classes})"
        )


def _stratified_indices(
    y: np.ndarray, n: int, rng: np.random.Generator, split: str
) -> np.ndarray:
    """Pick ``n`` row indices from ``y`` stratified by class.

    Allocation is proportional to each class's share of the split with a
    min-1 floor per present class; leftover rows go to the classes with the
    largest fractional remainders (largest-remainder rounding), capped at
    each class's availability.
    """
    total = int(y.shape[0])
    if n == total:
        return np.arange(total)
    labels, counts = np.unique(y, return_counts=True)
    k = len(labels)
    if n < k:
        raise DatasetError(
            f"cannot stratify {n} {split} rows over {k} classes: "
            "need at least one row per class present in the split "
            "(request a larger subsample or collapse the label space first)"
        )
    shares = counts.astype(np.float64) / total * n
    alloc = np.maximum(np.floor(shares).astype(np.int64), 1)
    alloc = np.minimum(alloc, counts)
    remainder_order = np.argsort(-(shares - np.floor(shares)))
    deficit = n - int(alloc.sum())
    while deficit > 0:
        # hand leftover rows to the largest remainders that still have spare
        # rows; n <= total guarantees the spare capacity exists.
        for i in remainder_order:
            if deficit == 0:
                break
            if alloc[i] < counts[i]:
                alloc[i] += 1
                deficit -= 1
    while deficit < 0:
        # min-1 floors on rare classes can overshoot: trim the biggest
        # allocations back (never below the floor).
        for i in np.argsort(-alloc):
            if deficit == 0:
                break
            if alloc[i] > 1:
                alloc[i] -= 1
                deficit += 1
    parts = [
        rng.choice(np.flatnonzero(y == label), size=int(take), replace=False)
        for label, take in zip(labels, alloc)
    ]
    idx = np.concatenate(parts)
    rng.shuffle(idx)
    return idx
