"""Dataset registry and the public ``load_dataset`` entry point."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets import cicids2017, cicids2018, nslkdd, unsw_nb15
from repro.datasets.base import NIDSDataset
from repro.datasets.synthetic import GenerationConfig
from repro.exceptions import DatasetError
from repro.utils.rng import SeedLike

#: Maps dataset name -> generator function.
_REGISTRY: Dict[str, Callable[..., NIDSDataset]] = {
    "nsl_kdd": nslkdd.generate,
    "unsw_nb15": unsw_nb15.generate,
    "cic_ids_2017": cicids2017.generate,
    "cic_ids_2018": cicids2018.generate,
}

#: Common aliases accepted by :func:`load_dataset`.
_ALIASES: Dict[str, str] = {
    "nslkdd": "nsl_kdd",
    "nsl-kdd": "nsl_kdd",
    "unsw": "unsw_nb15",
    "unsw-nb15": "unsw_nb15",
    "cicids2017": "cic_ids_2017",
    "cic-ids-2017": "cic_ids_2017",
    "cicids2018": "cic_ids_2018",
    "cic-ids-2018": "cic_ids_2018",
}


def available_datasets() -> List[str]:
    """Names of the datasets that can be passed to :func:`load_dataset`."""
    return sorted(_REGISTRY)


def canonical_name(name: str) -> str:
    """Resolve aliases (``"NSL-KDD"``, ``"cicids2017"`` ...) to registry names."""
    key = name.strip().lower().replace(" ", "_")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        )
    return key


def load_dataset(
    name: str,
    n_train: int = 8000,
    n_test: int = 2000,
    seed: Optional[SeedLike] = None,
    config: Optional[GenerationConfig] = None,
) -> NIDSDataset:
    """Generate one of the four paper datasets.

    Parameters
    ----------
    name:
        ``"nsl_kdd"``, ``"unsw_nb15"``, ``"cic_ids_2017"`` or
        ``"cic_ids_2018"`` (aliases such as ``"NSL-KDD"`` are accepted).
    n_train, n_test:
        Number of flows in each split.
    seed:
        RNG seed; ``None`` uses the dataset's default seed so that repeated
        calls give identical data.
    config:
        Optional :class:`GenerationConfig` overriding the per-dataset default
        separability / label-noise settings.

    Returns
    -------
    NIDSDataset
        The generated, preprocessed train/test split.
    """
    key = canonical_name(name)
    generator = _REGISTRY[key]
    kwargs = {"n_train": n_train, "n_test": n_test, "config": config}
    if seed is not None:
        kwargs["seed"] = seed
    return generator(**kwargs)
