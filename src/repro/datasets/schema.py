"""Dataset schemas: feature and class specifications for each NIDS dataset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class FeatureSpec:
    """Specification of a single flow feature.

    Attributes
    ----------
    name:
        Feature name as it appears in the real dataset.
    kind:
        ``"numeric"`` or ``"categorical"``.
    categories:
        For categorical features, the list of category labels.
    heavy_tailed:
        Numeric features marked heavy-tailed (byte counts, durations,
        inter-arrival times) are generated with a log-normal profile instead
        of a plain Gaussian, which mirrors real traffic statistics.
    """

    name: str
    kind: str = "numeric"
    categories: Tuple[str, ...] = ()
    heavy_tailed: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("numeric", "categorical"):
            raise DatasetError(f"feature kind must be numeric or categorical, got {self.kind!r}")
        if self.kind == "categorical" and len(self.categories) < 2:
            raise DatasetError(f"categorical feature {self.name!r} needs >= 2 categories")

    @property
    def is_categorical(self) -> bool:
        """True if the feature is categorical."""
        return self.kind == "categorical"


@dataclass(frozen=True)
class ClassSpec:
    """Specification of a traffic class (benign or a specific attack family).

    Attributes
    ----------
    name:
        Class label (e.g. ``"normal"``, ``"dos"``, ``"Exploits"``).
    weight:
        Relative frequency of the class in the generated dataset (weights are
        normalized internally, so they need not sum to 1).
    is_attack:
        ``False`` only for benign/normal traffic.
    separability:
        Class-specific multiplier on how far the class prototype sits from the
        global mean.  Rare, hard-to-detect attacks (e.g. U2R, Infiltration)
        use values below 1 so they remain genuinely harder to classify.
    """

    name: str
    weight: float
    is_attack: bool = True
    separability: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise DatasetError(f"class {self.name!r} must have positive weight")
        if self.separability <= 0:
            raise DatasetError(f"class {self.name!r} must have positive separability")


@dataclass(frozen=True)
class DatasetSchema:
    """Complete schema of a NIDS dataset (features + class taxonomy)."""

    name: str
    features: Tuple[FeatureSpec, ...]
    classes: Tuple[ClassSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.features:
            raise DatasetError("a dataset schema needs at least one feature")
        if len(self.classes) < 2:
            raise DatasetError("a dataset schema needs at least two classes")
        names = [f.name for f in self.features]
        if len(set(names)) != len(names):
            raise DatasetError(f"duplicate feature names in schema {self.name!r}")
        class_names = [c.name for c in self.classes]
        if len(set(class_names)) != len(class_names):
            raise DatasetError(f"duplicate class names in schema {self.name!r}")

    # ------------------------------------------------------------ accessors
    @property
    def n_features(self) -> int:
        """Number of raw (pre-encoding) features."""
        return len(self.features)

    @property
    def n_classes(self) -> int:
        """Number of traffic classes."""
        return len(self.classes)

    @property
    def numeric_features(self) -> Tuple[FeatureSpec, ...]:
        """The numeric feature specs, in schema order."""
        return tuple(f for f in self.features if not f.is_categorical)

    @property
    def categorical_features(self) -> Tuple[FeatureSpec, ...]:
        """The categorical feature specs, in schema order."""
        return tuple(f for f in self.features if f.is_categorical)

    @property
    def class_names(self) -> Tuple[str, ...]:
        """Class labels, in schema order (index = integer label)."""
        return tuple(c.name for c in self.classes)

    @property
    def class_weights(self) -> Tuple[float, ...]:
        """Normalized class frequencies."""
        total = sum(c.weight for c in self.classes)
        return tuple(c.weight / total for c in self.classes)

    @property
    def attack_mask(self) -> Tuple[bool, ...]:
        """Per-class flag: True for attack classes, False for benign."""
        return tuple(c.is_attack for c in self.classes)

    def feature_index(self, name: str) -> int:
        """Index of feature ``name`` in the raw feature order."""
        for i, f in enumerate(self.features):
            if f.name == name:
                return i
        raise DatasetError(f"unknown feature {name!r} in schema {self.name!r}")

    def class_index(self, name: str) -> int:
        """Integer label of class ``name``."""
        for i, c in enumerate(self.classes):
            if c.name == name:
                return i
        raise DatasetError(f"unknown class {name!r} in schema {self.name!r}")


def numeric_feature_specs(names: Sequence[str], heavy_tailed: Sequence[str] = ()) -> List[FeatureSpec]:
    """Build numeric :class:`FeatureSpec` objects for ``names``.

    Features whose name appears in ``heavy_tailed`` are marked log-normal.
    """
    heavy = set(heavy_tailed)
    return [FeatureSpec(name=n, kind="numeric", heavy_tailed=n in heavy) for n in names]
