"""NIDS dataset substrate.

The paper evaluates on four public intrusion-detection datasets (NSL-KDD,
UNSW-NB15, CIC-IDS-2017, CIC-IDS-2018).  This environment has no network
access, so each dataset is replaced by a **schema-faithful synthetic
generator**: the real dataset's feature names/types, attack taxonomy and class
imbalance are encoded in a :class:`repro.datasets.schema.DatasetSchema`, and a
deterministic generator draws flows whose per-class feature distributions are
controlled (Gaussian mixtures for numeric features, class-conditional
multinomials for categorical features).  See DESIGN.md section 2 for why this
substitution preserves the paper's comparisons.
"""

from repro.datasets.base import NIDSDataset
from repro.datasets.loaders import available_datasets, load_dataset
from repro.datasets.preprocessing import MinMaxScaler, OneHotEncoder, Preprocessor, StandardScaler
from repro.datasets.schema import ClassSpec, DatasetSchema, FeatureSpec
from repro.datasets.synthetic import (
    GENERATION_PRESETS,
    GenerationConfig,
    SyntheticFlowGenerator,
)

__all__ = [
    "NIDSDataset",
    "DatasetSchema",
    "FeatureSpec",
    "ClassSpec",
    "GENERATION_PRESETS",
    "GenerationConfig",
    "SyntheticFlowGenerator",
    "Preprocessor",
    "MinMaxScaler",
    "StandardScaler",
    "OneHotEncoder",
    "load_dataset",
    "available_datasets",
]
