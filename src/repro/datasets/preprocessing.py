"""Feature preprocessing: scaling and categorical encoding.

The real NIDS datasets mix numeric flow statistics with categorical protocol
fields.  The preprocessing mirrors standard practice for these datasets:
categorical features are one-hot encoded and numeric features are scaled to
``[0, 1]`` (min-max) or standardized, with all statistics fitted on the
training split only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, NotFittedError

_EPS = 1e-12


class MinMaxScaler:
    """Scale each column to ``[0, 1]`` using training-split minima and maxima."""

    def __init__(self) -> None:
        self.min_: Optional[np.ndarray] = None
        self.max_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "MinMaxScaler":
        """Record per-column minima and maxima."""
        X = np.asarray(X, dtype=np.float64)
        self.min_ = X.min(axis=0)
        self.max_ = X.max(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the recorded scaling; constant columns map to 0."""
        if self.min_ is None:
            raise NotFittedError("MinMaxScaler.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        span = np.where(self.max_ - self.min_ < _EPS, 1.0, self.max_ - self.min_)
        return np.clip((X - self.min_) / span, 0.0, 1.0)

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)


class StandardScaler:
    """Standardize each column to zero mean and unit variance."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Record per-column means and standard deviations."""
        X = np.asarray(X, dtype=np.float64)
        self.mean_ = X.mean(axis=0)
        self.std_ = X.std(axis=0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Apply the recorded standardization; constant columns map to 0."""
        if self.mean_ is None:
            raise NotFittedError("StandardScaler.transform called before fit")
        X = np.asarray(X, dtype=np.float64)
        std = np.where(self.std_ < _EPS, 1.0, self.std_)
        return (X - self.mean_) / std

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit then transform in one call."""
        return self.fit(X).transform(X)


class OneHotEncoder:
    """One-hot encode integer-coded categorical columns.

    The encoder is fitted with the *known* number of categories per column
    (taken from the dataset schema), so unseen test-time categories cannot
    silently change the output width.
    """

    def __init__(self, n_categories: Sequence[int]):
        if any(n < 2 for n in n_categories):
            raise ConfigurationError("every categorical column needs >= 2 categories")
        self.n_categories = tuple(int(n) for n in n_categories)

    @property
    def n_output_columns(self) -> int:
        """Total number of one-hot output columns."""
        return int(sum(self.n_categories))

    def transform(self, X_cat: np.ndarray) -> np.ndarray:
        """Encode an ``(n, n_cat_columns)`` integer matrix into one-hot columns."""
        X_cat = np.asarray(X_cat, dtype=np.int64)
        if X_cat.ndim != 2 or X_cat.shape[1] != len(self.n_categories):
            raise ConfigurationError(
                f"expected {len(self.n_categories)} categorical columns, got shape {X_cat.shape}"
            )
        pieces = []
        for col, n_cat in enumerate(self.n_categories):
            values = X_cat[:, col]
            if values.min() < 0 or values.max() >= n_cat:
                raise ConfigurationError(
                    f"categorical column {col} has values outside [0, {n_cat})"
                )
            block = np.zeros((X_cat.shape[0], n_cat))
            block[np.arange(X_cat.shape[0]), values] = 1.0
            pieces.append(block)
        return np.hstack(pieces)


class Preprocessor:
    """Combined numeric-scaling + categorical-one-hot preprocessing pipeline.

    Parameters
    ----------
    n_categories:
        Number of categories for each categorical column (empty for purely
        numeric datasets).
    numeric_scaling:
        ``"minmax"`` (default; matches the ``[0, 1]`` range expected by the
        level-ID encoder) or ``"standard"``.
    """

    def __init__(self, n_categories: Sequence[int] = (), numeric_scaling: str = "minmax"):
        if numeric_scaling not in ("minmax", "standard"):
            raise ConfigurationError("numeric_scaling must be 'minmax' or 'standard'")
        self._onehot = OneHotEncoder(n_categories) if n_categories else None
        self._scaler = MinMaxScaler() if numeric_scaling == "minmax" else StandardScaler()
        self.numeric_scaling = numeric_scaling

    def fit(self, X_numeric: np.ndarray, X_categorical: Optional[np.ndarray] = None) -> "Preprocessor":
        """Fit the numeric scaler on the training split."""
        self._scaler.fit(X_numeric)
        return self

    def transform(
        self, X_numeric: np.ndarray, X_categorical: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Scale numerics, one-hot categoricals, and concatenate."""
        numeric = self._scaler.transform(X_numeric)
        if self._onehot is None:
            return numeric
        if X_categorical is None:
            raise ConfigurationError("this preprocessor was configured with categorical columns")
        return np.hstack([numeric, self._onehot.transform(X_categorical)])

    def fit_transform(
        self, X_numeric: np.ndarray, X_categorical: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Fit on and transform the same (training) split."""
        return self.fit(X_numeric, X_categorical).transform(X_numeric, X_categorical)

    def output_feature_names(
        self,
        numeric_names: Sequence[str],
        categorical_names: Sequence[str] = (),
        categories: Sequence[Sequence[str]] = (),
    ) -> List[str]:
        """Names of the output columns (one-hot columns become ``name=category``)."""
        names = list(numeric_names)
        if self._onehot is None:
            return names
        if len(categorical_names) != len(self._onehot.n_categories):
            raise ConfigurationError("categorical_names length mismatch")
        for col, cat_name in enumerate(categorical_names):
            cats = categories[col] if col < len(categories) else None
            for j in range(self._onehot.n_categories[col]):
                label = cats[j] if cats else str(j)
                names.append(f"{cat_name}={label}")
        return names
