"""CIC-IDS-2017 synthetic dataset (schema-faithful).

CIC-IDS-2017 (Sharafaldin et al., 2018) is built from five days of captured
traffic with attacks executed against a victim network.  Flows are described
by 78 numeric CICFlowMeter features; there are no categorical columns.  The
class taxonomy below keeps the eight most populous labels of the real dataset.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datasets.base import NIDSDataset
from repro.datasets.schema import ClassSpec, DatasetSchema, numeric_feature_specs
from repro.datasets.synthetic import GenerationConfig, SyntheticFlowGenerator
from repro.utils.rng import SeedLike

#: The 78 CICFlowMeter flow features used by CIC-IDS-2017.
NUMERIC_FEATURES: Tuple[str, ...] = (
    "destination_port",
    "flow_duration",
    "total_fwd_packets",
    "total_backward_packets",
    "total_length_of_fwd_packets",
    "total_length_of_bwd_packets",
    "fwd_packet_length_max",
    "fwd_packet_length_min",
    "fwd_packet_length_mean",
    "fwd_packet_length_std",
    "bwd_packet_length_max",
    "bwd_packet_length_min",
    "bwd_packet_length_mean",
    "bwd_packet_length_std",
    "flow_bytes_per_s",
    "flow_packets_per_s",
    "flow_iat_mean",
    "flow_iat_std",
    "flow_iat_max",
    "flow_iat_min",
    "fwd_iat_total",
    "fwd_iat_mean",
    "fwd_iat_std",
    "fwd_iat_max",
    "fwd_iat_min",
    "bwd_iat_total",
    "bwd_iat_mean",
    "bwd_iat_std",
    "bwd_iat_max",
    "bwd_iat_min",
    "fwd_psh_flags",
    "bwd_psh_flags",
    "fwd_urg_flags",
    "bwd_urg_flags",
    "fwd_header_length",
    "bwd_header_length",
    "fwd_packets_per_s",
    "bwd_packets_per_s",
    "min_packet_length",
    "max_packet_length",
    "packet_length_mean",
    "packet_length_std",
    "packet_length_variance",
    "fin_flag_count",
    "syn_flag_count",
    "rst_flag_count",
    "psh_flag_count",
    "ack_flag_count",
    "urg_flag_count",
    "cwe_flag_count",
    "ece_flag_count",
    "down_up_ratio",
    "average_packet_size",
    "avg_fwd_segment_size",
    "avg_bwd_segment_size",
    "fwd_avg_bytes_per_bulk",
    "fwd_avg_packets_per_bulk",
    "fwd_avg_bulk_rate",
    "bwd_avg_bytes_per_bulk",
    "bwd_avg_packets_per_bulk",
    "bwd_avg_bulk_rate",
    "subflow_fwd_packets",
    "subflow_fwd_bytes",
    "subflow_bwd_packets",
    "subflow_bwd_bytes",
    "init_win_bytes_forward",
    "init_win_bytes_backward",
    "act_data_pkt_fwd",
    "min_seg_size_forward",
    "active_mean",
    "active_std",
    "active_max",
    "active_min",
    "idle_mean",
    "idle_std",
    "idle_max",
    "idle_min",
    "fwd_seg_size_min",
)

#: Volume/timing features with heavy-tailed real-world distributions.
HEAVY_TAILED = (
    "flow_duration",
    "total_length_of_fwd_packets",
    "total_length_of_bwd_packets",
    "flow_bytes_per_s",
    "flow_packets_per_s",
    "flow_iat_mean",
    "flow_iat_max",
    "fwd_iat_total",
    "bwd_iat_total",
    "idle_mean",
    "idle_max",
    "active_mean",
)


def build_schema() -> DatasetSchema:
    """The CIC-IDS-2017 schema: 78 numeric features, 8 traffic classes."""
    features = numeric_feature_specs(NUMERIC_FEATURES, heavy_tailed=HEAVY_TAILED)
    classes = [
        ClassSpec("BENIGN", weight=0.68, is_attack=False),
        ClassSpec("DoS_Hulk", weight=0.12, separability=1.2),
        ClassSpec("PortScan", weight=0.08, separability=1.3),
        ClassSpec("DDoS", weight=0.06, separability=1.2),
        ClassSpec("DoS_GoldenEye", weight=0.02, separability=1.0),
        ClassSpec("FTP-Patator", weight=0.02, separability=0.95),
        ClassSpec("SSH-Patator", weight=0.015, separability=0.9),
        ClassSpec("Web_Attack_Brute_Force", weight=0.005, separability=0.7),
    ]
    return DatasetSchema(
        name="cic_ids_2017",
        features=tuple(features),
        classes=tuple(classes),
        description="CIC-IDS-2017: CICFlowMeter flow statistics (78 features, 8 classes)",
    )


def generate(
    n_train: int = 8000,
    n_test: int = 2000,
    seed: SeedLike = 2,
    config: Optional[GenerationConfig] = None,
) -> NIDSDataset:
    """Generate a synthetic CIC-IDS-2017 train/test split."""
    if config is None:
        config = GenerationConfig(separability=3.1, label_noise=0.02)
    generator = SyntheticFlowGenerator(build_schema(), config=config, seed=seed)
    return generator.generate(n_train, n_test)
