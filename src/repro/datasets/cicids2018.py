"""CSE-CIC-IDS-2018 synthetic dataset (schema-faithful).

CSE-CIC-IDS-2018 scales the 2017 collection methodology up to a 500-machine
AWS topology.  Flows use the same CICFlowMeter feature family (79 features in
the distributed CSVs, including ``protocol``) and a class taxonomy dominated
by volumetric attacks (HOIC/LOIC DDoS, Hulk) plus brute-force, bot and
infiltration traffic.  Infiltration is known to be extremely hard to separate
from benign traffic, which its low separability multiplier reflects.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.datasets.base import NIDSDataset
from repro.datasets.cicids2017 import HEAVY_TAILED as _HEAVY_TAILED_2017
from repro.datasets.cicids2017 import NUMERIC_FEATURES as _FEATURES_2017
from repro.datasets.schema import ClassSpec, DatasetSchema, numeric_feature_specs
from repro.datasets.synthetic import GenerationConfig, SyntheticFlowGenerator
from repro.utils.rng import SeedLike

#: CIC-IDS-2018 reuses the CICFlowMeter feature family plus a protocol column.
NUMERIC_FEATURES: Tuple[str, ...] = ("protocol",) + _FEATURES_2017

HEAVY_TAILED = _HEAVY_TAILED_2017


def build_schema() -> DatasetSchema:
    """The CSE-CIC-IDS-2018 schema: 79 numeric features, 8 traffic classes."""
    features = numeric_feature_specs(NUMERIC_FEATURES, heavy_tailed=HEAVY_TAILED)
    classes = [
        ClassSpec("Benign", weight=0.72, is_attack=False),
        ClassSpec("DDOS_attack-HOIC", weight=0.10, separability=1.3),
        ClassSpec("DoS_attacks-Hulk", weight=0.07, separability=1.2),
        ClassSpec("Bot", weight=0.04, separability=0.9),
        ClassSpec("FTP-BruteForce", weight=0.03, separability=1.0),
        ClassSpec("SSH-Bruteforce", weight=0.025, separability=0.95),
        ClassSpec("Infilteration", weight=0.01, separability=0.55),
        ClassSpec("DDOS_attack-LOIC-UDP", weight=0.005, separability=1.1),
    ]
    return DatasetSchema(
        name="cic_ids_2018",
        features=tuple(features),
        classes=tuple(classes),
        description="CSE-CIC-IDS-2018: AWS-scale CICFlowMeter flows (79 features, 8 classes)",
    )


def generate(
    n_train: int = 8000,
    n_test: int = 2000,
    seed: SeedLike = 3,
    config: Optional[GenerationConfig] = None,
) -> NIDSDataset:
    """Generate a synthetic CSE-CIC-IDS-2018 train/test split."""
    if config is None:
        config = GenerationConfig(separability=3.0, label_noise=0.02)
    generator = SyntheticFlowGenerator(build_schema(), config=config, seed=seed)
    return generator.generate(n_train, n_test)
