"""NSL-KDD synthetic dataset (schema-faithful).

NSL-KDD (Tavallaee et al., 2009) is the cleaned successor of KDD Cup 99.  Each
record has 41 features (38 numeric + 3 categorical: ``protocol_type``,
``service``, ``flag``) and is labeled normal or one of four attack families:
DoS, Probe, R2L (remote-to-local) and U2R (user-to-root).  U2R and R2L are
rare and notoriously hard to detect, which the class weights and separability
multipliers below reflect.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.base import NIDSDataset
from repro.datasets.schema import ClassSpec, DatasetSchema, FeatureSpec, numeric_feature_specs
from repro.datasets.synthetic import GenerationConfig, SyntheticFlowGenerator
from repro.utils.rng import SeedLike

#: Numeric features of an NSL-KDD record (38 of the 41 features).
NUMERIC_FEATURES = (
    "duration",
    "src_bytes",
    "dst_bytes",
    "land",
    "wrong_fragment",
    "urgent",
    "hot",
    "num_failed_logins",
    "logged_in",
    "num_compromised",
    "root_shell",
    "su_attempted",
    "num_root",
    "num_file_creations",
    "num_shells",
    "num_access_files",
    "num_outbound_cmds",
    "is_host_login",
    "is_guest_login",
    "count",
    "srv_count",
    "serror_rate",
    "srv_serror_rate",
    "rerror_rate",
    "srv_rerror_rate",
    "same_srv_rate",
    "diff_srv_rate",
    "srv_diff_host_rate",
    "dst_host_count",
    "dst_host_srv_count",
    "dst_host_same_srv_rate",
    "dst_host_diff_srv_rate",
    "dst_host_same_src_port_rate",
    "dst_host_srv_diff_host_rate",
    "dst_host_serror_rate",
    "dst_host_srv_serror_rate",
    "dst_host_rerror_rate",
    "dst_host_srv_rerror_rate",
)

#: Features with log-normal (heavy-tailed) distributions in real traffic.
HEAVY_TAILED = ("duration", "src_bytes", "dst_bytes", "count", "srv_count")

#: protocol_type categories.
PROTOCOLS = ("tcp", "udp", "icmp")

#: A representative subset of the 70 service values in the real dataset.
SERVICES = (
    "http",
    "smtp",
    "ftp",
    "ftp_data",
    "telnet",
    "ssh",
    "dns",
    "domain_u",
    "pop_3",
    "imap4",
    "finger",
    "auth",
    "irc",
    "eco_i",
    "ecr_i",
    "private",
    "other",
)

#: TCP connection status flags.
FLAGS = ("SF", "S0", "REJ", "RSTR", "RSTO", "SH", "S1", "S2", "S3", "OTH", "RSTOS0")


def build_schema() -> DatasetSchema:
    """The NSL-KDD schema: 41 features, 5 traffic classes."""
    features = [
        *numeric_feature_specs(NUMERIC_FEATURES, heavy_tailed=HEAVY_TAILED),
        FeatureSpec("protocol_type", kind="categorical", categories=PROTOCOLS),
        FeatureSpec("service", kind="categorical", categories=SERVICES),
        FeatureSpec("flag", kind="categorical", categories=FLAGS),
    ]
    classes = [
        ClassSpec("normal", weight=0.52, is_attack=False),
        ClassSpec("dos", weight=0.35, separability=1.2),
        ClassSpec("probe", weight=0.09, separability=1.0),
        ClassSpec("r2l", weight=0.035, separability=0.7),
        ClassSpec("u2r", weight=0.005, separability=0.55),
    ]
    return DatasetSchema(
        name="nsl_kdd",
        features=tuple(features),
        classes=tuple(classes),
        description="NSL-KDD: cleaned KDD Cup 99 connection records (41 features, 5 classes)",
    )


def generate(
    n_train: int = 8000,
    n_test: int = 2000,
    seed: SeedLike = 0,
    config: Optional[GenerationConfig] = None,
) -> NIDSDataset:
    """Generate a synthetic NSL-KDD train/test split."""
    if config is None:
        config = GenerationConfig(separability=3.2, label_noise=0.01)
    generator = SyntheticFlowGenerator(build_schema(), config=config, seed=seed)
    return generator.generate(n_train, n_test)
