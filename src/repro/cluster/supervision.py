"""Cluster supervision: heartbeats, the in-flight batch ledger, retry policy.

PR 5 proved the *model* half of the paper's robustness claim (recall stays
flat through serving-time bit flips); this module is the *process* half.  A
worker death used to be fatal -- the coordinator raised and SIGKILLed the
whole cluster, losing every in-flight batch.  Supervision turns it into a
measured, recoverable event built from three pieces:

* **Heartbeats** -- every worker stamps a wall-clock liveness slot in a
  shared array on each message-loop iteration (including idle polls and
  after each processed batch).  A :class:`Watchdog` thread on the
  coordinator scans the slots: a dead process is a *crash*, a live process
  with a stale heartbeat is a *hang* (the watchdog SIGKILLs it so both
  failure modes converge to "dead, needs respawn").
* **The batch ledger** (:class:`BatchLedger`) -- every dispatched
  :class:`~repro.cluster.worker.PacketBatch` is retained until the worker
  acks it in its report stream *and* no still-open flow needs it.  Workers
  ship a per-batch ack carrying a **watermark**: the lowest dispatch index
  that still contributes packets to a flow open in their flow table.
  Retaining down to the watermark is what makes recovery *flow-exact*: a
  respawned worker replays every packet of every flow that had not been
  classified yet, so re-assembled flows are bit-identical to uninterrupted
  assembly (at-least-once redispatch; already-classified flows that ride
  along are deduplicated by the coordinator).
* **The retry policy** (:class:`RetryPolicy`) -- how long a heartbeat may
  go stale, how many times a worker slot is respawned, and what happens
  when respawns are exhausted: shed that shard's load with drop accounting
  (the default -- degrade, don't abort), fail over its keyspace to the
  surviving shards, or fail fast with the unacked seqs named.

``docs/robustness.md`` ("Process faults and chaos testing") documents the
fault matrix and the recovery guarantees; :mod:`repro.cluster.chaos` is the
scripted fault injector that proves them.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How the coordinator detects and recovers from worker failure.

    Attributes
    ----------
    heartbeat_interval:
        Worker stamp cadence: the inbox poll timeout, so an *idle* worker
        still stamps at this rate.  A busy worker stamps around every
        processed batch.
    heartbeat_timeout:
        Heartbeat age beyond which a live worker is declared hung and
        SIGKILLed.  Must exceed the worst-case single-batch processing
        time, or healthy-but-slow workers get shot.
    check_interval:
        Watchdog scan cadence (the detection-latency bound for crashes).
    max_respawns:
        Respawn budget *per worker slot*.  ``0`` disables respawning:
        the first failure goes straight to the exhaustion behaviour.
    respawn_backoff:
        Base seconds slept before a respawn; doubles per attempt on the
        same slot (a crash-looping replica should not spin the host).
    max_retained_batches:
        Ledger retention bound per worker.  A pathological flow that never
        closes would otherwise pin the whole stream in memory; beyond the
        bound the oldest batch is evicted (counted -- evicted batches are
        no longer replayable, so a crash loses their open-flow packets).
    shed_when_exhausted:
        When the respawn budget is spent: ``True`` sheds the dead shard's
        load through drop accounting and keeps serving the survivors;
        ``False`` (with ``failover`` also off) raises -- the pre-supervision
        fail-fast behaviour, with the unacked seqs named.
    failover:
        Re-home an exhausted shard's keyspace onto the surviving workers
        (``ShardRouter.excluding``).  Requires the cluster to run without
        shard guards (the coordinator arranges that at start): mid-life
        flows of the dead shard restart their statistics on the new owner,
        so this trades per-flow fidelity for coverage.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 10.0
    check_interval: float = 0.1
    max_respawns: int = 2
    respawn_backoff: float = 0.05
    max_retained_batches: int = 1024
    shed_when_exhausted: bool = True
    failover: bool = False

    def validate(self) -> "RetryPolicy":
        """Check parameter ranges and return ``self``."""
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_interval"
            )
        if self.check_interval <= 0:
            raise ConfigurationError("check_interval must be positive")
        if self.max_respawns < 0:
            raise ConfigurationError("max_respawns must be non-negative")
        if self.respawn_backoff < 0:
            raise ConfigurationError("respawn_backoff must be non-negative")
        if self.max_retained_batches < 1:
            raise ConfigurationError("max_retained_batches must be >= 1")
        return self


@dataclass
class WorkerFailure:
    """One detected failure of one worker incarnation."""

    worker_id: int
    #: ``"crash"`` (process died) or ``"hang"`` (stale heartbeat; the
    #: watchdog SIGKILLed it).
    kind: str
    #: The incarnation the failure belongs to; recovery for a stale
    #: incarnation (already respawned) is a no-op.
    incarnation: int
    detected_at: float
    exitcode: Optional[int] = None
    heartbeat_age: float = 0.0


@dataclass
class FailureRecord:
    """A failure plus what recovery did about it (the report-side view)."""

    worker_id: int
    kind: str
    incarnation: int
    detected_at: float
    exitcode: Optional[int] = None
    heartbeat_age: float = 0.0
    recovered_at: Optional[float] = None
    respawned: bool = False
    shed: bool = False
    failed_over: bool = False
    redispatched_batches: int = 0
    redispatched_packets: int = 0
    #: What the dead incarnation had acked before it died (its summary died
    #: with it; these tallies are the surviving evidence of its work).
    acked_packets: int = 0
    acked_flows: int = 0
    acked_alerts: int = 0
    #: Data-ring slots the dead incarnation left occupied (committed but
    #: never released); reclaimed when its ring is torn down at respawn/shed.
    reclaimed_slots: int = 0

    @property
    def recovery_seconds(self) -> Optional[float]:
        """Detection-to-recovery latency (None when never recovered)."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.detected_at

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "worker_id": self.worker_id,
            "kind": self.kind,
            "incarnation": self.incarnation,
            "detected_at": self.detected_at,
            "exitcode": self.exitcode,
            "heartbeat_age": self.heartbeat_age,
            "recovered_at": self.recovered_at,
            "recovery_seconds": self.recovery_seconds,
            "respawned": self.respawned,
            "shed": self.shed,
            "failed_over": self.failed_over,
            "redispatched_batches": self.redispatched_batches,
            "redispatched_packets": self.redispatched_packets,
            "acked_packets": self.acked_packets,
            "acked_flows": self.acked_flows,
            "acked_alerts": self.acked_alerts,
            "reclaimed_slots": self.reclaimed_slots,
        }


@dataclass
class RecoveryStats:
    """Aggregate recovery accounting for one cluster run."""

    failures: List[FailureRecord] = field(default_factory=list)
    #: Captured predictions whose flow token had already been recorded
    #: (at-least-once redispatch re-scores flows that were classified just
    #: before the crash; the coordinator keeps the first record).
    duplicates_suppressed: int = 0
    #: Ledger evictions forced by ``max_retained_batches``.
    ledger_evictions: int = 0
    shed_batches: int = 0
    shed_packets: int = 0
    #: Sync rounds that proceeded without every worker's delta.
    quorum_rounds: int = 0

    @property
    def total_respawns(self) -> int:
        """Respawns performed across all workers."""
        return sum(1 for f in self.failures if f.respawned)

    @property
    def total_redispatched_batches(self) -> int:
        """Batches re-enqueued after failures."""
        return sum(f.redispatched_batches for f in self.failures)

    @property
    def total_redispatched_packets(self) -> int:
        """Packets re-enqueued after failures."""
        return sum(f.redispatched_packets for f in self.failures)

    @property
    def unrecovered_batches(self) -> int:
        """Batches lost to load shedding (recovery exhausted, no failover)."""
        return self.shed_batches

    @property
    def max_recovery_seconds(self) -> float:
        """Worst detection-to-recovery latency (0 when nothing recovered)."""
        latencies = [
            f.recovery_seconds for f in self.failures if f.recovery_seconds is not None
        ]
        return max(latencies) if latencies else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "failures": [f.to_dict() for f in self.failures],
            "total_respawns": self.total_respawns,
            "total_redispatched_batches": self.total_redispatched_batches,
            "total_redispatched_packets": self.total_redispatched_packets,
            "duplicates_suppressed": self.duplicates_suppressed,
            "ledger_evictions": self.ledger_evictions,
            "shed_batches": self.shed_batches,
            "shed_packets": self.shed_packets,
            "unrecovered_batches": self.unrecovered_batches,
            "quorum_rounds": self.quorum_rounds,
            "max_recovery_seconds": self.max_recovery_seconds,
        }


class BatchLedger:
    """Coordinator-side record of every batch a worker still owes.

    Batches are indexed per worker *incarnation* in dispatch order (queue
    FIFO makes the worker process them in exactly that order).  An entry is
    retained until **both** hold:

    * the worker acked it (its index is below the acked count), and
    * no open flow needs it (its index is below the acked **watermark**:
      the minimum first-batch index over the worker's still-active flows).

    On a crash, :meth:`replayable` is therefore exactly the set of batches
    the respawned worker must re-serve for flow-exact recovery, and
    :meth:`unacked` is the strict subset the dead worker never finished --
    the at-least-once obligation.
    """

    def __init__(self, n_workers: int, max_retained: int = 1024):
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if max_retained < 1:
            raise ConfigurationError("max_retained must be >= 1")
        self.max_retained = int(max_retained)
        self._entries: List[Deque[Tuple[int, Any]]] = [
            deque() for _ in range(n_workers)
        ]
        self._dispatched = [0] * n_workers
        self._acked = [0] * n_workers
        self._watermark = [0] * n_workers
        self.evictions = 0

    # ------------------------------------------------------------------- API
    def record_dispatch(self, worker_id: int, batch: Any) -> int:
        """Track one dispatched batch; returns its per-incarnation index."""
        index = self._dispatched[worker_id]
        self._dispatched[worker_id] += 1
        entries = self._entries[worker_id]
        entries.append((index, batch))
        while len(entries) > self.max_retained:
            entries.popleft()
            self.evictions += 1
        return index

    def record_ack(self, worker_id: int, index: int, watermark: int) -> None:
        """Apply one worker ack: advance the acked count, prune to watermark."""
        self._acked[worker_id] = max(self._acked[worker_id], index + 1)
        self._watermark[worker_id] = max(self._watermark[worker_id], watermark)
        entries = self._entries[worker_id]
        while entries and entries[0][0] < self._watermark[worker_id]:
            entries.popleft()

    def replayable(self, worker_id: int) -> List[Tuple[int, Any]]:
        """Every retained ``(index, batch)`` -- the flow-exact replay set."""
        return list(self._entries[worker_id])

    def unacked(self, worker_id: int) -> List[Tuple[int, Any]]:
        """Retained batches the worker never acked."""
        acked = self._acked[worker_id]
        return [(i, b) for i, b in self._entries[worker_id] if i >= acked]

    def unacked_seqs(self, worker_id: int) -> List[int]:
        """Global dispatch seqs of the unacked batches (for diagnostics)."""
        return [batch.seq for _, batch in self.unacked(worker_id)]

    def dispatched(self, worker_id: int) -> int:
        """Batches dispatched to the current incarnation."""
        return self._dispatched[worker_id]

    def acked(self, worker_id: int) -> int:
        """Batches the current incarnation has acked."""
        return self._acked[worker_id]

    def outstanding(self, worker_id: int) -> int:
        """Dispatched-but-unacked batch count."""
        return self._dispatched[worker_id] - self._acked[worker_id]

    def reset(self, worker_id: int, batches: List[Any]) -> None:
        """Start a fresh incarnation's ledger seeded with ``batches``.

        The batches are re-indexed from 0 in order -- the respawned worker
        sees them as its first dispatches.
        """
        self._entries[worker_id] = deque(enumerate(batches))
        self._dispatched[worker_id] = len(batches)
        self._acked[worker_id] = 0
        self._watermark[worker_id] = 0

    def clear(self, worker_id: int) -> List[Any]:
        """Drop and return every retained batch (the shed path)."""
        batches = [batch for _, batch in self._entries[worker_id]]
        self._entries[worker_id] = deque()
        self._acked[worker_id] = self._dispatched[worker_id]
        return batches


class Watchdog:
    """Coordinator-side failure detector running on its own thread.

    The watchdog only *detects*: it scans worker processes and heartbeat
    slots every ``policy.check_interval`` seconds, records one
    :class:`WorkerFailure` per (worker, incarnation), and SIGKILLs hung
    workers so both failure kinds converge to "dead".  Recovery (respawn,
    redispatch, shed) stays on the coordinator thread, which drains
    :meth:`take_failures` at its dispatch/collect safe points -- a single
    mutator for queues and the ledger.

    ``snapshot`` is a coordinator-provided callable returning the current
    ``(worker_id, incarnation, process, expected_exit, heartbeat)`` rows
    under the coordinator's lock, so the watchdog never reads torn state
    mid-respawn.
    """

    def __init__(
        self,
        snapshot: Callable[[], List[Tuple[int, int, Any, bool, float]]],
        policy: RetryPolicy,
        clock: Callable[[], float] = time.time,
    ):
        self._snapshot = snapshot
        self.policy = policy
        self._clock = clock
        self._failures: List[WorkerFailure] = []
        self._flagged: set = set()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------- API
    def start(self) -> None:
        """Launch the scan thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the scan thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def scan_once(self) -> None:
        """One detection pass (also called inline by coordinator checks)."""
        now = self._clock()
        for worker_id, incarnation, process, expected_exit, stamp in self._snapshot():
            key = (worker_id, incarnation)
            with self._lock:
                if key in self._flagged:
                    continue
            failure: Optional[WorkerFailure] = None
            if not process.is_alive():
                # Any not-alive worker is dead no matter the exit code: a
                # clean-but-premature exit (code 0) still owes messages, and
                # waiting for them would spin forever.  Expected exits
                # (Stop was delivered) are the coordinator's to verify
                # against the report it is draining.
                if not expected_exit:
                    failure = WorkerFailure(
                        worker_id=worker_id,
                        kind="crash",
                        incarnation=incarnation,
                        detected_at=now,
                        exitcode=process.exitcode,
                    )
            else:
                age = now - stamp
                if age > self.policy.heartbeat_timeout:
                    # A hung worker cannot be reasoned with (it ignores
                    # SIGTERM by design); killing it converts the hang into
                    # a crash the recovery machinery already handles.
                    process.kill()
                    failure = WorkerFailure(
                        worker_id=worker_id,
                        kind="hang",
                        incarnation=incarnation,
                        detected_at=now,
                        exitcode=process.exitcode,
                        heartbeat_age=age,
                    )
            if failure is not None:
                with self._lock:
                    if key not in self._flagged:
                        self._flagged.add(key)
                        self._failures.append(failure)

    def take_failures(self) -> List[WorkerFailure]:
        """Drain the detected-failure queue (coordinator safe points)."""
        with self._lock:
            failures, self._failures = self._failures, []
        return failures

    # ------------------------------------------------------------- internals
    def _run(self) -> None:
        while not self._stop.wait(self.policy.check_interval):
            try:
                self.scan_once()
            except Exception:  # pragma: no cover - detector must never die
                pass


__all__ = [
    "BatchLedger",
    "FailureRecord",
    "RecoveryStats",
    "RetryPolicy",
    "Watchdog",
    "WorkerFailure",
]
