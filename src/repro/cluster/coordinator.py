"""Cluster coordinator: sharded dispatch, delta merging, self-healing supervision.

The coordinator owns the cluster:

* it publishes the trained pipeline's tensors in shared memory
  (:mod:`repro.cluster.shared_model`) and spawns N worker processes, each a
  full serving replica;
* it routes every packet to the worker owning its flow's shard
  (:class:`repro.cluster.router.ShardRouter`) and dispatches bounded
  micro-batches as columnar frames over per-worker shared-memory ring
  buffers (:mod:`repro.cluster.ring`) -- written once, read in place, no
  pickle on the data plane;
* on a **sync round** it collects each worker's class-vector delta (the
  ``partial_fit`` updates accumulated against the round-start model), merges
  them additively through :func:`repro.hdc.backend.merge_class_deltas` --
  with row-granular cached-norm invalidation -- republishes the merged
  matrix, and lets every replica rebase.  Because HDC class vectors are sums
  of weighted sample hypervectors, this merge is *exact*: the published model
  equals single-process ``partial_fit`` of every shard's stream applied
  against the round-start state (see ``docs/cluster.md``);
* it **supervises** the workers (:mod:`repro.cluster.supervision`): a
  watchdog thread detects crashes and hangs from process liveness plus a
  shared heartbeat array, a batch ledger retains every dispatched batch
  until the worker's ack watermark releases it, and a
  :class:`~repro.cluster.supervision.RetryPolicy` drives recovery -- respawn
  against the still-live shm publication, flow-exact redispatch of the dead
  worker's retained batches, quorum-tolerant sync rounds, and load shedding
  (or ring failover) once the respawn budget is spent.  See
  ``docs/robustness.md`` ("Process faults and chaos testing").

With data and control on separate channels (rings vs a small control
queue), the old queue-FIFO consistent cut is replaced by a **barrier
protocol**: every ``SyncRequest``/``Stop`` carries the worker's dispatch
count at send time, the worker drains its data ring to that barrier before
acting, and ring consumption stays frozen between a sync reply and its
``Rebase`` -- a round is therefore still a consistent cut of the stream.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from repro.cluster.ring import (
    ACK_HEADER,
    PRED_DTYPE,
    AckSlotLayout,
    FrameSlotLayout,
    PacketFrame,
    ShmRing,
    TransportSpec,
    TransportStats,
    decode_ack,
    encode_frame,
    ring_name,
    transport_token,
)
from repro.cluster.router import ShardRouter
from repro.cluster.shared_model import ModelPublication
from repro.cluster.supervision import (
    BatchLedger,
    FailureRecord,
    RecoveryStats,
    RetryPolicy,
    Watchdog,
    WorkerFailure,
)
from repro.cluster.worker import (
    BatchAck,
    DeltaReport,
    FinalReport,
    PacketBatch,
    Rebase,
    Stop,
    SyncRequest,
    WorkerConfig,
    WorkerSummary,
    cluster_worker_main,
)
from repro.exceptions import ConfigurationError
from repro.hdc.backend import merge_class_deltas
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline
from repro.serving.backpressure import BackpressureStats
from repro.serving.shutdown import GracefulShutdown, chunked


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment knobs of a serving cluster.

    Attributes
    ----------
    n_workers:
        Worker processes (shards).
    batch_size:
        Packets per dispatched batch (the cluster's micro-batch unit).
    sync_interval:
        Approximate batches *per worker* between delta-merge syncs when
        online learning is on (``0`` merges only at shutdown).
    online:
        Enable distributed online learning (per-worker ``partial_fit`` +
        additive delta merging).
    idle_timeout:
        Flow-table idle timeout inside each worker.
    queue_capacity:
        Slots per worker data/result ring, in batches (the in-flight
        bound); a full ring blocks the coordinator (producer-pays
        backpressure, as in the single-process engine's ``block`` policy),
        counted as ``ring_full_stalls`` on the transport stats.
    vnodes:
        Virtual nodes per worker on the router's hash ring.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` when the
        platform offers it (fastest replica bootstrap) and ``spawn``
        otherwise.
    capture_predictions:
        Ship every served flow's :class:`~repro.serving.FlowPrediction`
        back in the workers' report streams (collected, deduplicated by
        flow token, on :attr:`ClusterReport.flow_predictions`).  This is the
        evidence the golden-trace differential harness compares against
        offline batch predictions; it costs memory proportional to the
        served flow count, so leave it off for open-ended serving.
    retry:
        The supervision :class:`RetryPolicy`.  ``None`` means supervision
        with default parameters -- worker failure is always *detected*;
        ``RetryPolicy(max_respawns=0, shed_when_exhausted=False)`` restores
        the old fail-fast behaviour (first failure raises, naming the
        unacked batch seqs).
    fabric_spec:
        Multi-tenant fabric attach table (:class:`repro.fabric.registry.
        RegistrySpec`).  When set (together with ``tenant_keyer``), the
        coordinator stamps each dispatched frame's tenant column and every
        worker serves flows through per-tenant model lanes; worker respawn
        re-ships the same config, so the replacement incarnation reattaches
        the tenant table automatically.  Typed ``Any``: the cluster package
        never imports the fabric (the fabric builds on the cluster).
    tenant_keyer:
        The flow -> tenant keying function (:class:`repro.fabric.router.
        TenantKeyer`), evaluated once per unique flow at dispatch.
    """

    n_workers: int = 4
    batch_size: int = 512
    sync_interval: int = 8
    online: bool = False
    idle_timeout: float = 5.0
    queue_capacity: int = 64
    vnodes: int = 64
    start_method: Optional[str] = None
    capture_predictions: bool = False
    retry: Optional[RetryPolicy] = None
    fabric_spec: Optional[Any] = None
    tenant_keyer: Optional[Any] = None

    def validate(self) -> "ClusterConfig":
        """Check parameter ranges and return ``self``."""
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.sync_interval < 0:
            raise ConfigurationError("sync_interval must be non-negative")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        if self.fabric_spec is not None and self.online:
            raise ConfigurationError(
                "cluster fabric mode serves per-tenant models; cluster-wide "
                "online learning does not compose with it (use the "
                "FabricEngine's tenant-scoped learning instead)"
            )
        if (self.fabric_spec is None) != (self.tenant_keyer is None):
            raise ConfigurationError(
                "fabric_spec and tenant_keyer come as a pair: the spec "
                "without keying leaves every frame untenanted, and keying "
                "without the spec gives workers no models to route to"
            )
        if self.retry is not None:
            self.retry.validate()
        return self


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster serving run."""

    workers: List[WorkerSummary]
    wall_seconds: float
    sync_rounds: int
    generation: int
    interrupted: bool = False
    #: CPU seconds the coordinator spent routing/dispatching/merging.  The
    #: router is the cluster's other scarce resource: aggregate worker
    #: capacity only materializes while one core can route packets at least
    #: as fast as the shards drain them.
    coordinator_cpu_seconds: float = 0.0
    #: Per-flow serving outcomes across all shards (only populated when
    #: ``ClusterConfig.capture_predictions`` is on).  Deduplicated by flow
    #: token: at-least-once redispatch can re-score a flow that was already
    #: classified just before a crash, and the first record wins.
    flow_predictions: Optional[List] = None
    #: Supervision outcome: detected failures, respawns, redispatch and
    #: shed accounting (always present after a supervised run).
    recovery: RecoveryStats = field(default_factory=RecoveryStats)
    #: Drop accounting of the shed path (``BoundedQueue``-style counters);
    #: ``None`` when nothing was shed.
    shed_stats: Optional[Dict[str, Any]] = None
    #: Ring-transport accounting (bytes moved, copies avoided, backpressure
    #: stalls, reclaimed slots, serialize CPU); see
    #: :class:`~repro.cluster.ring.TransportStats`.
    transport: Optional[Dict[str, Any]] = None
    #: CPU seconds inside ``ShardRouter.partition_packets`` alone -- the
    #: routing share of ``coordinator_cpu_seconds``.
    routing_cpu_seconds: float = 0.0

    # ------------------------------------------------------------ aggregates
    @property
    def total_packets(self) -> int:
        """Packets ingested across all workers."""
        return sum(w.packets for w in self.workers)

    @property
    def total_flows(self) -> int:
        """Flows served across all workers."""
        return sum(w.flows for w in self.workers)

    @property
    def total_alerts(self) -> int:
        """Alerts raised across all workers."""
        return sum(w.alerts for w in self.workers)

    @property
    def aggregate_flow_throughput(self) -> float:
        """Sum of per-replica sustained rates (flows per busy *CPU* second).

        This is the cluster's *capacity*: what the shards deliver together
        when each has a core to itself (per-core CPU seconds equal wall
        seconds exactly then).  On a host with fewer cores than workers the
        wall-clock rate (``total_flows / wall_seconds``) is the lower,
        contended number; benchmark records carry both plus the host CPU
        count so the two are never conflated.
        """
        return sum(w.flow_throughput for w in self.workers)

    @property
    def aggregate_packet_throughput(self) -> float:
        """Sum of per-replica packet ingest rates."""
        return sum(w.packet_throughput for w in self.workers)

    @property
    def wall_flow_throughput(self) -> float:
        """Flows per wall-clock second for the whole run."""
        return self.total_flows / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def routing_packets_per_cpu_second(self) -> float:
        """Packets the coordinator routes per CPU second (the fan-out bound)."""
        if self.coordinator_cpu_seconds <= 0:
            return 0.0
        return self.total_packets / self.coordinator_cpu_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "workers": [w.to_dict() for w in self.workers],
            "wall_seconds": self.wall_seconds,
            "sync_rounds": self.sync_rounds,
            "generation": self.generation,
            "interrupted": self.interrupted,
            "total_packets": self.total_packets,
            "total_flows": self.total_flows,
            "total_alerts": self.total_alerts,
            "aggregate_flows_per_second": self.aggregate_flow_throughput,
            "aggregate_packets_per_second": self.aggregate_packet_throughput,
            "wall_flows_per_second": self.wall_flow_throughput,
            "coordinator_cpu_seconds": self.coordinator_cpu_seconds,
            "routing_packets_per_cpu_second": self.routing_packets_per_cpu_second,
            "n_flow_predictions": (
                len(self.flow_predictions) if self.flow_predictions is not None else 0
            ),
            "recovery": self.recovery.to_dict(),
            "shed_stats": self.shed_stats,
            "transport": self.transport,
            "routing_cpu_seconds": self.routing_cpu_seconds,
        }


class ClusterCoordinator:
    """Runs a trained pipeline as a sharded multi-process serving cluster.

    Parameters
    ----------
    pipeline:
        A trained :class:`DetectionPipeline`; its classifier state is
        published to the workers and, after :meth:`shutdown`, updated in
        place with the cluster-adapted merged model (so ``save_pipeline``
        on it persists what the cluster learned).
    config:
        A :class:`ClusterConfig`.
    """

    def __init__(self, pipeline: DetectionPipeline, config: Optional[ClusterConfig] = None):
        self.pipeline = pipeline
        self.config = (config or ClusterConfig()).validate()
        self.policy = (self.config.retry or RetryPolicy()).validate()
        # Cascade serving is detected from the pipeline itself (a
        # CascadePipeline carries a cascade_stage); the pre-filter head is
        # published next to the main (multiclass) publication at start().
        # Duck typed: the cluster package never imports the cascade (the
        # cascade builds on the cluster), mirroring the fabric layering.
        self._cascade = hasattr(pipeline, "cascade_stage")
        if self._cascade and self.config.online:
            raise ConfigurationError(
                "cascade serving does not compose with cluster-wide online "
                "learning: the two heads disagree on the label space, so a "
                "single merged delta stream is ambiguous"
            )
        if self._cascade and self.config.fabric_spec is not None:
            raise ConfigurationError(
                "cascade serving and the multi-tenant fabric both replace "
                "the worker stage chain; serve one or the other"
            )
        self.router = ShardRouter(self.config.n_workers, vnodes=self.config.vnodes)
        self.publication: Optional[ModelPublication] = None
        #: Second publication carrying the cascade's pre-filter head.
        self.prefilter_publication: Optional[ModelPublication] = None
        self._ctx: Optional[Any] = None
        self._processes: List[mp.process.BaseProcess] = []
        self._inboxes: List[Any] = []
        self._outbox: Optional[Any] = None
        self._worker_configs: List[WorkerConfig] = []
        self._seq = 0
        self._dispatches_since_sync = 0
        self.sync_rounds = 0
        self._started = False
        # ------------------------------------------------------- transport
        self._frame_layout = FrameSlotLayout.for_batch_size(self.config.batch_size)
        self._ack_layout = AckSlotLayout(
            pred_capacity=min(self.config.batch_size, 1024)
        )
        self._ring_token = ""
        self._data_rings: List[Optional[ShmRing]] = []
        self._result_rings: List[Optional[ShmRing]] = []
        self._transports: List[Optional[TransportSpec]] = []
        self.transport = TransportStats()
        self._routing_cpu_seconds = 0.0
        # ----------------------------------------------------- supervision
        #: Guards the (incarnation, process, expected_exit, heartbeat) rows
        #: the watchdog thread snapshots; recovery itself runs only on the
        #: coordinator thread.
        self._lock = threading.Lock()
        self._watchdog: Optional[Watchdog] = None
        self._heartbeats: Optional[Any] = None
        self._ledger: Optional[BatchLedger] = None
        self._incarnation: List[int] = []
        self._expected_exit: List[bool] = []
        self._shed: List[bool] = []
        self._respawns: List[int] = []
        #: Per-worker dispatch index below which updates were already merged
        #: at a sync round; redispatched batches below it carry
        #: ``learn=False`` so their samples are not double-counted.
        self._synced_through: List[int] = []
        #: Per-incarnation tallies reconstructed from acks -- the surviving
        #: evidence of a dead incarnation's work.
        self._ack_tallies: List[Dict[str, int]] = []
        self._pending: Deque[Any] = deque()
        self._pred_records: Dict[str, Any] = {}
        self._failover_router: Optional[ShardRouter] = None
        self._shed_stats = BackpressureStats()
        self.recovery = RecoveryStats()

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Publish the model and launch the worker + watchdog machinery.

        If publishing or spawning fails partway, everything already created
        (shared-memory blocks, spawned workers) is torn down before the
        error propagates.
        """
        if self._started:
            return
        cfg = self.config
        method = cfg.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        self._ctx = ctx
        n = cfg.n_workers
        self._incarnation = [0] * n
        self._expected_exit = [False] * n
        self._shed = [False] * n
        self._respawns = [0] * n
        self._synced_through = [0] * n
        self._ack_tallies = [self._zero_tally() for _ in range(n)]
        self._pending = deque()
        self._pred_records = {}
        self._failover_router = None
        self._shed_stats = BackpressureStats()
        self.recovery = RecoveryStats()
        self.transport = TransportStats()
        self._routing_cpu_seconds = 0.0
        self._ledger = BatchLedger(n, max_retained=self.policy.max_retained_batches)
        self._ring_token = transport_token()
        self._data_rings = [None] * n
        self._result_rings = [None] * n
        self._transports = [None] * n
        try:
            self.publication = ModelPublication(self.pipeline)
            spec = self.publication.spec()
            cascade_spec = None
            if self._cascade:
                # Publish the pre-filter head as a second shared-memory
                # publication; the main publication already carries the
                # multiclass head (a CascadePipeline's classifier).
                from repro.cascade.cluster import publish_prefilter

                self.prefilter_publication, cascade_spec = publish_prefilter(
                    self.pipeline
                )
            self._outbox = ctx.Queue()
            self._heartbeats = ctx.Array("d", n, lock=False)
            self._inboxes = []
            self._processes = []
            self._worker_configs = []
            for worker_id in range(n):
                self._create_rings(worker_id, incarnation=0)
                worker_config = WorkerConfig(
                    worker_id=worker_id,
                    n_workers=n,
                    spec=spec,
                    online=cfg.online,
                    idle_timeout=cfg.idle_timeout,
                    vnodes=cfg.vnodes,
                    # Ring failover re-homes a dead shard's keys onto the
                    # survivors, which the per-worker shard guard would
                    # reject as misrouted.
                    enforce_shard_guard=not self.policy.failover,
                    capture_predictions=cfg.capture_predictions,
                    heartbeat_interval=self.policy.heartbeat_interval,
                    fabric_spec=cfg.fabric_spec,
                    tenant_keyer=cfg.tenant_keyer,
                    cascade_spec=cascade_spec,
                )
                self._worker_configs.append(worker_config)
                # Control-plane only (sync/chaos/stop): rare and small, so
                # unbounded; the data plane's bound is the ring itself.
                inbox = ctx.Queue()
                self._heartbeats[worker_id] = time.time()
                process = ctx.Process(
                    target=cluster_worker_main,
                    args=(
                        worker_config,
                        inbox,
                        self._outbox,
                        self._heartbeats,
                        self._transports[worker_id],
                    ),
                    name=f"repro-cluster-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._inboxes.append(inbox)
                self._processes.append(process)
            self._watchdog = Watchdog(self._supervision_snapshot, self.policy)
            self._watchdog.start()
        except BaseException:
            self._abort()
            raise
        self._started = True

    def serve_packets(
        self,
        packets: Iterable[Packet],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> None:
        """Route and dispatch a packet stream (stops early on ``shutdown``).

        Packets accumulate in per-worker buffers and each worker is
        dispatched *full* ``batch_size`` micro-batches: every replica then
        amortizes its vectorized stages over the same batch size as the
        single-process engine, instead of receiving 1/N-sized fragments of a
        shared batch.
        """
        if not self._started:
            self.start()
        cfg = self.config
        buffers: List[List[Packet]] = [[] for _ in range(cfg.n_workers)]
        for chunk in chunked(packets, cfg.batch_size):
            if shutdown is not None and shutdown.triggered:
                break
            self._service_events()
            cpu0 = time.process_time()
            shards = self.router.partition_packets(chunk)
            self._routing_cpu_seconds += time.process_time() - cpu0
            for worker_id, shard in enumerate(shards):
                buffer = buffers[worker_id]
                buffer.extend(shard)
                while len(buffer) >= cfg.batch_size:
                    self._dispatch(worker_id, buffer[: cfg.batch_size])
                    del buffer[: cfg.batch_size]
            self._maybe_sync()
        # Tail flush: partial buffers take the *same* dispatch path as full
        # batches -- ledger entry, ring write, transport accounting and sync
        # cadence included -- so nothing about the stream's last packets
        # lives in a separate code path.
        for worker_id, buffer in enumerate(buffers):
            if buffer:
                self._service_events()
                self._dispatch(worker_id, list(buffer))
                buffer.clear()
        self._maybe_sync()

    def _maybe_sync(self) -> None:
        """Run a delta-merge round when the dispatch cadence calls for one."""
        cfg = self.config
        if (
            cfg.online
            and cfg.sync_interval
            and self._dispatches_since_sync >= cfg.sync_interval * cfg.n_workers
        ):
            self.sync_models()

    def sync_models(self) -> int:
        """One quorum-tolerant delta-merge round; returns the new generation.

        The sync request is sent to every live worker; if one dies before
        reporting, recovery respawns it and the round proceeds with the
        surviving deltas (the dead incarnation's unsynced updates are lost,
        bounded by the sync interval).  A worker that missed the round --
        respawned mid-round or mid-collect -- simply keeps its attach-time
        base and is folded back in at the next round: additive deltas are
        independent of the base generation, so nothing is double-merged.
        """
        if not self._started:
            raise ConfigurationError("cluster is not running")
        self._service_events()
        round_id = self.sync_rounds
        # worker -> (incarnation the request reached, its dispatch count then)
        candidates: Dict[int, Tuple[int, int]] = {}
        for worker_id in range(self.config.n_workers):
            if self._shed[worker_id]:
                continue
            incarnation = self._incarnation[worker_id]
            # The barrier pins the consistent cut: every frame counted here
            # is already committed to the worker's data ring (dispatch
            # happens before control on this single coordinator thread), so
            # the worker can always drain to the barrier before replying.
            dispatched = self._ledger.dispatched(worker_id)
            if self._put_control(
                worker_id, SyncRequest(round_id=round_id, barrier=dispatched)
            ):
                candidates[worker_id] = (incarnation, dispatched)
        expected = {w: inc for w, (inc, _) in candidates.items()}
        reports = self._collect(DeltaReport, expected, round_id, on_failure="drop")
        # A delta from an incarnation that has since been respawned is
        # dropped: recovery replays its unsynced batches with learning on,
        # so merging the dead incarnation's delta too would double-count.
        reports = [
            report
            for report in reports
            if self._incarnation[report.worker_id] == candidates[report.worker_id][0]
        ]
        deltas = [report.delta for report in reports]
        if deltas:
            merge_class_deltas(
                self.publication.class_matrix, deltas, self.publication.class_norms
            )
            # Deltas accumulate in the float matrix; the packed 1-bit serving
            # words (if published) are re-derived from the merged result
            # before replicas are told to rebase.
            self.publication.repack()
        generation = self.publication.bump_generation()
        merged_from = set()
        for report in reports:
            worker_id = report.worker_id
            incarnation, dispatched = candidates[worker_id]
            merged_from.add(worker_id)
            # Everything dispatched before the request is now in the
            # published model; a future redispatch must not re-learn it.
            self._synced_through[worker_id] = dispatched
            self._put_control(worker_id, Rebase(round_id=round_id, generation=generation))
        live = [w for w in range(self.config.n_workers) if not self._shed[w]]
        if len(merged_from) < len(live):
            self.recovery.quorum_rounds += 1
        self.sync_rounds += 1
        self._dispatches_since_sync = 0
        return generation

    def shutdown(self) -> ClusterReport:
        """Drain every worker, merge final deltas, and tear the cluster down.

        A worker that dies mid-drain is recovered (respawn, redispatch,
        re-Stop) so its shard's flows still reach the report; when the
        respawn budget is spent its remaining load is shed instead of
        aborting.  On an unrecoverable failure the cluster is aborted -- the
        publication's shared-memory blocks are freed and surviving processes
        reaped -- before the error propagates.
        """
        if not self._started:
            raise ConfigurationError("cluster is not running")
        start = time.perf_counter()
        try:
            self._service_events()
            expected: Dict[int, int] = {}
            for worker_id in range(self.config.n_workers):
                while not self._shed[worker_id]:
                    if self._send_stop(worker_id):
                        expected[worker_id] = self._incarnation[worker_id]
                        break
                    # The worker was respawned mid-put; Stop the fresh
                    # incarnation (its Stop barrier covers the redispatched
                    # frames already committed to the new ring).
            reports: List[FinalReport] = self._collect(
                FinalReport, expected, None, on_failure="restop"
            )
        except BaseException:
            self._abort()
            raise
        # A worker commits its last acks and *then* posts FinalReport, so
        # _collect can return while those acks still sit in the result ring;
        # absorb them before the rings are unlinked or their predictions
        # (and watermarks) die with the shm blocks.
        self._drain_ring_acks()
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        final_deltas = [r.final_delta for r in reports if r.final_delta is not None]
        if final_deltas:
            merge_class_deltas(
                self.publication.class_matrix, final_deltas, self.publication.class_norms
            )
            self.publication.repack()
            self.publication.bump_generation()
        # Fold the cluster-adapted model back into the coordinator's pipeline.
        self.pipeline.classifier.set_class_vectors(self.publication.class_matrix)
        generation = self.publication.generation
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - hung worker
                # Workers ignore SIGTERM (shutdown is the coordinator's
                # message-driven decision), so a hung one needs SIGKILL.
                process.kill()
                process.join(timeout=5.0)
        self.publication.close()
        self.publication = None
        if self.prefilter_publication is not None:
            self.prefilter_publication.close()
            self.prefilter_publication = None
        self._close_rings()
        self._started = False
        if self.config.capture_predictions:
            for report in sorted(reports, key=lambda r: r.summary.worker_id):
                self._absorb_predictions(report.predictions or [])
        summaries = {r.summary.worker_id: r.summary for r in reports}
        for worker_id in range(self.config.n_workers):
            if worker_id not in summaries:
                summaries[worker_id] = self._synthesize_summary(worker_id)
        # The workers' half of the backpressure picture: waits on a full
        # result ring, reported in each final summary.
        self.transport.result_ring_stalls = sum(
            s.ring_stalls for s in summaries.values()
        )
        self.recovery.ledger_evictions = self._ledger.evictions if self._ledger else 0
        flow_predictions = (
            list(self._pred_records.values())
            if self.config.capture_predictions
            else None
        )
        return ClusterReport(
            workers=[summaries[w] for w in sorted(summaries)],
            wall_seconds=time.perf_counter() - start,
            sync_rounds=self.sync_rounds,
            generation=generation,
            flow_predictions=flow_predictions,
            recovery=self.recovery,
            shed_stats=(
                self._shed_stats.to_dict() if self._shed_stats.submitted else None
            ),
            transport=self.transport.to_dict(),
            routing_cpu_seconds=self._routing_cpu_seconds,
        )

    def serve(
        self,
        packets: Iterable[Packet],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> ClusterReport:
        """End-to-end convenience: start, serve the stream, drain, report.

        ``wall_seconds`` on the returned report covers dispatch through
        drain -- the number the scaling benchmark compares against the
        single-process path.  Any mid-run failure aborts the cluster
        (shared memory freed, processes reaped) before propagating.
        """
        self.start()
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            self.serve_packets(packets, shutdown=shutdown)
            report = self.shutdown()
        except BaseException:
            self._abort()
            raise
        report.wall_seconds = time.perf_counter() - start
        report.coordinator_cpu_seconds = time.process_time() - cpu_start
        report.interrupted = shutdown is not None and shutdown.triggered
        return report

    # --------------------------------------------------------- chaos surface
    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL a worker (the chaos harness's crash primitive)."""
        self._processes[worker_id].kill()

    def inject(self, worker_id: int, message: Any) -> bool:
        """Enqueue a chaos message on a worker's inbox; False if it is gone."""
        return self._put_control(worker_id, message)

    # ------------------------------------------------------------- internals
    def _zero_tally(self) -> Dict[str, int]:
        return {"packets": 0, "flows": 0, "alerts": 0}

    def _supervision_snapshot(self) -> List[Tuple[int, int, Any, bool, float]]:
        """Consistent worker rows for the watchdog (see :class:`Watchdog`)."""
        with self._lock:
            return [
                (
                    worker_id,
                    self._incarnation[worker_id],
                    self._processes[worker_id],
                    self._expected_exit[worker_id] or self._shed[worker_id],
                    self._heartbeats[worker_id],
                )
                for worker_id in range(len(self._processes))
            ]

    def _create_rings(self, worker_id: int, incarnation: int) -> None:
        """Create a worker incarnation's data/result ring pair."""
        data = ShmRing.create(
            ring_name(self._ring_token, "d", worker_id, incarnation),
            n_slots=self.config.queue_capacity,
            slot_bytes=self._frame_layout.slot_bytes,
        )
        try:
            result = ShmRing.create(
                ring_name(self._ring_token, "a", worker_id, incarnation),
                n_slots=self.config.queue_capacity,
                slot_bytes=self._ack_layout.slot_bytes,
            )
        except BaseException:
            data.close(unlink=True)
            raise
        self._data_rings[worker_id] = data
        self._result_rings[worker_id] = result
        self._transports[worker_id] = TransportSpec(
            data=data.spec(),
            result=result.spec(),
            frame_layout=self._frame_layout,
            ack_layout=self._ack_layout,
        )

    def _close_rings(self) -> None:
        """Owner teardown of every ring (close + unlink); idempotent."""
        for ring in [*self._data_rings, *self._result_rings]:
            if ring is not None:
                ring.close(unlink=True)
        self._data_rings = [None] * len(self._data_rings)
        self._result_rings = [None] * len(self._result_rings)

    def _send_stop(self, worker_id: int) -> bool:
        """Stop one worker with the barrier pinned at its dispatch count."""
        barrier = self._ledger.dispatched(worker_id)
        if self._put_control(worker_id, Stop(barrier=barrier)):
            with self._lock:
                self._expected_exit[worker_id] = True
            return True
        return False

    def _dispatch(self, worker_id: int, packets: List[Packet]) -> None:
        cpu0 = time.process_time()
        frame = PacketFrame.from_packets(
            packets, tenant_of=self.config.tenant_keyer
        )
        self.transport.serialize_cpu_seconds += time.process_time() - cpu0
        batch = PacketBatch(seq=self._seq, frame=frame)
        self._seq += 1
        self._dispatches_since_sync += 1
        self._send_batch(worker_id, batch)

    def _send_batch(self, worker_id: int, batch: PacketBatch) -> None:
        """Ledger-tracked dispatch; shed shards divert to failover or drops."""
        if self._shed[worker_id]:
            self._reroute_or_shed(batch)
            return
        self._ledger.record_dispatch(worker_id, batch)
        self._put_tracked(worker_id, batch)

    def _reroute_or_shed(self, batch: PacketBatch) -> None:
        """A shed shard's batch: re-home it on the ring, or drop and count."""
        if self._failover_router is not None:
            for worker_id, shard in enumerate(
                self._failover_router.partition_packets(batch.packets)
            ):
                if shard and not self._shed[worker_id]:
                    rerouted = PacketBatch(
                        seq=self._seq,
                        frame=PacketFrame.from_packets(
                            list(shard), tenant_of=self.config.tenant_keyer
                        ),
                        learn=batch.learn,
                    )
                    self._seq += 1
                    self._send_batch(worker_id, rerouted)
            return
        # Degrade, don't abort: the same drop accounting the bounded ingest
        # queue uses, so shed load shows up in the familiar counters.
        self._shed_stats.submitted += 1
        self._shed_stats.dropped_oldest += 1
        self.recovery.shed_batches += 1
        self.recovery.shed_packets += batch.n_packets

    def _put_tracked(self, worker_id: int, batch: PacketBatch) -> None:
        """Producer-pays ring write of a ledger-tracked batch.

        The frame is encoded once into the next free data-ring slot; a full
        ring blocks here (``block`` backpressure, counted as a stall) while
        acks and failures are serviced.  Checks worker liveness on *every*
        iteration -- a worker that dies while its ring has headroom must not
        keep absorbing dispatches silently.  If recovery runs meanwhile, the
        redispatch already re-enqueued this batch from the ledger into the
        fresh incarnation's ring (or the shard was shed and the ledger
        drained), so the put simply stops.
        """
        start_incarnation = self._incarnation[worker_id]
        while True:
            if self._shed[worker_id] or self._incarnation[worker_id] != start_incarnation:
                return
            process = self._processes[worker_id]
            if not process.is_alive() and not self._expected_exit[worker_id]:
                self._service_events(scan=True)
                continue
            ring = self._data_rings[worker_id]
            slot = ring.try_reserve()
            if slot is not None:
                cpu0 = time.process_time()
                nbytes = encode_frame(
                    slot, self._frame_layout, batch.seq, batch.learn, batch.frame
                )
                ring.commit()
                self.transport.serialize_cpu_seconds += time.process_time() - cpu0
                self.transport.frames += 1
                self.transport.packets += batch.n_packets
                self.transport.bytes_moved += nbytes
                # The queue path pickled on put and unpickled on get.
                self.transport.copies_avoided += 2
                return
            self.transport.ring_full_stalls += 1
            self._service_events()
            time.sleep(0.0005)

    def _put_control(self, worker_id: int, message: Any) -> bool:
        """Best-effort put of an untracked control message.

        Returns False when the target incarnation vanished first (shed, or
        respawned by recovery) -- the caller decides what the new
        incarnation should receive instead.
        """
        start_incarnation = self._incarnation[worker_id]
        while True:
            if self._shed[worker_id] or self._incarnation[worker_id] != start_incarnation:
                return False
            process = self._processes[worker_id]
            if not process.is_alive() and not self._expected_exit[worker_id]:
                self._service_events(scan=True)
                continue
            try:
                self._inboxes[worker_id].put(message, timeout=0.2)
                return True
            except queue_module.Full:
                self._service_events()

    # ---------------------------------------------------- failure handling
    def _service_events(self, scan: bool = False) -> None:
        """Coordinator-thread safe point: absorb acks, run pending recovery."""
        self._drain_acks()
        if self._watchdog is not None:
            if scan:
                self._watchdog.scan_once()
            for failure in self._watchdog.take_failures():
                self._recover(failure)

    def _drain_acks(self) -> None:
        self._drain_ring_acks()
        while True:
            try:
                message = self._outbox.get_nowait()
            except queue_module.Empty:
                return
            if isinstance(message, BatchAck):
                self._apply_ack(message)
            else:
                # A report racing ahead of its _collect; keep it for the
                # collector, in arrival order.
                self._pending.append(message)

    def _drain_ring_acks(self) -> None:
        """Absorb every committed ack from every live result ring."""
        for worker_id, ring in enumerate(self._result_rings):
            if ring is None:
                continue
            while True:
                view = ring.try_peek()
                if view is None:
                    break
                payload = decode_ack(view, self._ack_layout)
                ring.release()
                n_preds = len(payload["predictions"] or ())
                self.transport.bytes_moved += (
                    ACK_HEADER.itemsize + n_preds * PRED_DTYPE.itemsize
                )
                self.transport.copies_avoided += 2
                self._apply_ack(BatchAck(worker_id=worker_id, **payload))

    def _apply_ack(self, ack: BatchAck) -> None:
        self._ledger.record_ack(ack.worker_id, ack.index, ack.watermark)
        tally = self._ack_tallies[ack.worker_id]
        tally["packets"] += ack.packets
        tally["flows"] += ack.flows
        tally["alerts"] += ack.alerts
        if ack.predictions:
            self._absorb_predictions(ack.predictions)

    def _absorb_predictions(self, predictions: List[Any]) -> None:
        for prediction in predictions:
            if prediction.token in self._pred_records:
                # At-least-once redispatch re-scored an already-served flow;
                # first record wins (same model generation => same verdict
                # for offline-mode runs, so which one survives is moot).
                self.recovery.duplicates_suppressed += 1
            else:
                self._pred_records[prediction.token] = prediction

    def _recover(self, failure: WorkerFailure) -> None:
        """Recovery driver: respawn + flow-exact redispatch, or exhaust."""
        worker_id = failure.worker_id
        if self._shed[worker_id] or failure.incarnation != self._incarnation[worker_id]:
            return  # stale detection for an incarnation already handled
        tally = self._ack_tallies[worker_id]
        record = FailureRecord(
            worker_id=worker_id,
            kind=failure.kind,
            incarnation=failure.incarnation,
            detected_at=failure.detected_at,
            exitcode=failure.exitcode,
            heartbeat_age=failure.heartbeat_age,
            acked_packets=tally["packets"],
            acked_flows=tally["flows"],
            acked_alerts=tally["alerts"],
        )
        self.recovery.failures.append(record)
        attempts = self._respawns[worker_id]
        if attempts >= self.policy.max_respawns:
            self._exhaust(worker_id, record)
            return
        backoff = self.policy.respawn_backoff * (2**attempts)
        if backoff > 0:
            time.sleep(min(backoff, 5.0))
        self._respawns[worker_id] = attempts + 1
        record.reclaimed_slots = self._respawn(worker_id)
        record.respawned = True
        self._redispatch(worker_id, record)
        record.recovered_at = time.time()

    def _respawn(self, worker_id: int) -> int:
        """Fresh incarnation: new control queue + ring pair, reattach to the
        live publication.  Returns the number of data-ring slots reclaimed.

        The dead incarnation's rings are not reused: a worker killed
        mid-slot leaves its cursors (and possibly a half-read slot) in an
        unknown state, so reclamation means counting the occupied slots,
        unlinking the whole pair, and re-materializing the retained frames
        from the ledger into the fresh incarnation's ring.  The swap happens
        under the supervision lock so the watchdog never pairs the new
        incarnation number with the dead process.
        """
        old_process = self._processes[worker_id]
        old_inbox = self._inboxes[worker_id]
        old_data = self._data_rings[worker_id]
        old_result = self._result_rings[worker_id]
        # Absorb every ack the dead worker committed before dying; what is
        # left in its data ring is the undrained evidence we reclaim.
        self._drain_ring_acks()
        reclaimed = old_data.occupancy if old_data is not None else 0
        with self._lock:
            self._incarnation[worker_id] += 1
            inbox = self._ctx.Queue()
            self._inboxes[worker_id] = inbox
            self._create_rings(worker_id, incarnation=self._incarnation[worker_id])
            self._heartbeats[worker_id] = time.time()
            self._expected_exit[worker_id] = False
            self._ack_tallies[worker_id] = self._zero_tally()
            process = self._ctx.Process(
                target=cluster_worker_main,
                args=(
                    self._worker_configs[worker_id],
                    inbox,
                    self._outbox,
                    self._heartbeats,
                    self._transports[worker_id],
                ),
                name=(
                    f"repro-cluster-worker-{worker_id}"
                    f"-r{self._incarnation[worker_id]}"
                ),
                daemon=True,
            )
            process.start()
            self._processes[worker_id] = process
        old_process.join(timeout=5.0)
        # The dead incarnation's queued control messages are unreachable;
        # everything that matters is in the ledger.  Never flush to the dead
        # pipe, and unlink the dead rings only after the process is gone.
        old_inbox.cancel_join_thread()
        old_inbox.close()
        if old_data is not None:
            old_data.close(unlink=True)
        if old_result is not None:
            old_result.close(unlink=True)
        self.transport.reclaimed_slots += reclaimed
        return reclaimed

    def _redispatch(self, worker_id: int, record: FailureRecord) -> None:
        """Replay the ledger's retained batches into the fresh incarnation.

        Retention reaches down to the dead worker's last acked watermark, so
        every flow it had not classified yet is rebuilt packet-for-packet
        (at-least-once: flows classified just before the crash get re-scored
        and deduplicated).  Batches whose online updates were already merged
        at a sync round are replayed with ``learn=False``.
        """
        synced_through = self._synced_through[worker_id]
        batches: List[PacketBatch] = []
        for index, batch in self._ledger.replayable(worker_id):
            if index < synced_through and batch.learn:
                batch = replace(batch, learn=False)
            batches.append(batch)
        self._ledger.reset(worker_id, batches)
        self._synced_through[worker_id] = 0
        incarnation = self._incarnation[worker_id]
        for batch in batches:
            if self._incarnation[worker_id] != incarnation or self._shed[worker_id]:
                # A nested recovery replayed the ledger itself; hand off.
                break
            self._put_tracked(worker_id, batch)
            record.redispatched_batches += 1
            record.redispatched_packets += batch.n_packets

    def _exhaust(self, worker_id: int, record: FailureRecord) -> None:
        """Respawn budget spent: fail over the shard, shed it, or fail fast."""
        if not (self.policy.shed_when_exhausted or self.policy.failover):
            unacked = self._ledger.unacked_seqs(worker_id)
            raise RuntimeError(
                f"cluster worker {worker_id} died ({record.kind}, exit code "
                f"{record.exitcode}) with no respawn budget left; "
                f"unacked batch seqs: {unacked}"
            )
        with self._lock:
            self._shed[worker_id] = True
            self._expected_exit[worker_id] = True
        # A shed shard's rings are abandoned in place (unlinked at
        # teardown); whatever sat undrained in its data ring is reclaimed
        # accounting-wise here, like the respawn path's.
        self._drain_ring_acks()
        dead_ring = self._data_rings[worker_id]
        if dead_ring is not None:
            record.reclaimed_slots = dead_ring.occupancy
            self.transport.reclaimed_slots += record.reclaimed_slots
        batches = self._ledger.clear(worker_id)
        survivors = [
            w for w in range(self.config.n_workers) if not self._shed[w]
        ]
        if self.policy.failover and survivors:
            self._failover_router = self.router.excluding(
                [w for w in range(self.config.n_workers) if self._shed[w]]
            )
            record.failed_over = True
            for batch in batches:
                self._reroute_or_shed(batch)
                record.redispatched_batches += 1
                record.redispatched_packets += batch.n_packets
        else:
            self._failover_router = None
            for batch in batches:
                self._shed_stats.submitted += 1
                self._shed_stats.dropped_oldest += 1
                self.recovery.shed_batches += 1
                self.recovery.shed_packets += batch.n_packets
        record.shed = not record.failed_over
        record.recovered_at = time.time()

    def _synthesize_summary(self, worker_id: int) -> WorkerSummary:
        """A shed worker never files a report; reconstruct one from its acks."""
        summary = WorkerSummary(worker_id=worker_id)
        for failure in self.recovery.failures:
            if failure.worker_id == worker_id:
                summary.packets += failure.acked_packets
                summary.flows += failure.acked_flows
                summary.alerts += failure.acked_alerts
        return summary

    # -------------------------------------------------------------- teardown
    def _abort(self) -> None:
        """Tear the cluster down after a failure: reap processes, free shm.

        Idempotent; safe to call after a partial ``shutdown``.  Uses
        SIGKILL: workers ignore SIGTERM by design (shutdown is normally the
        coordinator's message-driven decision).
        """
        if self._watchdog is not None:
            self._watchdog.stop()
            self._watchdog = None
        for process in self._processes:
            if process.is_alive():
                process.kill()
        for process in self._processes:
            process.join(timeout=5.0)
        for inbox in self._inboxes:
            # Queued batches would otherwise block the feeder thread at
            # interpreter exit, flushing into pipes nobody will ever read.
            try:
                inbox.cancel_join_thread()
                inbox.close()
            except (OSError, ValueError):  # pragma: no cover - already closed
                pass
        if self.publication is not None:
            self.publication.close()
            self.publication = None
        if self.prefilter_publication is not None:
            self.prefilter_publication.close()
            self.prefilter_publication = None
        self._close_rings()
        self._processes = []
        self._inboxes = []
        self._started = False

    # ------------------------------------------------------------ collection
    def _collect(
        self,
        kind,
        expected: Dict[int, int],
        round_id: Optional[int],
        on_failure: str = "drop",
    ) -> List[Any]:
        """Gather one ``kind`` report per expected worker incarnation.

        ``expected`` maps worker id -> incarnation owing the report.  Acks
        interleaved in the stream are absorbed.  When an expected worker
        fails first, recovery runs and the collect adapts by ``on_failure``:

        ``"drop"``
            Quorum mode (sync rounds): stop expecting the report; the round
            proceeds with the survivors.
        ``"restop"``
            Drain mode (shutdown): send ``Stop`` to the respawned
            incarnation and await *its* report instead; a shed worker is
            dropped and its summary synthesized from acks.

        Any not-alive worker still owing a report is treated as dead no
        matter its exit code -- a clean-but-premature exit would otherwise
        spin this loop forever.  One extra empty poll of grace lets a dead
        worker's already-sent report finish crossing the queue feeder.
        """
        results: Dict[int, Any] = {}
        misses: Dict[int, int] = {}
        while len(results) < len(expected):
            message = self._next_message()
            if message is None:
                self._service_events()
                self._check_expected(expected, results, misses, on_failure)
                continue
            if isinstance(message, BatchAck):
                self._apply_ack(message)
                continue
            if not isinstance(message, kind):
                if isinstance(message, DeltaReport) and kind is FinalReport:
                    # A delta a worker sent just before dying in an aborted
                    # quorum round; its incarnation is gone, drop it.
                    continue
                raise RuntimeError(
                    f"expected {kind.__name__}, got {type(message).__name__}"
                )
            if round_id is not None and message.round_id != round_id:
                if message.round_id < round_id:
                    continue  # stale report from a crashed incarnation
                raise RuntimeError(
                    f"round mismatch: expected {round_id}, got {message.round_id}"
                )
            worker_id = (
                message.summary.worker_id
                if isinstance(message, FinalReport)
                else message.worker_id
            )
            if worker_id in expected and worker_id not in results:
                results[worker_id] = message
        return [results[worker_id] for worker_id in sorted(results)]

    def _next_message(self) -> Optional[Any]:
        if self._pending:
            return self._pending.popleft()
        # Keep result rings draining while blocked on the control outbox: a
        # worker mid-drain fills its ack ring far faster than it sends
        # reports, and a full ring would stall it for the poll timeout.
        self._drain_ring_acks()
        try:
            return self._outbox.get(timeout=0.05)
        except queue_module.Empty:
            return None

    def _check_expected(
        self,
        expected: Dict[int, int],
        results: Dict[int, Any],
        misses: Dict[int, int],
        on_failure: str,
    ) -> None:
        for worker_id, incarnation in list(expected.items()):
            if worker_id in results:
                continue
            if self._shed[worker_id]:
                expected.pop(worker_id)
                continue
            if self._incarnation[worker_id] != incarnation:
                # Recovery replaced the incarnation we were waiting on.
                if on_failure == "restop" and self._send_stop(worker_id):
                    expected[worker_id] = self._incarnation[worker_id]
                elif on_failure == "drop":
                    expected.pop(worker_id)
                continue
            process = self._processes[worker_id]
            if process.is_alive():
                misses.pop(worker_id, None)
                continue
            misses[worker_id] = misses.get(worker_id, 0) + 1
            if misses[worker_id] < 2:
                continue  # grace poll: its report may still be in the feeder
            misses.pop(worker_id, None)
            self._recover(
                WorkerFailure(
                    worker_id=worker_id,
                    kind="crash",
                    incarnation=incarnation,
                    detected_at=time.time(),
                    exitcode=process.exitcode,
                )
            )
