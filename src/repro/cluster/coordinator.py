"""Cluster coordinator: sharded dispatch, delta merging, model republish.

The coordinator owns the cluster:

* it publishes the trained pipeline's tensors in shared memory
  (:mod:`repro.cluster.shared_model`) and spawns N worker processes, each a
  full serving replica;
* it routes every packet to the worker owning its flow's shard
  (:class:`repro.cluster.router.ShardRouter`) and dispatches bounded batches
  over per-worker queues;
* on a **sync round** it collects each worker's class-vector delta (the
  ``partial_fit`` updates accumulated against the round-start model), merges
  them additively through :func:`repro.hdc.backend.merge_class_deltas` --
  with row-granular cached-norm invalidation -- republishes the merged
  matrix, and lets every replica rebase.  Because HDC class vectors are sums
  of weighted sample hypervectors, this merge is *exact*: the published model
  equals single-process ``partial_fit`` of every shard's stream applied
  against the round-start state (see ``docs/cluster.md``).

Queue FIFO ordering is the only synchronization primitive: a sync request
lands behind every batch dispatched before it, so a round is a consistent
cut of the stream.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.cluster.router import ShardRouter
from repro.cluster.shared_model import ModelPublication
from repro.cluster.worker import (
    DeltaReport,
    FinalReport,
    PacketBatch,
    Rebase,
    Stop,
    SyncRequest,
    WorkerConfig,
    WorkerSummary,
    cluster_worker_main,
)
from repro.exceptions import ConfigurationError
from repro.hdc.backend import merge_class_deltas
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline
from repro.serving.shutdown import GracefulShutdown, chunked


@dataclass(frozen=True)
class ClusterConfig:
    """Deployment knobs of a serving cluster.

    Attributes
    ----------
    n_workers:
        Worker processes (shards).
    batch_size:
        Packets per dispatched batch (the cluster's micro-batch unit).
    sync_interval:
        Approximate batches *per worker* between delta-merge syncs when
        online learning is on (``0`` merges only at shutdown).
    online:
        Enable distributed online learning (per-worker ``partial_fit`` +
        additive delta merging).
    idle_timeout:
        Flow-table idle timeout inside each worker.
    queue_capacity:
        Bound of each worker's inbox, in batches; a full inbox blocks the
        coordinator (producer-pays backpressure, as in the single-process
        engine's ``block`` policy).
    vnodes:
        Virtual nodes per worker on the router's hash ring.
    start_method:
        ``multiprocessing`` start method; ``None`` picks ``fork`` when the
        platform offers it (fastest replica bootstrap) and ``spawn``
        otherwise.
    capture_predictions:
        Ship every served flow's :class:`~repro.serving.FlowPrediction`
        back in the workers' final reports (collected on
        :attr:`ClusterReport.flow_predictions`).  This is the evidence the
        golden-trace differential harness compares against offline batch
        predictions; it costs memory proportional to the served flow count,
        so leave it off for open-ended serving.
    """

    n_workers: int = 4
    batch_size: int = 512
    sync_interval: int = 8
    online: bool = False
    idle_timeout: float = 5.0
    queue_capacity: int = 64
    vnodes: int = 64
    start_method: Optional[str] = None
    capture_predictions: bool = False

    def validate(self) -> "ClusterConfig":
        """Check parameter ranges and return ``self``."""
        if self.n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if self.batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1")
        if self.sync_interval < 0:
            raise ConfigurationError("sync_interval must be non-negative")
        if self.queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        return self


@dataclass
class ClusterReport:
    """Aggregate outcome of one cluster serving run."""

    workers: List[WorkerSummary]
    wall_seconds: float
    sync_rounds: int
    generation: int
    interrupted: bool = False
    #: CPU seconds the coordinator spent routing/dispatching/merging.  The
    #: router is the cluster's other scarce resource: aggregate worker
    #: capacity only materializes while one core can route packets at least
    #: as fast as the shards drain them.
    coordinator_cpu_seconds: float = 0.0
    #: Per-flow serving outcomes across all shards (only populated when
    #: ``ClusterConfig.capture_predictions`` is on).
    flow_predictions: Optional[List] = None

    # ------------------------------------------------------------ aggregates
    @property
    def total_packets(self) -> int:
        """Packets ingested across all workers."""
        return sum(w.packets for w in self.workers)

    @property
    def total_flows(self) -> int:
        """Flows served across all workers."""
        return sum(w.flows for w in self.workers)

    @property
    def total_alerts(self) -> int:
        """Alerts raised across all workers."""
        return sum(w.alerts for w in self.workers)

    @property
    def aggregate_flow_throughput(self) -> float:
        """Sum of per-replica sustained rates (flows per busy *CPU* second).

        This is the cluster's *capacity*: what the shards deliver together
        when each has a core to itself (per-core CPU seconds equal wall
        seconds exactly then).  On a host with fewer cores than workers the
        wall-clock rate (``total_flows / wall_seconds``) is the lower,
        contended number; benchmark records carry both plus the host CPU
        count so the two are never conflated.
        """
        return sum(w.flow_throughput for w in self.workers)

    @property
    def aggregate_packet_throughput(self) -> float:
        """Sum of per-replica packet ingest rates."""
        return sum(w.packet_throughput for w in self.workers)

    @property
    def wall_flow_throughput(self) -> float:
        """Flows per wall-clock second for the whole run."""
        return self.total_flows / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def routing_packets_per_cpu_second(self) -> float:
        """Packets the coordinator routes per CPU second (the fan-out bound)."""
        if self.coordinator_cpu_seconds <= 0:
            return 0.0
        return self.total_packets / self.coordinator_cpu_seconds

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "workers": [w.to_dict() for w in self.workers],
            "wall_seconds": self.wall_seconds,
            "sync_rounds": self.sync_rounds,
            "generation": self.generation,
            "interrupted": self.interrupted,
            "total_packets": self.total_packets,
            "total_flows": self.total_flows,
            "total_alerts": self.total_alerts,
            "aggregate_flows_per_second": self.aggregate_flow_throughput,
            "aggregate_packets_per_second": self.aggregate_packet_throughput,
            "wall_flows_per_second": self.wall_flow_throughput,
            "coordinator_cpu_seconds": self.coordinator_cpu_seconds,
            "routing_packets_per_cpu_second": self.routing_packets_per_cpu_second,
            "n_flow_predictions": (
                len(self.flow_predictions) if self.flow_predictions is not None else 0
            ),
        }


class ClusterCoordinator:
    """Runs a trained pipeline as a sharded multi-process serving cluster.

    Parameters
    ----------
    pipeline:
        A trained :class:`DetectionPipeline`; its classifier state is
        published to the workers and, after :meth:`shutdown`, updated in
        place with the cluster-adapted merged model (so ``save_pipeline``
        on it persists what the cluster learned).
    config:
        A :class:`ClusterConfig`.
    """

    def __init__(self, pipeline: DetectionPipeline, config: Optional[ClusterConfig] = None):
        self.pipeline = pipeline
        self.config = (config or ClusterConfig()).validate()
        self.router = ShardRouter(self.config.n_workers, vnodes=self.config.vnodes)
        self.publication: Optional[ModelPublication] = None
        self._processes: List[mp.process.BaseProcess] = []
        self._inboxes: List[Any] = []
        self._outbox: Optional[Any] = None
        self._seq = 0
        self._dispatches_since_sync = 0
        self.sync_rounds = 0
        self._started = False

    # ------------------------------------------------------------- lifecycle
    def start(self) -> None:
        """Publish the model and launch the worker processes.

        If publishing or spawning fails partway, everything already created
        (shared-memory blocks, spawned workers) is torn down before the
        error propagates.
        """
        if self._started:
            return
        cfg = self.config
        method = cfg.start_method
        if method is None:
            method = "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        ctx = mp.get_context(method)
        try:
            self.publication = ModelPublication(self.pipeline)
            spec = self.publication.spec()
            self._outbox = ctx.Queue()
            self._inboxes = []
            self._processes = []
            for worker_id in range(cfg.n_workers):
                inbox = ctx.Queue(maxsize=cfg.queue_capacity)
                worker_config = WorkerConfig(
                    worker_id=worker_id,
                    n_workers=cfg.n_workers,
                    spec=spec,
                    online=cfg.online,
                    idle_timeout=cfg.idle_timeout,
                    vnodes=cfg.vnodes,
                    capture_predictions=cfg.capture_predictions,
                )
                process = ctx.Process(
                    target=cluster_worker_main,
                    args=(worker_config, inbox, self._outbox),
                    name=f"repro-cluster-worker-{worker_id}",
                    daemon=True,
                )
                process.start()
                self._inboxes.append(inbox)
                self._processes.append(process)
        except BaseException:
            self._abort()
            raise
        self._started = True

    def serve_packets(
        self,
        packets: Iterable[Packet],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> None:
        """Route and dispatch a packet stream (stops early on ``shutdown``).

        Packets accumulate in per-worker buffers and each worker is
        dispatched *full* ``batch_size`` micro-batches: every replica then
        amortizes its vectorized stages over the same batch size as the
        single-process engine, instead of receiving 1/N-sized fragments of a
        shared batch.
        """
        if not self._started:
            self.start()
        cfg = self.config
        buffers: List[List[Packet]] = [[] for _ in range(cfg.n_workers)]
        for chunk in chunked(packets, cfg.batch_size):
            if shutdown is not None and shutdown.triggered:
                break
            for worker_id, shard in enumerate(self.router.partition_packets(chunk)):
                buffer = buffers[worker_id]
                buffer.extend(shard)
                while len(buffer) >= cfg.batch_size:
                    self._dispatch(worker_id, buffer[: cfg.batch_size])
                    del buffer[: cfg.batch_size]
            if (
                cfg.online
                and cfg.sync_interval
                and self._dispatches_since_sync >= cfg.sync_interval * cfg.n_workers
            ):
                self.sync_models()
        for worker_id, buffer in enumerate(buffers):
            if buffer:
                self._dispatch(worker_id, list(buffer))
                buffer.clear()

    def _dispatch(self, worker_id: int, packets: List[Packet]) -> None:
        self._put(worker_id, PacketBatch(seq=self._seq, packets=packets))
        self._seq += 1
        self._dispatches_since_sync += 1

    def _put(self, worker_id: int, message: Any) -> None:
        """Producer-pays put with a liveness watchdog.

        A dead worker's inbox stops draining; a plain blocking ``put`` would
        then hang the coordinator forever once the queue fills.  Waiting in
        bounded slices and checking the process turns that into a fast,
        diagnosable failure.
        """
        inbox = self._inboxes[worker_id]
        while True:
            try:
                inbox.put(message, timeout=1.0)
                return
            except queue_module.Full:
                process = self._processes[worker_id]
                if not process.is_alive():
                    raise RuntimeError(
                        f"cluster worker {worker_id} died (exit code "
                        f"{process.exitcode}); its queue stopped draining"
                    )

    def sync_models(self) -> int:
        """One delta-merge round; returns the new published generation."""
        if not self._started:
            raise ConfigurationError("cluster is not running")
        round_id = self.sync_rounds
        for worker_id in range(self.config.n_workers):
            self._put(worker_id, SyncRequest(round_id=round_id))
        deltas = [
            report.delta
            for report in self._collect(DeltaReport, self.config.n_workers, round_id)
        ]
        merge_class_deltas(
            self.publication.class_matrix, deltas, self.publication.class_norms
        )
        # Deltas accumulate in the float matrix; the packed 1-bit serving
        # words (if published) are re-derived from the merged result before
        # replicas are told to rebase.
        self.publication.repack()
        generation = self.publication.bump_generation()
        for worker_id in range(self.config.n_workers):
            self._put(worker_id, Rebase(round_id=round_id, generation=generation))
        self.sync_rounds += 1
        self._dispatches_since_sync = 0
        return generation

    def shutdown(self) -> ClusterReport:
        """Drain every worker, merge final deltas, and tear the cluster down.

        On failure mid-drain (a worker died), the cluster is aborted -- the
        publication's shared-memory blocks are freed and surviving processes
        reaped -- before the error propagates.
        """
        if not self._started:
            raise ConfigurationError("cluster is not running")
        start = time.perf_counter()
        try:
            for worker_id in range(self.config.n_workers):
                self._put(worker_id, Stop())
            reports: List[FinalReport] = self._collect(
                FinalReport, self.config.n_workers, None
            )
        except BaseException:
            self._abort()
            raise
        final_deltas = [r.final_delta for r in reports if r.final_delta is not None]
        if final_deltas:
            merge_class_deltas(
                self.publication.class_matrix, final_deltas, self.publication.class_norms
            )
            self.publication.repack()
            self.publication.bump_generation()
        # Fold the cluster-adapted model back into the coordinator's pipeline.
        self.pipeline.classifier.set_class_vectors(self.publication.class_matrix)
        generation = self.publication.generation
        for process in self._processes:
            process.join(timeout=10.0)
        for process in self._processes:
            if process.is_alive():  # pragma: no cover - hung worker
                # Workers ignore SIGTERM (shutdown is the coordinator's
                # message-driven decision), so a hung one needs SIGKILL.
                process.kill()
                process.join(timeout=5.0)
        self.publication.close()
        self.publication = None
        self._started = False
        summaries = sorted((r.summary for r in reports), key=lambda s: s.worker_id)
        flow_predictions = None
        if self.config.capture_predictions:
            flow_predictions = [
                prediction
                for report in sorted(reports, key=lambda r: r.summary.worker_id)
                for prediction in (report.predictions or [])
            ]
        return ClusterReport(
            workers=list(summaries),
            wall_seconds=time.perf_counter() - start,
            sync_rounds=self.sync_rounds,
            generation=generation,
            flow_predictions=flow_predictions,
        )

    def serve(
        self,
        packets: Iterable[Packet],
        shutdown: Optional[GracefulShutdown] = None,
    ) -> ClusterReport:
        """End-to-end convenience: start, serve the stream, drain, report.

        ``wall_seconds`` on the returned report covers dispatch through
        drain -- the number the scaling benchmark compares against the
        single-process path.  Any mid-run failure aborts the cluster
        (shared memory freed, processes reaped) before propagating.
        """
        self.start()
        start = time.perf_counter()
        cpu_start = time.process_time()
        try:
            self.serve_packets(packets, shutdown=shutdown)
            report = self.shutdown()
        except BaseException:
            self._abort()
            raise
        report.wall_seconds = time.perf_counter() - start
        report.coordinator_cpu_seconds = time.process_time() - cpu_start
        report.interrupted = shutdown is not None and shutdown.triggered
        return report

    # ------------------------------------------------------------- internals
    def _abort(self) -> None:
        """Tear the cluster down after a failure: reap processes, free shm.

        Idempotent; safe to call after a partial ``shutdown``.  Uses
        SIGKILL: workers ignore SIGTERM by design (shutdown is normally the
        coordinator's message-driven decision).
        """
        for process in self._processes:
            if process.is_alive():
                process.kill()
        for process in self._processes:
            process.join(timeout=5.0)
        if self.publication is not None:
            self.publication.close()
            self.publication = None
        self._processes = []
        self._inboxes = []
        self._started = False

    def _collect(self, kind, count: int, round_id: Optional[int]) -> List[Any]:
        """Gather ``count`` messages of ``kind`` from the outbox, watching
        worker liveness so a crashed replica fails fast instead of hanging
        the coordinator forever."""
        results: List[Any] = []
        while len(results) < count:
            try:
                message = self._outbox.get(timeout=1.0)
            except queue_module.Empty:
                dead = [
                    p.name
                    for p in self._processes
                    if not p.is_alive() and p.exitcode not in (0, None)
                ]
                if dead:
                    raise RuntimeError(
                        f"cluster worker(s) died during a collect: {dead}"
                    )
                continue
            if not isinstance(message, kind):  # pragma: no cover - protocol bug
                raise RuntimeError(
                    f"expected {kind.__name__}, got {type(message).__name__}"
                )
            if round_id is not None and message.round_id != round_id:  # pragma: no cover
                raise RuntimeError(
                    f"round mismatch: expected {round_id}, got {message.round_id}"
                )
            results.append(message)
        return results
