"""Sharded multi-worker cluster serving.

The layer above the single-process serving engine: the flow->alert path runs
as N worker processes, each a complete pipeline replica attached zero-copy to
a shared-memory model publication, with flows sharded by their canonical
5-tuple so every flow's state lives on exactly one worker.  Online learning
works across the cluster because HDC class vectors aggregate additively:
per-worker ``partial_fit`` deltas merge exactly (``repro.hdc.backend.
merge_class_deltas``) and the merged model is republished to every replica.

``router``
    :class:`ShardRouter` -- process-stable consistent hashing of the
    bidirectional flow key onto the worker ring.

``shared_model``
    :class:`ModelPublication` / :class:`AttachedPublication` -- the
    encoder-projection and class-vector tensors in
    ``multiprocessing.shared_memory``, with a republish generation counter.

``worker``
    :class:`WorkerRuntime` and the process entry point: shard-guarded flow
    table, full stage chain, private-replica online learning, delta
    reporting.

``coordinator``
    :class:`ClusterCoordinator` -- dispatch, sync rounds (collect deltas,
    merge, republish), graceful drain, aggregate reporting.

``supervision``
    The self-healing layer: heartbeat watchdog, in-flight batch ledger,
    :class:`RetryPolicy`-driven respawn/redispatch/shed recovery.

``chaos``
    Scripted SIGKILL/hang/delay/exit fault schedules injected mid-replay,
    measured against the golden trace (``bench --suite chaos``).

``loadgen``
    The scenario library (DDoS burst, port-scan sweep, low-and-slow
    exfiltration, gradual drift, mixed benign) behind ``bench --suite
    cluster`` and ``serve --scenario``.

See ``docs/cluster.md`` for the topology and the delta-merge semantics.
"""

from repro.cluster.chaos import (
    ChaosEvent,
    ChaosInjector,
    ChaosRunResult,
    ChaosSchedule,
    InjectionRecord,
    default_chaos_policy,
    run_chaos_replay,
)
from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator, ClusterReport
from repro.cluster.loadgen import (
    SCENARIOS,
    LoadScenario,
    ScenarioPhase,
    compile_scenario_trace,
    get_scenario,
    interpolate_profile,
    scenario_names,
)
from repro.cluster.router import ShardRouter, flow_key_token, stable_hash64
from repro.cluster.shared_model import (
    AttachedPublication,
    ModelPublication,
    PublicationSpec,
)
from repro.cluster.supervision import (
    BatchLedger,
    FailureRecord,
    RecoveryStats,
    RetryPolicy,
    Watchdog,
    WorkerFailure,
)
from repro.cluster.worker import WorkerConfig, WorkerRuntime, WorkerSummary

__all__ = [
    "ClusterConfig",
    "ClusterCoordinator",
    "ClusterReport",
    "RetryPolicy",
    "RecoveryStats",
    "FailureRecord",
    "WorkerFailure",
    "BatchLedger",
    "Watchdog",
    "ChaosEvent",
    "ChaosSchedule",
    "ChaosInjector",
    "ChaosRunResult",
    "InjectionRecord",
    "default_chaos_policy",
    "run_chaos_replay",
    "ShardRouter",
    "flow_key_token",
    "stable_hash64",
    "ModelPublication",
    "AttachedPublication",
    "PublicationSpec",
    "WorkerConfig",
    "WorkerRuntime",
    "WorkerSummary",
    "LoadScenario",
    "compile_scenario_trace",
    "ScenarioPhase",
    "SCENARIOS",
    "get_scenario",
    "interpolate_profile",
    "scenario_names",
]
