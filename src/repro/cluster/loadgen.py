"""Scenario-driven load generation for cluster (and single-process) serving.

A benchmark number is only meaningful against a named workload.  This module
defines a small library of packet-level traffic scenarios -- each a sequence
of phases mixing :class:`repro.nids.packets.TrafficProfile` behaviours at
controlled rates -- that the serving benchmarks and ``repro serve`` replay
deterministically:

``mixed_benign``
    The steady-state baseline: the default profile mix, mostly benign.
``ddos_burst``
    Calm benign traffic, then a SYN-flood burst dominating the link, then
    recovery -- the load-shedding/backpressure stressor.
``port_scan_sweep``
    A scanner walking thousands of ports; port-sweep flows fan out across
    shards and exercise the port-diversity features.
``low_and_slow_exfiltration``
    Rare exfiltration flows stretched thin (long inter-arrivals, moderate
    sizes) inside benign cover traffic -- the hard-to-spot class.
``gradual_drift``
    Benign and attack statistics morph phase by phase; the online-learning
    stressor.  Its tabular companion preset is ``"drift_onset"``
    (:data:`repro.datasets.synthetic.GENERATION_PRESETS`), so the eval
    harness can study the same shift offline.

Scenario profiles reuse the *names* of the default profiles (a ``replace()``
of their statistics), so a pipeline trained on the default mix serves every
scenario with a known label space.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.datasets.base import NIDSDataset
from repro.datasets.loaders import load_dataset
from repro.datasets.synthetic import GenerationConfig
from repro.exceptions import ConfigurationError
from repro.nids.packets import DEFAULT_PROFILES, Packet, TrafficGenerator, TrafficProfile

_PROFILE_BY_NAME: Dict[str, TrafficProfile] = {p.name: p for p in DEFAULT_PROFILES}


def interpolate_profile(a: TrafficProfile, b: TrafficProfile, t: float) -> TrafficProfile:
    """Linear interpolation of a profile's numeric statistics (``t=0`` -> a).

    The drifted profile keeps ``a``'s name and flag behaviour: drift means
    the *statistics* of a known behaviour move, not that a new label
    appears.
    """
    if not 0.0 <= t <= 1.0:
        raise ConfigurationError("interpolation factor t must be in [0, 1]")

    def mix2(x: Tuple[float, float], y: Tuple[float, float]) -> Tuple[float, float]:
        return ((1 - t) * x[0] + t * y[0], (1 - t) * x[1] + t * y[1])

    return replace(
        a,
        packets_per_flow=mix2(a.packets_per_flow, b.packets_per_flow),
        packet_length=mix2(a.packet_length, b.packet_length),
        inter_arrival=mix2(a.inter_arrival, b.inter_arrival),
        reply_ratio=(1 - t) * a.reply_ratio + t * b.reply_ratio,
    )


@dataclass(frozen=True)
class ScenarioPhase:
    """One contiguous stretch of a scenario's traffic.

    Attributes
    ----------
    name:
        Phase label (shows up in summaries).
    flows:
        Flows generated in this phase at ``flows_scale=1.0``.
    profiles:
        Traffic behaviours active during the phase.
    weights:
        Relative frequency per profile (defaults to the generator's
        benign-heavy split).
    gap_seconds:
        Idle time appended after the phase, letting its flows expire before
        the next phase starts (so phase boundaries are observable).
    """

    name: str
    flows: int
    profiles: Tuple[TrafficProfile, ...]
    weights: Optional[Tuple[float, ...]] = None
    gap_seconds: float = 30.0


@dataclass(frozen=True)
class LoadScenario:
    """A named, phased, deterministic traffic workload.

    Attributes
    ----------
    name, description:
        Identity and one-line intent.
    phases:
        The phase sequence.
    tabular_preset:
        The :data:`~repro.datasets.synthetic.GENERATION_PRESETS` name of the
        scenario's tabular companion (see :meth:`tabular_dataset`).
    """

    name: str
    description: str
    phases: Tuple[ScenarioPhase, ...]
    tabular_preset: str = "paper"

    # ------------------------------------------------------------------- API
    def total_flows(self, flows_scale: float = 1.0) -> int:
        """Flows the scenario generates at ``flows_scale``."""
        return sum(max(1, round(p.flows * flows_scale)) for p in self.phases)

    def build_packets(
        self, seed: int = 0, flows_scale: float = 1.0, start_time: float = 0.0
    ) -> List[Packet]:
        """The scenario's time-ordered packet stream.

        Deterministic given ``seed``; ``flows_scale`` scales every phase's
        flow count (benchmarks use it to grow the workload without changing
        its shape).
        """
        if flows_scale <= 0:
            raise ConfigurationError("flows_scale must be positive")
        packets: List[Packet] = []
        t = float(start_time)
        for index, phase in enumerate(self.phases):
            generator = TrafficGenerator(
                profiles=phase.profiles,
                profile_weights=list(phase.weights) if phase.weights else None,
                seed=seed * 1009 + index,
            )
            phase_packets = generator.generate(
                max(1, round(phase.flows * flows_scale)), start_time=t
            )
            packets.extend(phase_packets)
            t = phase_packets[-1].timestamp + phase.gap_seconds
        return packets

    def training_packets(self, n_flows: int = 300, seed: int = 0) -> List[Packet]:
        """Training traffic covering the full default label space.

        Training always uses the *default* profiles: a deployed detector is
        trained on known behaviours, then confronted with the scenario's
        shifted mix.
        """
        return TrafficGenerator(seed=seed).generate(n_flows)

    def tabular_dataset(
        self,
        dataset: str = "nsl_kdd",
        n_train: int = 2000,
        n_test: int = 600,
        seed: int = 0,
    ) -> NIDSDataset:
        """The scenario's tabular companion (same preset, offline workload)."""
        return load_dataset(
            dataset,
            n_train=n_train,
            n_test=n_test,
            seed=seed,
            config=GenerationConfig.preset(self.tabular_preset),
        )


def _benign_heavy(*names: str, benign_weight: float = 0.85) -> Tuple[Tuple[TrafficProfile, ...], Tuple[float, ...]]:
    """The benign profile plus the named attacks, benign-dominated."""
    attacks = [_PROFILE_BY_NAME[name] for name in names]
    profiles = (_PROFILE_BY_NAME["benign"], *attacks)
    weights = (benign_weight, *([(1 - benign_weight) / len(attacks)] * len(attacks)))
    return profiles, weights


def _build_scenarios() -> Dict[str, LoadScenario]:
    benign = _PROFILE_BY_NAME["benign"]
    syn_flood = _PROFILE_BY_NAME["syn_flood"]
    port_scan = _PROFILE_BY_NAME["port_scan"]
    exfiltration = _PROFILE_BY_NAME["exfiltration"]
    bruteforce = _PROFILE_BY_NAME["ssh_bruteforce"]

    calm_profiles, calm_weights = _benign_heavy(
        "port_scan", "ssh_bruteforce", benign_weight=0.9
    )

    mixed_benign = LoadScenario(
        name="mixed_benign",
        description="steady-state default mix, mostly benign",
        phases=(
            ScenarioPhase(
                name="steady",
                flows=400,
                profiles=DEFAULT_PROFILES,
            ),
        ),
        tabular_preset="paper",
    )

    ddos_burst = LoadScenario(
        name="ddos_burst",
        description="benign baseline, SYN-flood burst, recovery",
        phases=(
            ScenarioPhase("baseline", 120, calm_profiles, calm_weights),
            ScenarioPhase(
                "burst",
                200,
                (benign, syn_flood),
                (0.15, 0.85),
                gap_seconds=10.0,
            ),
            ScenarioPhase("recovery", 80, calm_profiles, calm_weights),
        ),
        tabular_preset="paper",
    )

    sweep_scan = replace(port_scan, dst_ports=tuple(range(1, 4096, 3)))
    port_scan_sweep = LoadScenario(
        name="port_scan_sweep",
        description="scanner sweeping thousands of ports under benign cover",
        phases=(
            ScenarioPhase("cover", 100, calm_profiles, calm_weights),
            ScenarioPhase("sweep", 180, (benign, sweep_scan), (0.45, 0.55)),
        ),
        tabular_preset="clean",
    )

    slow_exfil = replace(
        exfiltration,
        packets_per_flow=(70.0, 18.0),
        packet_length=(900.0, 180.0),
        inter_arrival=(0.8, 0.3),
    )
    low_and_slow = LoadScenario(
        name="low_and_slow_exfiltration",
        description="rare, slow exfiltration flows hidden in benign traffic",
        phases=(
            ScenarioPhase(
                "covert",
                320,
                (benign, bruteforce, slow_exfil),
                (0.9, 0.04, 0.06),
            ),
        ),
        tabular_preset="hard",
    )

    drifted_benign = replace(
        benign,
        packet_length=(980.0, 400.0),
        inter_arrival=(0.03, 0.015),
        packets_per_flow=(26.0, 10.0),
    )
    drifted_bruteforce = replace(
        bruteforce,
        packet_length=(220.0, 70.0),
        inter_arrival=(0.12, 0.05),
        packets_per_flow=(40.0, 9.0),
    )
    drift_phases = []
    for index, t in enumerate((0.0, 0.33, 0.67, 1.0)):
        drift_phases.append(
            ScenarioPhase(
                name=f"drift_{index}",
                flows=110,
                profiles=(
                    interpolate_profile(benign, drifted_benign, t),
                    interpolate_profile(bruteforce, drifted_bruteforce, t),
                    port_scan,
                ),
                weights=(0.75, 0.15, 0.10),
            )
        )
    gradual_drift = LoadScenario(
        name="gradual_drift",
        description="benign and attack statistics morph phase by phase",
        phases=tuple(drift_phases),
        tabular_preset="drift_onset",
    )

    scenarios = (
        mixed_benign,
        ddos_burst,
        port_scan_sweep,
        low_and_slow,
        gradual_drift,
    )
    return {scenario.name: scenario for scenario in scenarios}


#: The scenario registry, keyed by name.
SCENARIOS: Dict[str, LoadScenario] = _build_scenarios()


def scenario_names() -> List[str]:
    """Registered scenario names."""
    return sorted(SCENARIOS)


def get_scenario(name: str) -> LoadScenario:
    """Look a scenario up by name."""
    try:
        return SCENARIOS[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown load scenario {name!r}; available: {scenario_names()}"
        ) from exc


#: Benign label spellings (mirrors ``DetectionPipeline.DEFAULT_BENIGN_NAMES``).
_BENIGN_LABELS = frozenset({"benign", "normal", "background"})


def compile_scenario_trace(
    scenario: LoadScenario,
    flows_scale: float = 1.0,
    seed: int = 0,
    start_time: float = 0.0,
    idle_timeout: float = 5.0,
):
    """Compile a load scenario into a replayable ground-truth trace.

    The scenario's packet stream is assembled offline through the same
    :class:`~repro.nids.flow.FlowTable` semantics the serving path uses
    (same idle timeout, same any-attack-packet-taints-the-flow labeling),
    giving every flow the canonical token replay predictions join against.
    The result is a :class:`~repro.replay.CompiledTrace`, so the whole
    replay toolchain — :class:`~repro.replay.TraceReplayer`,
    :func:`~repro.replay.detection_metrics`,
    :func:`~repro.replay.per_attack_type_recall` — grades scenario traffic
    exactly the way it grades dataset traces.

    Synthetic endpoint pairs can collide across phases (unlike the dataset
    compiler, the traffic generator does not reserve unique 5-tuples), so
    flows sharing a token are merged into one ground-truth entry; an attack
    label wins over benign, matching the flow table's own tainting rule.
    """
    from repro.nids.flow import FlowTable
    from repro.replay.compiler import CompiledTrace, TraceFlow

    packets = scenario.build_packets(
        seed=seed, flows_scale=flows_scale, start_time=start_time
    )
    table = FlowTable(idle_timeout=idle_timeout)
    records = table.add_packets(packets) + table.flush()

    merged: Dict[str, Dict[str, object]] = {}
    for record in records:
        token = record.key.token
        entry = merged.get(token)
        if entry is None:
            merged[token] = {
                "label": record.label,
                "protocol": record.key.protocol,
                "n_packets": record.fwd_packets + record.bwd_packets,
                "n_bytes": record.fwd_bytes + record.bwd_bytes,
                "start_time": record.start_time,
                "end_time": record.end_time,
            }
            continue
        if (
            entry["label"].lower() in _BENIGN_LABELS
            and record.label.lower() not in _BENIGN_LABELS
        ):
            entry["label"] = record.label
        entry["n_packets"] += record.fwd_packets + record.bwd_packets
        entry["n_bytes"] += record.fwd_bytes + record.bwd_bytes
        entry["start_time"] = min(entry["start_time"], record.start_time)
        entry["end_time"] = max(entry["end_time"], record.end_time)

    flows = [
        TraceFlow(
            token=token,
            row_index=index,
            label=str(entry["label"]),
            is_attack=str(entry["label"]).lower() not in _BENIGN_LABELS,
            protocol=str(entry["protocol"]),
            n_packets=int(entry["n_packets"]),
            n_bytes=int(entry["n_bytes"]),
            start_time=float(entry["start_time"]),
            end_time=float(entry["end_time"]),
        )
        for index, (token, entry) in enumerate(merged.items())
    ]
    class_names = tuple(sorted({flow.label for flow in flows}))
    return CompiledTrace(
        name=f"scenario:{scenario.name}",
        dataset_name=scenario.name,
        split="scenario",
        seed=seed,
        class_names=class_names,
        attack_classes=frozenset(
            name for name in class_names if name.lower() not in _BENIGN_LABELS
        ),
        packets=packets,
        flows=flows,
    )
