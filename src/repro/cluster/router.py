"""Shard routing: the flow 5-tuple -> worker mapping.

Sharded serving only works if *every* packet of a flow reaches the same
worker: flow assembly is stateful (the :class:`repro.nids.flow.FlowTable`
accumulates running aggregates per 5-tuple), so splitting one flow across
replicas would corrupt its statistics.  The :class:`ShardRouter` therefore
hashes the **canonical bidirectional flow key** -- both directions of a
connection map to the same worker -- with a hash that is stable across
processes and interpreter runs (Python's builtin ``hash`` is salted per
process and is useless here).

Routing uses a consistent-hash ring with virtual nodes: each worker owns
``vnodes`` pseudo-random points on a 64-bit ring, and a key belongs to the
worker owning the first ring point clockwise of the key's hash.  Compared to
``hash(key) % n_workers``, resizing the cluster from ``n`` to ``n+1`` workers
remaps only ``~1/(n+1)`` of the keyspace instead of nearly all of it -- the
property that lets a deployment scale workers without re-homing (and
re-assembling) every active flow.
"""

from __future__ import annotations

import bisect
from hashlib import blake2b
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nids.flow import FlowKey
from repro.nids.packets import Packet

_HASH_BITS = 64

#: Below this many packets the scalar path wins (no array setup cost).
_VECTOR_MIN_BATCH = 16

#: Bound on the per-router token->shard memo; a pathological stream of
#: never-repeating flows must not grow coordinator memory without limit.
_MEMO_MAX_ENTRIES = 1 << 20


def stable_hash64(text: str) -> int:
    """A process-stable 64-bit hash of ``text`` (blake2b, not salted)."""
    return int.from_bytes(blake2b(text.encode("utf-8"), digest_size=8).digest(), "big")


def flow_key_token(key: FlowKey) -> str:
    """The canonical string hashed for routing (:attr:`FlowKey.token`)."""
    return key.token


class ShardRouter:
    """Consistent-hash router from flow keys to worker shards.

    Parameters
    ----------
    n_workers:
        Number of shards.
    vnodes:
        Virtual nodes per worker.  More vnodes smooth the load distribution
        (the standard deviation of shard sizes shrinks roughly with
        ``1/sqrt(vnodes)``) at a small memory cost in the ring.
    """

    def __init__(self, n_workers: int, vnodes: int = 64):
        if n_workers < 1:
            raise ConfigurationError("n_workers must be >= 1")
        if vnodes < 1:
            raise ConfigurationError("vnodes must be >= 1")
        self.n_workers = int(n_workers)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, int]] = []
        for worker in range(self.n_workers):
            for replica in range(self.vnodes):
                points.append((stable_hash64(f"shard:{worker}:vnode:{replica}"), worker))
        points.sort()
        self._ring_hashes = [h for h, _ in points]
        self._ring_workers = [w for _, w in points]
        self._finish_init()

    def _finish_init(self) -> None:
        """Derive the vectorized ring arrays + memo from the point lists."""
        self._ring_hash_arr = np.array(self._ring_hashes, dtype=np.uint64)
        self._ring_worker_arr = np.array(self._ring_workers, dtype=np.int64)
        self._shard_memo: Dict[str, int] = {}

    # ------------------------------------------------------------------- API
    def shard_for_key(self, key: FlowKey) -> int:
        """The worker owning ``key``'s state."""
        return self._shard_for_hash(stable_hash64(flow_key_token(key)))

    def shard_for_packet(self, packet: Packet) -> int:
        """The worker that must receive ``packet`` (via its canonical key)."""
        return self.shard_for_key(FlowKey.from_packet(packet))

    def partition_packets(self, packets: Sequence[Packet]) -> List[List[Packet]]:
        """Split a time-ordered packet batch into per-worker sub-batches.

        Relative packet order is preserved within each shard, which is all
        the flow tables need (their time-order contract is per flow, and a
        flow lives entirely inside one shard).

        This is the coordinator's fan-out hot path: shard assignments are
        computed in one vectorized pass (:meth:`shards_for_tokens`) instead
        of hashing + bisecting per packet.  Batches below
        ``_VECTOR_MIN_BATCH`` take the scalar path, whose output the
        vectorized path matches packet-for-packet (property-tested).
        """
        if self.n_workers == 1:
            return [list(packets)]
        if len(packets) < _VECTOR_MIN_BATCH:
            return self._partition_packets_scalar(packets)
        tokens: List[str] = []
        for p in packets:
            # Inline FlowKey.from_packet's canonicalization + .token: one
            # string build per packet, no per-packet dataclass.
            forward = (p.src_ip, p.src_port, p.dst_ip, p.dst_port)
            backward = (p.dst_ip, p.dst_port, p.src_ip, p.src_port)
            a = forward if forward <= backward else backward
            tokens.append(f"{a[0]}:{a[1]}|{a[2]}:{a[3]}|{p.protocol}")
        assignments = self.shards_for_tokens(tokens)
        shards: List[List[Packet]] = [[] for _ in range(self.n_workers)]
        appenders = [shard.append for shard in shards]
        for packet, shard_id in zip(packets, assignments.tolist()):
            appenders[shard_id](packet)
        return shards

    def shards_for_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Shard assignments for a token array in one NumPy pass.

        blake2b itself has no batch form, so it runs only for tokens never
        seen by this router (memoized across the stream -- live traffic
        revisits the same flows constantly); the ring lookup for the new
        hashes is a single vectorized ``searchsorted`` and every repeated
        token resolves through ``np.unique``'s inverse mapping.
        """
        uniques, inverse = np.unique(np.asarray(tokens, dtype=object), return_inverse=True)
        memo = self._shard_memo
        shard_of_unique = np.empty(len(uniques), dtype=np.int64)
        missing: List[int] = []
        for i, token in enumerate(uniques):
            cached = memo.get(token)
            if cached is None:
                missing.append(i)
            else:
                shard_of_unique[i] = cached
        if missing:
            hashes = np.array(
                [stable_hash64(uniques[i]) for i in missing], dtype=np.uint64
            )
            idx = np.searchsorted(self._ring_hash_arr, hashes, side="right")
            idx[idx == len(self._ring_hash_arr)] = 0  # wrap around the ring
            resolved = self._ring_worker_arr[idx]
            if len(memo) + len(missing) > _MEMO_MAX_ENTRIES:
                memo.clear()
            for i, shard_id in zip(missing, resolved.tolist()):
                shard_of_unique[i] = shard_id
                memo[uniques[i]] = shard_id
        return shard_of_unique[inverse]

    def _partition_packets_scalar(
        self, packets: Sequence[Packet]
    ) -> List[List[Packet]]:
        """The reference per-packet path (small batches + property tests)."""
        shards: List[List[Packet]] = [[] for _ in range(self.n_workers)]
        cache: Dict[FlowKey, int] = {}
        for packet in packets:
            key = FlowKey.from_packet(packet)
            shard = cache.get(key)
            if shard is None:
                shard = cache[key] = self.shard_for_key(key)
            shards[shard].append(packet)
        return shards

    def excluding(self, dead_workers: Iterable[int]) -> "ShardRouter":
        """A failover view of the ring without the dead workers' vnodes.

        Surviving workers keep their exact ring points, so every key they
        already owned stays put; only the dead workers' keyspace re-homes
        (clockwise to the next surviving vnode) -- the consistent-hashing
        property that makes temporary failover cheap.  Worker ids are
        preserved: the view routes into the *same* cluster, minus the dead.
        """
        dead = set(dead_workers)
        unknown = dead - set(range(self.n_workers))
        if unknown:
            raise ConfigurationError(f"unknown worker ids: {sorted(unknown)}")
        survivors = [
            (h, w)
            for h, w in zip(self._ring_hashes, self._ring_workers)
            if w not in dead
        ]
        if not survivors:
            raise ConfigurationError("cannot exclude every worker from the ring")
        view = ShardRouter.__new__(ShardRouter)
        view.n_workers = self.n_workers
        view.vnodes = self.vnodes
        view._ring_hashes = [h for h, _ in survivors]
        view._ring_workers = [w for _, w in survivors]
        view._finish_init()
        return view

    def owns(self, worker_id: int):
        """An ownership predicate for ``FlowTable(shard_guard=...)``."""
        if not 0 <= worker_id < self.n_workers:
            raise ConfigurationError(
                f"worker_id must be in [0, {self.n_workers}), got {worker_id}"
            )

        def guard(key: FlowKey) -> bool:
            return self.shard_for_key(key) == worker_id

        return guard

    # ------------------------------------------------------------- internals
    def _shard_for_hash(self, h: int) -> int:
        idx = bisect.bisect_right(self._ring_hashes, h)
        if idx == len(self._ring_hashes):
            idx = 0  # wrap around the ring
        return self._ring_workers[idx]
