"""Zero-copy model publication over ``multiprocessing.shared_memory``.

The heavy tensors of a trained HDC pipeline -- the encoder projection
(``(D, F)`` bases plus phases) and the ``(k, D)`` class-hypervector matrix --
are identical in every worker replica.  Instead of pickling them to each
worker process, the coordinator publishes them once in named shared-memory
blocks; workers attach and build their pipeline replica with NumPy views
directly over the shared buffers (:func:`repro.persistence.pipeline_from_state`
with ``copy_arrays=False``), so N workers cost one copy of the encoder no
matter how large ``D`` grows.

Ownership rules (enforced by convention + the replica build):

* **Encoder tensors** are shared read-only.  Workers never regenerate
  dimensions locally -- drift-time regeneration is a coordinator-level
  operation (it would rewrite the shared bases under every replica's feet).
* **The published class matrix** is written only by the coordinator (merge
  rounds).  Each worker's classifier trains on a *private copy*; the
  attach path re-copies the published matrix into the replica so
  ``partial_fit`` never touches the shared block.
* **The generation counter** (a one-int64 meta block) increments on every
  republish; replicas record the generation they rebased from, which makes
  staleness observable end to end.

Lifecycle: the coordinator ``close()``es *and* ``unlink()``s; workers only
``close()``.  Attaching unregisters the segment from the worker's
``resource_tracker`` (CPython < 3.13 registers on attach as well as create,
which would otherwise tear shared blocks down when the first worker exits).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hdc.backend import row_norms
from repro.hdc.bitpack import PackedClassMatrix
from repro.nids.pipeline import DetectionPipeline
from repro.persistence import pipeline_from_state, pipeline_state_dict

#: State-dict keys whose arrays are published in shared memory; everything
#: else (string tables, scalar params, the scaler's two small vectors) rides
#: along by value in the picklable spec.  The aliases keep block names well
#: under macOS's 31-character POSIX shared-memory name limit.
_SHARED_KEYS = {
    "class_hypervectors": "chv",
    "encoder_bases": "eb",
    "encoder_phases": "ep",
}


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    CPython < 3.13 registers *attachments* with the resource tracker as if
    they were creations (gh-82300); under the ``fork`` start method the
    tracker process is shared with the coordinator, so letting the
    attachment register -- or unregistering it afterwards -- corrupts the
    creator's bookkeeping.  Suppressing registration for the duration of the
    attach leaves exactly one owner: the coordinator's publication.
    """
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    except ImportError:  # pragma: no cover - non-posix fallback
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedBlockSpec:
    """Addressing information for one published array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def view(self, block: shared_memory.SharedMemory) -> np.ndarray:
        """A NumPy view over the block's buffer."""
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=block.buf)


@dataclass(frozen=True)
class PublicationSpec:
    """Everything a worker needs to attach and build its replica (picklable).

    ``packed_block`` / ``packed_state_block`` are present when the published
    classifier serves the packed 1-bit path: the coordinator additionally
    publishes the bit-packed ``uint64`` class words plus a small float64
    state vector ``[scale, norm_0, ..., norm_{k-1}]``, and re-packs both on
    every republish (see :meth:`ModelPublication.repack`).  Replicas then
    score by XOR/popcount against the shared words -- zero copies of the
    packed model per worker.
    """

    blocks: Dict[str, SharedBlockSpec]
    norms_block: SharedBlockSpec
    meta_block_name: str
    small_state: Dict[str, np.ndarray] = field(repr=False)
    packed_block: Optional[SharedBlockSpec] = None
    packed_state_block: Optional[SharedBlockSpec] = None
    packed_dim: int = 0


class ModelPublication:
    """Coordinator-side owner of the shared-memory model blocks.

    Parameters
    ----------
    pipeline:
        The trained :class:`DetectionPipeline` to publish.
    name_prefix:
        Optional shared-memory name prefix (a random token is appended so
        concurrent clusters never collide).
    """

    def __init__(self, pipeline: DetectionPipeline, name_prefix: str = "rp"):
        state = pipeline_state_dict(pipeline)
        # Short names: macOS limits POSIX shm names to 31 chars (incl. the
        # leading slash); "rp-<6 hex>-chv" stays comfortably inside.
        token = f"{name_prefix}-{secrets.token_hex(3)}"
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._specs: Dict[str, SharedBlockSpec] = {}
        created: list = []

        def create_block(name: str, size: int) -> shared_memory.SharedMemory:
            block = shared_memory.SharedMemory(create=True, size=max(1, size), name=name)
            created.append(block)
            return block

        small: Dict[str, np.ndarray] = {}
        try:
            for key, array in state.items():
                alias = _SHARED_KEYS.get(key)
                if alias is not None:
                    array = np.ascontiguousarray(array)
                    block = create_block(f"{token}-{alias}", array.nbytes)
                    spec = SharedBlockSpec(block.name, array.shape, array.dtype.name)
                    spec.view(block)[...] = array
                    self._blocks[key] = block
                    self._specs[key] = spec
                else:
                    small[key] = np.asarray(array)
            classes = self.class_matrix
            norms = row_norms(classes).astype(classes.dtype, copy=False)
            self._norms_block = create_block(f"{token}-cn", norms.nbytes)
            self._norms_spec = SharedBlockSpec(
                self._norms_block.name, norms.shape, norms.dtype.name
            )
            self._norms_spec.view(self._norms_block)[...] = norms
            self._meta_block = create_block(f"{token}-mt", 8)
            # Packed 1-bit publication: the words every replica scores with,
            # plus [scale, norms...] so a repack is one in-place rewrite.
            self._packed_block = None
            self._packed_spec = None
            self._packed_state_block = None
            self._packed_state_spec = None
            self._packed_dim = 0
            if getattr(pipeline.classifier, "uses_packed_inference", False):
                packed = PackedClassMatrix.from_class_matrix(classes)
                self._packed_dim = packed.dim
                self._packed_block = create_block(f"{token}-pw", packed.words.nbytes)
                self._packed_spec = SharedBlockSpec(
                    self._packed_block.name, packed.words.shape, packed.words.dtype.name
                )
                self._packed_spec.view(self._packed_block)[...] = packed.words
                state_vector = np.concatenate(([packed.scale], packed.norms))
                self._packed_state_block = create_block(
                    f"{token}-ps", state_vector.nbytes
                )
                self._packed_state_spec = SharedBlockSpec(
                    self._packed_state_block.name,
                    state_vector.shape,
                    state_vector.dtype.name,
                )
                self._packed_state_spec.view(self._packed_state_block)[...] = state_vector
        except BaseException:
            # A partial publication must not outlive its constructor --
            # /dev/shm exhaustion would otherwise compound on every retry.
            for block in created:
                block.close()
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            raise
        self._meta_view = np.ndarray((1,), dtype=np.int64, buffer=self._meta_block.buf)
        self._meta_view[0] = 0
        self._small_state = small
        self._closed = False

    # ------------------------------------------------------------------- API
    @property
    def class_matrix(self) -> np.ndarray:
        """Writable view of the published ``(k, D)`` class matrix."""
        return self._specs["class_hypervectors"].view(
            self._blocks["class_hypervectors"]
        )

    @property
    def class_norms(self) -> np.ndarray:
        """Writable view of the published cached class norms."""
        return self._norms_spec.view(self._norms_block)

    @property
    def generation(self) -> int:
        """Monotone counter incremented on every republish."""
        return int(self._meta_view[0])

    def spec(self) -> PublicationSpec:
        """The picklable attach handle shipped to worker processes."""
        return PublicationSpec(
            blocks=dict(self._specs),
            norms_block=self._norms_spec,
            meta_block_name=self._meta_block.name,
            small_state=dict(self._small_state),
            packed_block=self._packed_spec,
            packed_state_block=self._packed_state_spec,
            packed_dim=self._packed_dim,
        )

    def state_dict(self) -> Dict[str, np.ndarray]:
        """The *current* full pipeline state of this publication.

        Equivalent to :func:`repro.persistence.pipeline_state_dict` of the
        published pipeline, but read back from the live shared blocks -- so
        class-matrix merges and repacks performed since construction are
        reflected.  Arrays are copies (safe to serialize after ``close``).
        The fabric registry snapshots per-version packed state through this.
        """
        state: Dict[str, np.ndarray] = {
            key: np.array(value, copy=True) for key, value in self._small_state.items()
        }
        for key, spec in self._specs.items():
            state[key] = np.array(spec.view(self._blocks[key]), copy=True)
        if self._packed_spec is not None:
            state["packed_words"] = np.array(
                self._packed_spec.view(self._packed_block), copy=True
            )
            state["packed_state"] = np.array(
                self._packed_state_spec.view(self._packed_state_block), copy=True
            )
            state["packed_dim"] = np.array([self._packed_dim])
        return state

    def repack(self) -> bool:
        """Refresh the published packed words from the current class matrix.

        Called by the coordinator after every delta merge, *before* the
        generation bump: deltas accumulate in the float matrix (additive
        merging is a float-domain property), and the binary serving model is
        re-derived from the merged result.  Returns False when the
        publication carries no packed model.
        """
        if self._packed_spec is None:
            return False
        packed = PackedClassMatrix.from_class_matrix(self.class_matrix)
        self._packed_spec.view(self._packed_block)[...] = packed.words
        state = self._packed_state_spec.view(self._packed_state_block)
        state[0] = packed.scale
        state[1:] = packed.norms
        return True

    def bump_generation(self) -> int:
        """Mark the published model as updated; returns the new generation."""
        self._meta_view[0] += 1
        return int(self._meta_view[0])

    def close(self, unlink: bool = True) -> None:
        """Detach (and, as the owner, destroy) every shared block."""
        if self._closed:
            return
        self._closed = True
        self._meta_view = None
        extra = [
            block
            for block in (self._packed_block, self._packed_state_block)
            if block is not None
        ]
        for block in [*self._blocks.values(), self._norms_block, self._meta_block, *extra]:
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ModelPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AttachedPublication:
    """Worker-side attachment to a :class:`ModelPublication`."""

    def __init__(self, spec: PublicationSpec):
        self.spec = spec
        self._blocks = {key: _attach_block(b.name) for key, b in spec.blocks.items()}
        self._norms_block = _attach_block(spec.norms_block.name)
        self._meta_block = _attach_block(spec.meta_block_name)
        self._meta_view = np.ndarray((1,), dtype=np.int64, buffer=self._meta_block.buf)
        self._packed_block = (
            _attach_block(spec.packed_block.name) if spec.packed_block else None
        )
        self._packed_state_block = (
            _attach_block(spec.packed_state_block.name)
            if spec.packed_state_block
            else None
        )

    # ------------------------------------------------------------------- API
    @property
    def class_matrix(self) -> np.ndarray:
        """Read-only view of the published class matrix."""
        view = self.spec.blocks["class_hypervectors"].view(
            self._blocks["class_hypervectors"]
        )
        view.flags.writeable = False
        return view

    @property
    def class_norms(self) -> np.ndarray:
        """Read-only view of the published class norms."""
        view = self.spec.norms_block.view(self._norms_block)
        view.flags.writeable = False
        return view

    @property
    def generation(self) -> int:
        """Current published generation."""
        return int(self._meta_view[0])

    @property
    def has_packed_model(self) -> bool:
        """Whether the publication carries a packed 1-bit serving model."""
        return self._packed_block is not None

    def packed_matrix(self) -> PackedClassMatrix:
        """A zero-copy :class:`PackedClassMatrix` over the published words.

        The words and norms are read-only views of the shared blocks; the
        scale is read at construction time, so the object is only coherent
        for one published generation -- replicas rebuild it on every rebase
        (:meth:`refresh_replica`), the same staleness contract as the float
        class matrix.
        """
        if self._packed_block is None:
            raise ConfigurationError("publication does not carry a packed model")
        words = self.spec.packed_block.view(self._packed_block)
        words.flags.writeable = False
        state = self.spec.packed_state_block.view(self._packed_state_block)
        norms = state[1:]
        norms.flags.writeable = False
        return PackedClassMatrix(
            words=words,
            dim=int(self.spec.packed_dim),
            scale=float(state[0]),
            norms=norms,
            shared=True,
        )

    def build_replica(self) -> DetectionPipeline:
        """A full pipeline replica over the shared tensors.

        The encoder's projection tensors are zero-copy views of the shared
        blocks; the classifier's class matrix (the part ``partial_fit``
        mutates) is re-copied into private memory, as are its cached norms.
        """
        state: Dict[str, np.ndarray] = dict(self.spec.small_state)
        for key, block_spec in self.spec.blocks.items():
            state[key] = block_spec.view(self._blocks[key])
        pipeline = pipeline_from_state(state, copy_arrays=False)
        classifier = pipeline.classifier
        # Privatize the trainable state; everything else stays shared.
        classifier.class_hypervectors_ = np.array(self.class_matrix, copy=True)
        classifier._class_norms = np.array(self.class_norms, copy=True)
        if self.has_packed_model:
            # Zero-copy packed serving: score against the shared words until
            # a local partial_fit invalidates the cache (the replica then
            # re-packs its private, drifted matrix) or a rebase re-attaches.
            classifier._packed_classes = self.packed_matrix()
        return pipeline

    def refresh_replica(self, classifier) -> int:
        """Rebase a replica's classifier onto the currently published model.

        Returns the generation the replica is now based on.
        """
        classifier.set_class_vectors(self.class_matrix)
        if getattr(classifier, "_class_norms", None) is not None:
            classifier._class_norms[:] = self.class_norms
        if self.has_packed_model:
            # set_class_vectors dropped the packed cache; re-attach the
            # freshly republished words (repacked by the coordinator before
            # the generation bump) instead of re-packing locally.
            classifier._packed_classes = self.packed_matrix()
        return self.generation

    def close(self) -> None:
        """Detach from every block (never unlinks; the coordinator owns them)."""
        self._meta_view = None
        extra = [
            block
            for block in (self._packed_block, self._packed_state_block)
            if block is not None
        ]
        for block in [*self._blocks.values(), self._norms_block, self._meta_block, *extra]:
            try:
                block.close()
            except Exception:  # pragma: no cover - double close on teardown
                pass

    def __enter__(self) -> "AttachedPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
