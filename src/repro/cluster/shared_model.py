"""Zero-copy model publication over ``multiprocessing.shared_memory``.

The heavy tensors of a trained HDC pipeline -- the encoder projection
(``(D, F)`` bases plus phases) and the ``(k, D)`` class-hypervector matrix --
are identical in every worker replica.  Instead of pickling them to each
worker process, the coordinator publishes them once in named shared-memory
blocks; workers attach and build their pipeline replica with NumPy views
directly over the shared buffers (:func:`repro.persistence.pipeline_from_state`
with ``copy_arrays=False``), so N workers cost one copy of the encoder no
matter how large ``D`` grows.

Ownership rules (enforced by convention + the replica build):

* **Encoder tensors** are shared read-only.  Workers never regenerate
  dimensions locally -- drift-time regeneration is a coordinator-level
  operation (it would rewrite the shared bases under every replica's feet).
* **The published class matrix** is written only by the coordinator (merge
  rounds).  Each worker's classifier trains on a *private copy*; the
  attach path re-copies the published matrix into the replica so
  ``partial_fit`` never touches the shared block.
* **The generation counter** (a one-int64 meta block) increments on every
  republish; replicas record the generation they rebased from, which makes
  staleness observable end to end.

Lifecycle: the coordinator ``close()``es *and* ``unlink()``s; workers only
``close()``.  Attaching unregisters the segment from the worker's
``resource_tracker`` (CPython < 3.13 registers on attach as well as create,
which would otherwise tear shared blocks down when the first worker exits).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.hdc.backend import row_norms
from repro.nids.pipeline import DetectionPipeline
from repro.persistence import pipeline_from_state, pipeline_state_dict

#: State-dict keys whose arrays are published in shared memory; everything
#: else (string tables, scalar params, the scaler's two small vectors) rides
#: along by value in the picklable spec.  The aliases keep block names well
#: under macOS's 31-character POSIX shared-memory name limit.
_SHARED_KEYS = {
    "class_hypervectors": "chv",
    "encoder_bases": "eb",
    "encoder_phases": "ep",
}


def _attach_block(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing block without resource-tracker ownership.

    CPython < 3.13 registers *attachments* with the resource tracker as if
    they were creations (gh-82300); under the ``fork`` start method the
    tracker process is shared with the coordinator, so letting the
    attachment register -- or unregistering it afterwards -- corrupts the
    creator's bookkeeping.  Suppressing registration for the duration of the
    attach leaves exactly one owner: the coordinator's publication.
    """
    try:
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    except ImportError:  # pragma: no cover - non-posix fallback
        return shared_memory.SharedMemory(name=name)


@dataclass(frozen=True)
class SharedBlockSpec:
    """Addressing information for one published array."""

    name: str
    shape: Tuple[int, ...]
    dtype: str

    def view(self, block: shared_memory.SharedMemory) -> np.ndarray:
        """A NumPy view over the block's buffer."""
        return np.ndarray(self.shape, dtype=np.dtype(self.dtype), buffer=block.buf)


@dataclass(frozen=True)
class PublicationSpec:
    """Everything a worker needs to attach and build its replica (picklable)."""

    blocks: Dict[str, SharedBlockSpec]
    norms_block: SharedBlockSpec
    meta_block_name: str
    small_state: Dict[str, np.ndarray] = field(repr=False)


class ModelPublication:
    """Coordinator-side owner of the shared-memory model blocks.

    Parameters
    ----------
    pipeline:
        The trained :class:`DetectionPipeline` to publish.
    name_prefix:
        Optional shared-memory name prefix (a random token is appended so
        concurrent clusters never collide).
    """

    def __init__(self, pipeline: DetectionPipeline, name_prefix: str = "rp"):
        state = pipeline_state_dict(pipeline)
        # Short names: macOS limits POSIX shm names to 31 chars (incl. the
        # leading slash); "rp-<6 hex>-chv" stays comfortably inside.
        token = f"{name_prefix}-{secrets.token_hex(3)}"
        self._blocks: Dict[str, shared_memory.SharedMemory] = {}
        self._specs: Dict[str, SharedBlockSpec] = {}
        created: list = []

        def create_block(name: str, size: int) -> shared_memory.SharedMemory:
            block = shared_memory.SharedMemory(create=True, size=max(1, size), name=name)
            created.append(block)
            return block

        small: Dict[str, np.ndarray] = {}
        try:
            for key, array in state.items():
                alias = _SHARED_KEYS.get(key)
                if alias is not None:
                    array = np.ascontiguousarray(array)
                    block = create_block(f"{token}-{alias}", array.nbytes)
                    spec = SharedBlockSpec(block.name, array.shape, array.dtype.name)
                    spec.view(block)[...] = array
                    self._blocks[key] = block
                    self._specs[key] = spec
                else:
                    small[key] = np.asarray(array)
            classes = self.class_matrix
            norms = row_norms(classes).astype(classes.dtype, copy=False)
            self._norms_block = create_block(f"{token}-cn", norms.nbytes)
            self._norms_spec = SharedBlockSpec(
                self._norms_block.name, norms.shape, norms.dtype.name
            )
            self._norms_spec.view(self._norms_block)[...] = norms
            self._meta_block = create_block(f"{token}-mt", 8)
        except BaseException:
            # A partial publication must not outlive its constructor --
            # /dev/shm exhaustion would otherwise compound on every retry.
            for block in created:
                block.close()
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
            raise
        self._meta_view = np.ndarray((1,), dtype=np.int64, buffer=self._meta_block.buf)
        self._meta_view[0] = 0
        self._small_state = small
        self._closed = False

    # ------------------------------------------------------------------- API
    @property
    def class_matrix(self) -> np.ndarray:
        """Writable view of the published ``(k, D)`` class matrix."""
        return self._specs["class_hypervectors"].view(
            self._blocks["class_hypervectors"]
        )

    @property
    def class_norms(self) -> np.ndarray:
        """Writable view of the published cached class norms."""
        return self._norms_spec.view(self._norms_block)

    @property
    def generation(self) -> int:
        """Monotone counter incremented on every republish."""
        return int(self._meta_view[0])

    def spec(self) -> PublicationSpec:
        """The picklable attach handle shipped to worker processes."""
        return PublicationSpec(
            blocks=dict(self._specs),
            norms_block=self._norms_spec,
            meta_block_name=self._meta_block.name,
            small_state=dict(self._small_state),
        )

    def bump_generation(self) -> int:
        """Mark the published model as updated; returns the new generation."""
        self._meta_view[0] += 1
        return int(self._meta_view[0])

    def close(self, unlink: bool = True) -> None:
        """Detach (and, as the owner, destroy) every shared block."""
        if self._closed:
            return
        self._closed = True
        self._meta_view = None
        for block in [*self._blocks.values(), self._norms_block, self._meta_block]:
            block.close()
            if unlink:
                try:
                    block.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass

    def __enter__(self) -> "ModelPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AttachedPublication:
    """Worker-side attachment to a :class:`ModelPublication`."""

    def __init__(self, spec: PublicationSpec):
        self.spec = spec
        self._blocks = {key: _attach_block(b.name) for key, b in spec.blocks.items()}
        self._norms_block = _attach_block(spec.norms_block.name)
        self._meta_block = _attach_block(spec.meta_block_name)
        self._meta_view = np.ndarray((1,), dtype=np.int64, buffer=self._meta_block.buf)

    # ------------------------------------------------------------------- API
    @property
    def class_matrix(self) -> np.ndarray:
        """Read-only view of the published class matrix."""
        view = self.spec.blocks["class_hypervectors"].view(
            self._blocks["class_hypervectors"]
        )
        view.flags.writeable = False
        return view

    @property
    def class_norms(self) -> np.ndarray:
        """Read-only view of the published class norms."""
        view = self.spec.norms_block.view(self._norms_block)
        view.flags.writeable = False
        return view

    @property
    def generation(self) -> int:
        """Current published generation."""
        return int(self._meta_view[0])

    def build_replica(self) -> DetectionPipeline:
        """A full pipeline replica over the shared tensors.

        The encoder's projection tensors are zero-copy views of the shared
        blocks; the classifier's class matrix (the part ``partial_fit``
        mutates) is re-copied into private memory, as are its cached norms.
        """
        state: Dict[str, np.ndarray] = dict(self.spec.small_state)
        for key, block_spec in self.spec.blocks.items():
            state[key] = block_spec.view(self._blocks[key])
        pipeline = pipeline_from_state(state, copy_arrays=False)
        classifier = pipeline.classifier
        # Privatize the trainable state; everything else stays shared.
        classifier.class_hypervectors_ = np.array(self.class_matrix, copy=True)
        classifier._class_norms = np.array(self.class_norms, copy=True)
        return pipeline

    def refresh_replica(self, classifier) -> int:
        """Rebase a replica's classifier onto the currently published model.

        Returns the generation the replica is now based on.
        """
        classifier.set_class_vectors(self.class_matrix)
        if getattr(classifier, "_class_norms", None) is not None:
            classifier._class_norms[:] = self.class_norms
        return self.generation

    def close(self) -> None:
        """Detach from every block (never unlinks; the coordinator owns them)."""
        self._meta_view = None
        for block in [*self._blocks.values(), self._norms_block, self._meta_block]:
            try:
                block.close()
            except Exception:  # pragma: no cover - double close on teardown
                pass

    def __enter__(self) -> "AttachedPublication":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
