"""Chaos harness: scripted process faults injected into a live cluster replay.

PR 5's :class:`~repro.serving.faults.ServingFaultInjector` proved the *model*
half of the paper's robustness claim (recall stays flat under bit flips).
This module proves the *process* half against the supervision layer
(:mod:`repro.cluster.supervision`): SIGKILL a worker mid-replay, hang one,
slow one down, or make one exit cleanly-but-prematurely -- on a schedule
expressed as fractions of the packet stream -- and measure what the paper's
philosophy demands (inject with ground truth, quantify degradation):

* detection latency (injection to watchdog flag) and recovery latency
  (flag to redispatch complete), from the coordinator's failure records;
* redispatched / shed batch counts and duplicate-suppressed re-scorings;
* golden-trace flow parity and recall/precision against the compiled
  trace's ground truth, with and without the injected faults.

Fault specs are compact strings, composable into a schedule::

    kill:0@0.4        SIGKILL worker 0 at 40% of the stream
    hang:1@0.5        worker 1 stops heartbeating at 50% (killed by watchdog)
    hang:1@0.5:2.0    ... but wakes up by itself after 2s (a transient stall)
    delay:0@0.25:1.5  worker 0 stalls 1.5s but keeps heartbeating (slow, alive)
    exit:1@0.6        worker 1 exits cleanly (code 0) without a final report

Bit flips compose on top: :func:`run_chaos_replay` accepts an
``error_rate`` that corrupts the published model for the whole run, so a
single run can measure crash recovery *under* memory faults.  The bench
suite (``repro bench --suite chaos``) sweeps these scenarios into
``BENCH_chaos.json``; ``repro replay --chaos SPEC`` runs one interactively.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, Iterator, List, Optional

from repro.cluster.coordinator import ClusterConfig, ClusterCoordinator, ClusterReport
from repro.cluster.supervision import RetryPolicy
from repro.cluster.worker import ChaosExit, ChaosHang
from repro.exceptions import ConfigurationError
from repro.nids.packets import Packet
from repro.nids.pipeline import DetectionPipeline
from repro.serving.faults import ServingFaultInjector

if TYPE_CHECKING:  # repro.replay imports this package back (golden's cluster
    # path), so the replay types are imported lazily at call time.
    from repro.replay.compiler import CompiledTrace
    from repro.replay.golden import GoldenTrace, ParityReport

CHAOS_KINDS = ("kill", "hang", "delay", "exit")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted fault: do ``kind`` to ``worker_id`` at ``at_fraction``."""

    kind: str
    worker_id: int
    #: Position in the packet stream, as a fraction in [0, 1).
    at_fraction: float
    #: Stall duration for hang/delay; ``0`` hangs until the watchdog kills.
    seconds: float = 0.0

    def validate(self) -> "ChaosEvent":
        """Check ranges and return ``self``."""
        if self.kind not in CHAOS_KINDS:
            raise ConfigurationError(
                f"unknown chaos kind {self.kind!r}; supported: {CHAOS_KINDS}"
            )
        if self.worker_id < 0:
            raise ConfigurationError("worker_id must be non-negative")
        if not 0.0 <= self.at_fraction < 1.0:
            raise ConfigurationError("at_fraction must be in [0, 1)")
        if self.seconds < 0:
            raise ConfigurationError("seconds must be non-negative")
        return self

    @classmethod
    def parse(cls, spec: str) -> "ChaosEvent":
        """Parse ``kind:worker@fraction[:seconds]`` (see module docstring)."""
        try:
            kind, rest = spec.split(":", 1)
            target, position = rest.split("@", 1)
            seconds = 0.0
            if ":" in position:
                position, duration = position.split(":", 1)
                seconds = float(duration)
            return cls(
                kind=kind.strip(),
                worker_id=int(target),
                at_fraction=float(position),
                seconds=seconds,
            ).validate()
        except (ValueError, TypeError) as exc:
            raise ConfigurationError(
                f"bad chaos spec {spec!r} (expected kind:worker@fraction[:seconds], "
                f"e.g. 'kill:0@0.4' or 'hang:1@0.5:2.0'): {exc}"
            ) from None

    def __str__(self) -> str:
        base = f"{self.kind}:{self.worker_id}@{self.at_fraction:g}"
        return f"{base}:{self.seconds:g}" if self.seconds else base


@dataclass(frozen=True)
class ChaosSchedule:
    """An ordered fault schedule over one packet stream."""

    events: tuple

    @classmethod
    def of(cls, events: Iterable[ChaosEvent]) -> "ChaosSchedule":
        """Build from events (sorted by stream position)."""
        ordered = tuple(
            sorted((e.validate() for e in events), key=lambda e: e.at_fraction)
        )
        return cls(events=ordered)

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "ChaosSchedule":
        """Build from spec strings like ``["kill:0@0.4", "hang:1@0.7"]``."""
        return cls.of(ChaosEvent.parse(spec) for spec in specs)

    def __len__(self) -> int:
        return len(self.events)


@dataclass
class InjectionRecord:
    """One fault actually fired into the running cluster."""

    event: ChaosEvent
    packet_index: int
    injected_at: float
    delivered: bool = True

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "event": str(self.event),
            "kind": self.event.kind,
            "worker_id": self.event.worker_id,
            "packet_index": self.packet_index,
            "injected_at": self.injected_at,
            "delivered": self.delivered,
        }


class ChaosInjector:
    """Fires a schedule's faults while the coordinator consumes the stream.

    Wraps the packet iterable: faults fire on the coordinator thread between
    chunk dispatches, exactly where real operational faults land relative to
    routing.  ``kill`` uses the coordinator's SIGKILL primitive; ``hang``,
    ``delay`` and ``exit`` are delivered as inbox messages, so they queue
    FIFO behind the batches already dispatched -- like a real stall, they
    strike whenever the worker gets there.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        schedule: ChaosSchedule,
        total_packets: int,
    ):
        if total_packets < 1:
            raise ConfigurationError("total_packets must be >= 1")
        self.coordinator = coordinator
        self.schedule = schedule
        self.total_packets = int(total_packets)
        self.records: List[InjectionRecord] = []
        self._pending = list(schedule.events)

    def stream(self, packets: Iterable[Packet]) -> Iterator[Packet]:
        """The wrapped packet stream; drive it through ``coordinator.serve``."""
        index = 0
        for packet in packets:
            while self._pending and index >= self._pending[0].at_fraction * self.total_packets:
                self._fire(self._pending.pop(0), index)
            yield packet
            index += 1
        # Events scheduled past the actual stream length still fire once the
        # stream ends, so a schedule is never silently skipped.
        while self._pending:
            self._fire(self._pending.pop(0), index)

    # ------------------------------------------------------------- internals
    def _fire(self, event: ChaosEvent, index: int) -> None:
        delivered = True
        if event.kind == "kill":
            self.coordinator.kill_worker(event.worker_id)
        elif event.kind == "hang":
            delivered = self.coordinator.inject(
                event.worker_id, ChaosHang(seconds=event.seconds, stamp_heartbeat=False)
            )
        elif event.kind == "delay":
            delivered = self.coordinator.inject(
                event.worker_id, ChaosHang(seconds=event.seconds, stamp_heartbeat=True)
            )
        else:  # exit
            delivered = self.coordinator.inject(event.worker_id, ChaosExit())
        self.records.append(
            InjectionRecord(
                event=event,
                packet_index=index,
                injected_at=time.time(),
                delivered=delivered,
            )
        )


@dataclass
class ChaosRunResult:
    """Everything one chaos replay measured."""

    report: ClusterReport
    parity: ParityReport
    metrics: Dict[str, float]
    injections: List[InjectionRecord] = field(default_factory=list)

    @property
    def detection_seconds(self) -> float:
        """Worst injection-to-detection latency across matched failures.

        Each failure is matched to the latest injection at or before its
        detection time targeting the same worker; unmatched failures (e.g.
        cascades) are ignored.  0 when nothing was injected or detected.
        """
        worst = 0.0
        for failure in self.report.recovery.failures:
            candidates = [
                r.injected_at
                for r in self.injections
                if r.event.worker_id == failure.worker_id
                and r.injected_at <= failure.detected_at
            ]
            if candidates:
                worst = max(worst, failure.detected_at - max(candidates))
        return worst

    @property
    def recovery_seconds(self) -> float:
        """Worst detection-to-recovery latency (0 when nothing recovered)."""
        return self.report.recovery.max_recovery_seconds

    @property
    def ok(self) -> bool:
        """Recovered completely: flow parity held and nothing was shed."""
        return self.parity.ok and self.report.recovery.unrecovered_batches == 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "ok": self.ok,
            "parity": self.parity.to_dict(),
            "metrics": self.metrics,
            "detection_seconds": self.detection_seconds,
            "recovery_seconds": self.recovery_seconds,
            "injections": [r.to_dict() for r in self.injections],
            "recovery": self.report.recovery.to_dict(),
            "shed_stats": self.report.shed_stats,
        }


def default_chaos_policy() -> RetryPolicy:
    """The chaos harness's tightened supervision policy.

    Production defaults tolerate 10s stalls; a replay harness wants fast,
    measurable detection, so heartbeats are checked an order of magnitude
    tighter while respawn/backoff semantics stay at their defaults.
    """
    return RetryPolicy(
        heartbeat_interval=0.1,
        heartbeat_timeout=1.5,
        check_interval=0.05,
        respawn_backoff=0.02,
    )


def run_chaos_replay(
    pipeline: DetectionPipeline,
    trace: CompiledTrace,
    schedule: Optional[ChaosSchedule] = None,
    golden: Optional[GoldenTrace] = None,
    n_workers: int = 2,
    batch_size: int = 256,
    idle_timeout: float = 5.0,
    policy: Optional[RetryPolicy] = None,
    error_rate: float = 0.0,
    seed: int = 0,
) -> ChaosRunResult:
    """One cluster replay under a fault schedule, measured against golden.

    With ``schedule=None`` this is the crash-free baseline the chaos bench
    compares against.  ``error_rate > 0`` additionally corrupts the
    published model's packed words for the whole run (composing PR 5's
    bit-flip injector with process faults); the golden record is taken from
    the *pristine* model, so parity is only expected at ``error_rate=0`` --
    the point of the composition is the recall curve, not parity.
    """
    from repro.replay.golden import GoldenTrace, diff_against_golden
    from repro.replay.replayer import detection_metrics

    if golden is None:
        golden = GoldenTrace.record(pipeline, trace, idle_timeout=idle_timeout)
    pipeline.alert_manager.clear()
    fault_injector: Optional[ServingFaultInjector] = None
    if error_rate > 0:
        fault_injector = ServingFaultInjector(error_rate, seed=seed)
        fault_injector.inject(pipeline.classifier)
    try:
        coordinator = ClusterCoordinator(
            pipeline,
            ClusterConfig(
                n_workers=n_workers,
                batch_size=batch_size,
                online=False,
                idle_timeout=idle_timeout,
                capture_predictions=True,
                retry=policy or default_chaos_policy(),
            ),
        )
        injector = (
            ChaosInjector(coordinator, schedule, trace.n_packets)
            if schedule is not None and len(schedule)
            else None
        )
        packets = injector.stream(trace.packets) if injector else trace.packets
        report = coordinator.serve(packets)
    finally:
        if fault_injector is not None:
            fault_injector.restore(pipeline.classifier)
    observed = {record.token: record for record in (report.flow_predictions or [])}
    label = "chaos" if schedule is not None and len(schedule) else "baseline"
    parity = diff_against_golden(
        golden, observed, path=f"cluster_{n_workers}w_{label}"
    )
    return ChaosRunResult(
        report=report,
        parity=parity,
        metrics=detection_metrics(trace, observed),
        injections=injector.records if injector else [],
    )


__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosInjector",
    "ChaosRunResult",
    "ChaosSchedule",
    "InjectionRecord",
    "default_chaos_policy",
    "run_chaos_replay",
]
