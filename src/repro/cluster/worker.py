"""Cluster worker: one sharded serving replica in its own process.

Each worker hosts a *complete* packets->alerts pipeline -- shard-guarded flow
table, feature extraction, classification against the shared-memory model
replica, alerting -- plus the online-learning half of the cluster contract:
``partial_fit`` updates accumulate in the replica's **private** class-matrix
copy, and on a sync round the worker reports the delta against the base it
last rebased from.  The coordinator merges deltas additively and republishes;
the worker then rebases onto the merged model and keeps serving.

:class:`WorkerRuntime` holds all of that logic in-process (the equivalence
tests drive it directly, deterministically); :func:`cluster_worker_main` is
the thin message loop that ``multiprocessing.Process`` runs around it.
"""

from __future__ import annotations

import queue as queue_module
import signal
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cluster.router import ShardRouter
from repro.cluster.shared_model import AttachedPublication, PublicationSpec
from repro.nids.flow import FlowTable
from repro.nids.packets import Packet
from repro.serving.stages import (
    FlowAssemblyStage,
    FlowPrediction,
    ServingBatch,
    batch_flow_predictions,
    run_stages,
)
from repro.serving.telemetry import TelemetryRecorder


# --------------------------------------------------------------- wire format
@dataclass(frozen=True)
class PacketBatch:
    """One routed batch of packets for a worker's shard.

    ``learn`` is cleared on redispatched batches whose online updates were
    already merged into the published model at a sync round before the crash:
    re-serving them rebuilds flow state for golden-trace parity, but learning
    them again would double-count their samples in the shared model.
    """

    seq: int
    packets: List[Packet]
    learn: bool = True


@dataclass(frozen=True)
class BatchAck:
    """Per-batch receipt in the worker's report stream.

    The coordinator's batch ledger retains a dispatched batch until it is
    acked *and* below the worker's ``watermark``: the lowest per-incarnation
    batch index that still contributes packets to a flow open in the
    worker's flow table (== the batches-handled count when nothing is open).
    Replaying the retained suffix into a respawned worker therefore rebuilds
    every unclassified flow byte-for-byte.

    With prediction capture on, each ack also drains the worker's captured
    :class:`FlowPrediction` records incrementally, so a later crash cannot
    lose the evidence of flows that were already served.
    """

    worker_id: int
    seq: int
    index: int
    watermark: int
    packets: int
    flows: int
    alerts: int
    predictions: Optional[List[FlowPrediction]] = None


@dataclass(frozen=True)
class ChaosHang:
    """Chaos-harness message: stop servicing the inbox for ``seconds``.

    With ``stamp_heartbeat`` the worker keeps stamping while stalled -- a
    *slow* worker the watchdog must tolerate.  Without it the heartbeat goes
    stale and the watchdog SIGKILLs the worker -- a hang.  ``seconds <= 0``
    hangs until killed.
    """

    seconds: float
    stamp_heartbeat: bool = False


@dataclass(frozen=True)
class ChaosExit:
    """Chaos-harness message: exit cleanly (code 0) without a final report.

    Models the buggy-deploy failure the original ``_collect`` filter missed:
    a worker that is gone but owes messages, with nothing suspicious in its
    exit code.
    """


@dataclass(frozen=True)
class SyncRequest:
    """Coordinator asks for the worker's class-vector delta."""

    round_id: int


@dataclass(frozen=True)
class Rebase:
    """Coordinator republished the merged model; rebase onto it."""

    round_id: int
    generation: int


@dataclass(frozen=True)
class Stop:
    """Drain, flush, report and exit."""


@dataclass(frozen=True)
class DeltaReport:
    """A worker's accumulated class-matrix update since its last rebase."""

    worker_id: int
    round_id: int
    delta: np.ndarray
    online_updates: int
    online_samples: int


@dataclass
class WorkerSummary:
    """Per-worker serving statistics shipped back at shutdown.

    Two busy measures are kept deliberately.  ``busy_seconds`` is wall time
    inside batch processing: on an oversubscribed host it includes time the
    scheduler gave to sibling processes, so it describes *this run*, not the
    replica.  ``busy_cpu_seconds`` is the process CPU time actually consumed
    by the same work: it equals wall time once the worker has a core to
    itself, which makes ``flows / busy_cpu_seconds`` the replica's sustained
    per-core rate -- the quantity the scaling benchmark aggregates.
    """

    worker_id: int
    packets: int = 0
    flows: int = 0
    alerts: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    busy_cpu_seconds: float = 0.0
    online_updates: int = 0
    online_samples: int = 0
    rebase_generation: int = 0
    telemetry: Dict[str, Dict[str, float]] = field(default_factory=dict)
    severities: Dict[str, int] = field(default_factory=dict)

    @property
    def flow_throughput(self) -> float:
        """Flows served per busy CPU second (the replica's per-core rate)."""
        return self.flows / self.busy_cpu_seconds if self.busy_cpu_seconds > 0 else 0.0

    @property
    def packet_throughput(self) -> float:
        """Packets ingested per busy CPU second."""
        return self.packets / self.busy_cpu_seconds if self.busy_cpu_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view."""
        return {
            "worker_id": self.worker_id,
            "packets": self.packets,
            "flows": self.flows,
            "alerts": self.alerts,
            "batches": self.batches,
            "busy_seconds": self.busy_seconds,
            "busy_cpu_seconds": self.busy_cpu_seconds,
            "flows_per_cpu_second": self.flow_throughput,
            "packets_per_cpu_second": self.packet_throughput,
            "online_updates": self.online_updates,
            "online_samples": self.online_samples,
            "rebase_generation": self.rebase_generation,
            "telemetry": self.telemetry,
            "severities": self.severities,
        }


@dataclass(frozen=True)
class FinalReport:
    """Shutdown payload: final statistics plus any unsynced delta.

    With ``WorkerConfig.capture_predictions`` set, ``predictions`` carries
    the shard's complete per-flow outcomes (one :class:`FlowPrediction` per
    served flow) -- the cluster half of the golden-trace differential
    harness's evidence.
    """

    summary: WorkerSummary
    final_delta: Optional[np.ndarray]
    predictions: Optional[List[FlowPrediction]] = None


@dataclass(frozen=True)
class WorkerConfig:
    """Picklable bootstrap for one worker process."""

    worker_id: int
    n_workers: int
    spec: PublicationSpec
    online: bool = False
    idle_timeout: float = 5.0
    vnodes: int = 64
    enforce_shard_guard: bool = True
    #: Record every served flow's prediction and ship the records back
    #: incrementally in :class:`BatchAck` messages (remainder in the
    #: :class:`FinalReport`) -- the differential-harness capture mode.
    capture_predictions: bool = False
    #: Inbox poll timeout == idle heartbeat stamp cadence.
    heartbeat_interval: float = 0.25
    #: Ship a :class:`BatchAck` after every processed batch (the
    #: supervision contract; off only in single-worker legacy paths).
    send_acks: bool = True


# ------------------------------------------------------------------- runtime
class WorkerRuntime:
    """The serving + online-learning logic of one shard replica.

    Parameters
    ----------
    worker_id, n_workers:
        This shard's identity and the cluster size (for the router guard).
    attached:
        The worker's attachment to the coordinator's model publication.
    online:
        Fold known-label flows into the private replica via ``partial_fit``.
        Local drift-triggered regeneration is deliberately unsupported: the
        encoder tensors are shared read-only across replicas.
    """

    def __init__(
        self,
        worker_id: int,
        n_workers: int,
        attached: AttachedPublication,
        online: bool = False,
        idle_timeout: float = 5.0,
        vnodes: int = 64,
        enforce_shard_guard: bool = True,
        capture_predictions: bool = False,
    ):
        self.worker_id = int(worker_id)
        self.attached = attached
        self.online = bool(online)
        self.pipeline = attached.build_replica()
        self.classifier = self.pipeline.classifier
        router = ShardRouter(n_workers, vnodes=vnodes)
        guard = router.owns(self.worker_id) if enforce_shard_guard and n_workers > 1 else None
        self.table = FlowTable(idle_timeout=idle_timeout, shard_guard=guard)
        self.telemetry = TelemetryRecorder()
        self.stages = [FlowAssemblyStage(self.table), *self.pipeline.stages]
        self.capture_predictions = bool(capture_predictions)
        self.predictions: List[FlowPrediction] = []
        self.batches_handled = 0
        self._flow_first_index: Dict[Any, int] = {}
        self.summary = WorkerSummary(worker_id=self.worker_id)
        self.summary.rebase_generation = attached.generation
        self._base = (
            self.classifier.class_vector_snapshot() if self.online else None
        )

    # ------------------------------------------------------------------- API
    def handle_packets(self, packets: List[Packet], learn: bool = True) -> ServingBatch:
        """Serve one routed packet batch through the full stage chain.

        ``learn=False`` serves the batch without folding its labelled flows
        into the replica -- the redispatch path for batches whose updates
        were already merged before a crash.
        """
        start = time.perf_counter()
        cpu_start = time.process_time()
        batch = ServingBatch(packets=list(packets))
        run_stages(self.stages, batch, self.telemetry)
        if self.online and learn and batch.n_flows:
            self._learn(batch)
        self._account(
            batch, time.perf_counter() - start, time.process_time() - cpu_start
        )
        self._advance_watermark()
        return batch

    def handle_flows(self, flows) -> ServingBatch:
        """Serve pre-assembled flows (the flow-level equivalence-test path)."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        batch = ServingBatch(flows=list(flows))
        run_stages(self.pipeline.stages, batch, self.telemetry)
        if self.online and batch.n_flows:
            self._learn(batch)
        self._account(
            batch, time.perf_counter() - start, time.process_time() - cpu_start
        )
        return batch

    @property
    def watermark(self) -> int:
        """Lowest batch index a still-open flow needs (see :class:`BatchAck`)."""
        if not self._flow_first_index:
            return self.batches_handled
        return min(self._flow_first_index.values())

    def drain_predictions(self) -> List[FlowPrediction]:
        """Hand off captured predictions accumulated since the last drain."""
        drained, self.predictions = self.predictions, []
        return drained

    def compute_delta(self) -> np.ndarray:
        """The class-matrix update accumulated since the last rebase."""
        if self._base is None:
            return np.zeros_like(self.classifier.class_hypervectors_)
        return self.classifier.class_vector_delta(self._base)

    def rebase(self) -> int:
        """Adopt the currently published (merged) model as the new base."""
        generation = self.attached.refresh_replica(self.classifier)
        if self.online:
            self._base = self.classifier.class_vector_snapshot()
        self.summary.rebase_generation = generation
        return generation

    def finalize(self) -> WorkerSummary:
        """Flush stateful stages (classifying still-active flows) and report."""
        start = time.perf_counter()
        cpu_start = time.process_time()
        batch = ServingBatch()
        for stage in self.stages:
            stage.run(batch, self.telemetry)
            stage.flush(batch)
        if self.online and batch.n_flows:
            self._learn(batch)
        self._account(
            batch, time.perf_counter() - start, time.process_time() - cpu_start
        )
        self.summary.telemetry = self.telemetry.to_dict()
        severities: Dict[str, int] = {}
        for stage in self.stages:
            manager = getattr(stage, "alert_manager", None)
            if manager is not None:
                for severity, count in manager.count_by_severity().items():
                    severities[severity] = severities.get(severity, 0) + count
        self.summary.severities = severities
        return self.summary

    # ------------------------------------------------------------- internals
    def _advance_watermark(self) -> None:
        """Refresh the open-flow -> first-batch-index map after one batch."""
        index = self.batches_handled
        self.batches_handled += 1
        previous = self._flow_first_index
        self._flow_first_index = {
            key: previous.get(key, index) for key in self.table.active_keys()
        }

    def _learn(self, batch: ServingBatch) -> None:
        """Fold the batch's known-label flows into the private replica.

        One deterministic ``partial_fit`` pass in arrival order over the
        pipeline's shared ``batch_training_data`` fold -- the same kernel
        and label handling as single-process online serving, which is what
        makes the cluster's merged model comparable to the single-process
        one.
        """
        data = self.pipeline.batch_training_data(batch)
        if data is None:
            return
        X, y = data
        self.classifier.partial_fit(X, y)
        self.summary.online_updates += 1
        self.summary.online_samples += int(y.shape[0])

    def _account(self, batch: ServingBatch, seconds: float, cpu_seconds: float) -> None:
        if self.capture_predictions and batch.n_flows:
            self.predictions.extend(
                batch_flow_predictions(batch, self.pipeline.is_attack_class)
            )
        self.summary.packets += len(batch.packets)
        self.summary.flows += batch.n_flows
        self.summary.alerts += len(batch.alerts)
        self.summary.batches += 1
        self.summary.busy_seconds += seconds
        self.summary.busy_cpu_seconds += cpu_seconds
        self.telemetry.record_items(batch.n_flows)


def cluster_worker_main(config: WorkerConfig, inbox, outbox, heartbeat=None) -> None:
    """Process entry point: attach, serve the message loop, report, exit.

    The coordinator guarantees the inbox protocol: any number of
    :class:`PacketBatch` messages, interleaved with
    :class:`SyncRequest`/:class:`Rebase` pairs, terminated by one
    :class:`Stop`.  Queue FIFO ordering makes a sync round a consistent cut:
    the delta covers exactly the batches dispatched before it.

    ``heartbeat`` is the coordinator's shared liveness array (one ``double``
    wall-clock slot per worker).  The loop stamps its slot on every poll and
    around every processed batch, so a crash *and* a hang both stop the
    stamps within one ``heartbeat_interval`` plus one batch time.
    """
    # The operator's Ctrl-C is delivered to the whole foreground process
    # group.  Shutdown is the *coordinator's* decision (its GracefulShutdown
    # handler stops ingest and sends Stop); a worker that reacted to the
    # signal itself would die mid-drain and break the drain-and-exit-0
    # contract -- visibly so under the spawn start method, where workers do
    # not inherit the coordinator's handlers.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        pass
    def stamp() -> None:
        if heartbeat is not None:
            heartbeat[config.worker_id] = time.time()

    stamp()
    attached = AttachedPublication(config.spec)
    try:
        runtime = WorkerRuntime(
            config.worker_id,
            config.n_workers,
            attached,
            online=config.online,
            idle_timeout=config.idle_timeout,
            vnodes=config.vnodes,
            enforce_shard_guard=config.enforce_shard_guard,
            capture_predictions=config.capture_predictions,
        )
        stamp()
        while True:
            try:
                message = inbox.get(timeout=config.heartbeat_interval)
            except queue_module.Empty:
                stamp()
                continue
            stamp()
            if isinstance(message, PacketBatch):
                batch = runtime.handle_packets(message.packets, learn=message.learn)
                stamp()
                if config.send_acks:
                    outbox.put(
                        BatchAck(
                            worker_id=config.worker_id,
                            seq=message.seq,
                            index=runtime.batches_handled - 1,
                            watermark=runtime.watermark,
                            packets=len(message.packets),
                            flows=batch.n_flows,
                            alerts=len(batch.alerts),
                            predictions=(
                                runtime.drain_predictions()
                                if config.capture_predictions
                                else None
                            ),
                        )
                    )
            elif isinstance(message, ChaosHang):
                deadline = (
                    time.monotonic() + message.seconds
                    if message.seconds > 0
                    else None
                )
                while deadline is None or time.monotonic() < deadline:
                    if message.stamp_heartbeat:
                        stamp()
                        time.sleep(
                            min(
                                config.heartbeat_interval,
                                max(deadline - time.monotonic(), 0.0)
                                if deadline is not None
                                else config.heartbeat_interval,
                            )
                        )
                    else:
                        # Sleep without stamping: the watchdog sees the stale
                        # heartbeat and SIGKILLs this process mid-nap.
                        time.sleep(
                            message.seconds if message.seconds > 0 else 3600.0
                        )
                        break
            elif isinstance(message, ChaosExit):
                return
            elif isinstance(message, SyncRequest):
                outbox.put(
                    DeltaReport(
                        worker_id=config.worker_id,
                        round_id=message.round_id,
                        delta=runtime.compute_delta(),
                        online_updates=runtime.summary.online_updates,
                        online_samples=runtime.summary.online_samples,
                    )
                )
            elif isinstance(message, Rebase):
                runtime.rebase()
            elif isinstance(message, Stop):
                summary = runtime.finalize()
                # Computed after finalize() so the shipped delta includes
                # anything learned from the flushed flows.
                final_delta = runtime.compute_delta() if config.online else None
                outbox.put(
                    FinalReport(
                        summary=summary,
                        final_delta=final_delta,
                        # With per-batch acks draining incrementally this is
                        # just the flush remainder (flows closed by finalize).
                        predictions=(
                            runtime.drain_predictions()
                            if config.capture_predictions
                            else None
                        ),
                    )
                )
                break
            else:  # pragma: no cover - protocol violation
                raise RuntimeError(f"worker received unknown message {message!r}")
    finally:
        attached.close()
